//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements the slice of the proptest 1.x API the workspace's tests
//! use: the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, the [`Strategy`](strategy::Strategy) trait
//! with `prop_map`, [`Just`](strategy::Just), `any::<T>()`, integer /
//! float range strategies, regex-ish string strategies (the small pattern
//! subset the tests use), `collection::{vec, btree_set, btree_map}`, and
//! `sample::select`.
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! reported with their inputs' debug description but are **not shrunk**.
//! Generation is deterministic per test (seeded from the test name), so
//! failures reproduce across runs.

#![forbid(unsafe_code)]

/// Test-runner types: configuration, RNG, and case-level errors.
pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    pub use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Deterministic RNG for one named test.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        TestRng::seed_from_u64(h.finish() ^ 0xA55E_55ED_5EED_5EED)
    }

    /// How many cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually run: the `PROPTEST_CASES` environment
        /// variable **caps** the configured value. This is a deliberate
        /// stub extension, not upstream parity — upstream reads the same
        /// variable but only as the `Config::default()` value, so an
        /// explicit `with_cases(n)` beats it there. A cap serves this
        /// workspace's need (CI bounds every suite, including the
        /// deliberately heavy `with_cases` ones, without letting an
        /// exported `PROPTEST_CASES=10000` inflate them).
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
            {
                Some(cap) => self.cases.min(cap.max(1)),
                None => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed with the given message.
        Fail(String),
        /// The case was rejected (unsatisfiable assumption).
        Reject(String),
    }

    impl TestCaseError {
        /// Fail the current case with `reason`.
        pub fn fail<D: std::fmt::Display>(reason: D) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        /// Reject the current case with `reason`.
        pub fn reject<D: std::fmt::Display>(reason: D) -> Self {
            TestCaseError::Reject(reason.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and basic combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies of one value type
    /// (built by [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        /// An empty union; populate with [`Union::with`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        /// Add an arm with the given weight.
        pub fn with<S: Strategy<Value = V> + 'static>(mut self, weight: u32, s: S) -> Self {
            assert!(weight > 0, "prop_oneof weights must be positive");
            self.arms.push((weight, Box::new(s)));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
            assert!(total > 0, "prop_oneof needs at least one arm");
            let mut pick = rng.gen_range(0..total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies: `vec`, `btree_set`, `btree_map`.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Anything usable as a collection size specification.
    pub trait SizeRange {
        /// Sample a concrete size.
        fn sample_size(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_size(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample_size(rng);
            // Duplicates collapse, so the set size is ≤ n (upstream retries
            // to hit n exactly; the tests here only rely on the bound).
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A set of at most `size` elements drawn from `element`.
    pub fn btree_set<S: Strategy, R: SizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R> {
        BTreeSetStrategy { element, size }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    impl<K: Strategy, V: Strategy, R: SizeRange> Strategy for BTreeMapStrategy<K, V, R>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample_size(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// A map of at most `size` entries.
    pub fn btree_map<K: Strategy, V: Strategy, R: SizeRange>(
        key: K,
        value: V,
        size: R,
    ) -> BTreeMapStrategy<K, V, R> {
        BTreeMapStrategy { key, value, size }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::seq::SliceRandom;

    /// Strategy produced by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options
                .as_slice()
                .choose(rng)
                .expect("select() needs a non-empty list")
                .clone()
        }
    }

    /// Uniform choice from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// Generation from the small regex-pattern subset the tests use.
pub mod string {
    use super::test_runner::TestRng;
    use rand::Rng;

    #[derive(Debug, Clone)]
    enum Atom {
        /// `\PC` — any non-control character.
        AnyPrintable,
        /// `[...]` — explicit alternatives.
        Class(Vec<char>),
        /// A literal character.
        Literal(char),
    }

    #[derive(Debug, Clone, Copy)]
    enum Repeat {
        Once,
        /// `*`
        Star,
        /// `{lo,hi}`
        Between(usize, usize),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut out: Vec<char> = Vec::new();
        let mut pending: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => {
                    if let Some(p) = pending {
                        out.push(p);
                    }
                    return out;
                }
                '\\' => {
                    let esc = chars.next().expect("dangling escape in class");
                    let lit = match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    if let Some(p) = pending.take() {
                        out.push(p);
                    }
                    pending = Some(lit);
                }
                '-' if pending.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = pending.take().expect("range needs a start");
                    let hi = chars.next().expect("range needs an end");
                    assert!(lo <= hi, "descending class range");
                    out.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                }
                other => {
                    if let Some(p) = pending.take() {
                        out.push(p);
                    }
                    pending = Some(other);
                }
            }
        }
        panic!("unterminated character class");
    }

    fn parse(pattern: &str) -> Vec<(Atom, Repeat)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<(Atom, Repeat)> = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '\\' => match chars.next().expect("dangling escape") {
                    'P' => {
                        // Only `\PC` (not-control) is supported.
                        let next = chars.next();
                        assert_eq!(next, Some('C'), "only \\PC is supported");
                        Atom::AnyPrintable
                    }
                    'n' => Atom::Literal('\n'),
                    't' => Atom::Literal('\t'),
                    other => Atom::Literal(other),
                },
                '[' => Atom::Class(parse_class(&mut chars)),
                other => Atom::Literal(other),
            };
            let repeat = match chars.peek() {
                Some('*') => {
                    chars.next();
                    Repeat::Star
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repeat lower bound"),
                            hi.trim().parse().expect("bad repeat upper bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad repeat count");
                            (n, n)
                        }
                    };
                    Repeat::Between(lo, hi)
                }
                _ => Repeat::Once,
            };
            atoms.push((atom, repeat));
        }
        atoms
    }

    fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(options) => options[rng.gen_range(0..options.len())],
            Atom::AnyPrintable => {
                // Mostly printable ASCII, with some multi-byte UTF-8 mixed
                // in so parsers see non-trivial encodings.
                const EXOTIC: &[char] = &[
                    'é', 'ß', 'λ', 'Ω', '中', '文', '🦀', '∀', '∅', '→', '\u{a0}',
                ];
                if rng.gen_bool(0.9) {
                    char::from_u32(rng.gen_range(0x20..0x7Fu32)).expect("printable ascii")
                } else {
                    EXOTIC[rng.gen_range(0..EXOTIC.len())]
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, repeat) in parse(pattern) {
            let count = match repeat {
                Repeat::Once => 1,
                Repeat::Star => rng.gen_range(0..=48usize),
                Repeat::Between(lo, hi) => rng.gen_range(lo..=hi),
            };
            for _ in 0..count {
                out.push(gen_char(&atom, rng));
            }
        }
        out
    }
}

/// Everything the tests glob-import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Run each contained `#[test] fn name(bindings in strategies) { body }`
/// over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand one `proptest!` body fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(concat!($(stringify!($arg), " = {:?} "),+), $(&$arg),+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(err) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, cases, err, inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r,
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.with($weight, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.with(1, $strat))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn pattern_generation_matches_classes() {
        let mut rng = rng_for("pattern_generation_matches_classes");
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[ -~]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            let t = crate::string::generate_from_pattern("[ -~\\n]{0,20}", &mut rng);
            assert!(
                t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)),
                "{t:?}"
            );
            let u = crate::string::generate_from_pattern("\\PC*", &mut rng);
            assert!(u.chars().count() <= 48);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_machinery_binds_and_asserts(
            xs in crate::collection::vec(0u32..10, 0..5),
            flag in any::<bool>(),
            pick in prop_oneof![1 => Just(1u8), 3 => Just(2u8)],
        ) {
            prop_assert!(xs.len() < 5);
            prop_assert!(pick == 1 || pick == 2);
            let doubled = crate::collection::vec(0u32..10, 0..5);
            let _ = doubled; // strategies are plain values
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
