//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements exactly the slice of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `gen_bool` / `gen_range` / `gen`, and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic across runs and platforms, which is all the
//! seeded workloads and tests require. It is **not** the same stream as
//! upstream `StdRng` (ChaCha12) and is not cryptographically secure.

#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `gen_range` can produce over a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor value, for inclusive ranges (saturating).
    fn successor(self) -> Self;
}

// The span must be computed in u64, not in the range's own type: for a
// signed range like -100i8..100i8 the true span (200) overflows i8, and a
// wrapped span would make sampling return values outside the range. The
// widening cast differs for signed (via i64) and unsigned (via u64), so
// the macro takes it as an argument; wrapping_sub keeps the full-width
// i64/u64/usize/isize cases exact modulo 2^64.
macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-32 for the
                // span sizes used here and irrelevant to seeded tests.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(r as $t)
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + unit_f64(rng.next_u64()) * (high - low)
    }
    fn successor(self) -> Self {
        self
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_half_open(rng, low, high.successor())
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream
    /// `StdRng`; different stream, same interface).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling extension trait (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=2);
            assert!((1..=2).contains(&w));
        }
    }

    #[test]
    fn gen_range_handles_signed_ranges_wider_than_the_positive_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "out of range: {v}");
            seen_low |= v < -50;
            seen_high |= v > 50;
        }
        assert!(seen_low && seen_high, "both halves of the range reached");
        for _ in 0..1_000 {
            let w = rng.gen_range(i64::MIN..i64::MAX);
            let _ = w; // full-width span: must not panic or truncate
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((8_000..12_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut ys = [1, 2, 3, 4, 5];
        ys.shuffle(&mut rng);
        let mut sorted = ys;
        sorted.sort_unstable();
        assert_eq!(sorted, [1, 2, 3, 4, 5]);
    }
}
