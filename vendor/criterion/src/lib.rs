//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the criterion 0.5 API the workspace's bench
//! targets use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock measurement
//! loop. No statistics, plots, or baselines: each benchmark runs a warm-up
//! iteration, then as many timed iterations as fit a small time budget
//! (bounded by `sample_size`), and prints the mean time per iteration.
//! The point is that `cargo bench` compiles and produces indicative
//! numbers; swap the real criterion back in for publishable measurements.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget for the measurement loop.
const TIME_BUDGET: Duration = Duration::from_millis(500);

/// How batched inputs are grouped (accepted, not acted on: every batch is
/// one iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
    /// Explicit batch count.
    NumBatches(u64),
    /// Explicit iteration count.
    NumIterations(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    fn run<F: FnMut()>(max_iters: u64, mut one_iteration: F) -> Bencher {
        // Warm-up (also primes lazy setup inside the routine).
        one_iteration();
        let mut iterations = 0u64;
        let start = Instant::now();
        while iterations < max_iters && (iterations == 0 || start.elapsed() < TIME_BUDGET) {
            one_iteration();
            iterations += 1;
        }
        Bencher {
            iterations,
            total: start.elapsed(),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let sampled = Self::run(self.iterations.max(1), || {
            black_box(routine());
        });
        *self = sampled;
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up.
        black_box(routine(setup()));
        let max_iters = self.iterations.max(1);
        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let budget_start = Instant::now();
        while iterations < max_iters && (iterations == 0 || budget_start.elapsed() < TIME_BUDGET) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iterations += 1;
        }
        self.iterations = iterations;
        self.total = total;
    }
}

fn report(group: &str, id: &str, b: &Bencher) {
    let per_iter = if b.iterations == 0 {
        Duration::ZERO
    } else {
        b.total / u32::try_from(b.iterations.max(1)).unwrap_or(u32::MAX)
    };
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench: {label:<55} {per_iter:>12.2?}/iter  (n={})",
        b.iterations
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upper bound on timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Accepted for API compatibility; the stub keeps its fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut b);
        report(&self.name, &id.id, &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size,
            total: Duration::ZERO,
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: 20,
            total: Duration::ZERO,
        };
        f(&mut b);
        report("", id, &b);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and possibly filter args);
            // the stub runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("iter", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::LargeInput)
        });
        group.finish();
        assert!(runs > 0);
    }
}
