//! `annomine` — a Rust reproduction of *"Discovering Correlations in
//! Annotated Databases"* (Eltabakh group; EDBT 2016 / WPI MQP 2015).
//!
//! Annotated databases attach metadata — provenance, curation flags,
//! comments, quality verdicts — to tuples. This workspace discovers the
//! association rules hiding in that metadata, keeps them **incrementally
//! maintained** as the database evolves, and exploits them to recommend
//! missing annotations:
//!
//! * [`semiring`] — provenance semirings: the formal foundation of
//!   annotated data (Green–Karvounarakis–Tannen), with nine instances and
//!   homomorphism machinery; annotation generalization *is* a semiring
//!   homomorphism.
//! * [`store`] — the annotated-relation substrate: interned items, tuples,
//!   the annotation inverted index, generalization taxonomies, the paper's
//!   text formats, reproducible synthetic workloads, and a provenance-
//!   propagating relational algebra.
//! * [`mine`] — the paper's contribution: Apriori/FP-Growth/Eclat mining of
//!   data-to-annotation and annotation-to-annotation rules, the
//!   [`IncrementalMiner`](mine::IncrementalMiner) covering all three
//!   evolution cases of §4.3 (plus deletion, the paper's future work), and
//!   the §5 recommendation/trigger layer.
//! * [`service`] — the serving subsystem: a concurrent, multi-tenant
//!   [`Service`](service::Service) registry of datasets with snapshot-based
//!   reads, a coalescing batched write queue over the incremental miner,
//!   per-op metrics, and the `annod` line protocol (TCP / REPL).
//!
//! See the workspace `README.md` for layout, quickstart, and the `annod`
//! protocol reference; the `examples/` directory for runnable
//! walkthroughs; and `crates/bench` for the harness regenerating every
//! measured figure of the paper.

#![forbid(unsafe_code)]

pub use anno_mine as mine;
pub use anno_semiring as semiring;
pub use anno_service as service;
pub use anno_store as store;

/// One-stop prelude: the items most programs need.
pub mod prelude {
    pub use anno_mine::prelude::*;
    pub use anno_semiring::prelude::*;
    pub use anno_service::{Service, ServiceConfig, UpdateOp};
    pub use anno_store::{
        AnnotatedRelation, AnnotationUpdate, Item, ItemKind, Taxonomy, Tuple, TupleId, Vocabulary,
    };
}
