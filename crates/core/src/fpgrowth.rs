//! FP-Growth: pattern-growth mining without candidate generation.
//!
//! One of the "state-of-art techniques" the paper's §4 mentions as
//! interchangeable with Apriori. Included as an independent implementation
//! for cross-checking (the property tests assert itemset-table equality
//! with Apriori and Eclat on random databases) and as a baseline in the
//! `miners` bench.
//!
//! Standard construction: items are ranked by descending support,
//! transactions are inserted into a prefix tree with per-node counts and
//! per-item node chains, and patterns grow by recursing into conditional
//! trees. [`MiningMode`] admissibility is enforced during growth — it is
//! downward-closed, so an inadmissible pattern can prune its whole branch.

use anno_store::fxhash::FxHashMap;
use anno_store::Item;

use crate::frequent::{support_count_threshold, FrequentItemsets};
use crate::itemset::{ItemSet, MiningMode, Transaction};

#[derive(Debug, Clone)]
struct Node {
    item: Item,
    count: u64,
    parent: usize,
    children: Vec<usize>,
    next_same_item: usize,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct FpTree {
    nodes: Vec<Node>,
    /// item → (total count, head of node chain), in rank order.
    header: Vec<(Item, u64, usize)>,
    header_pos: FxHashMap<Item, usize>,
}

impl FpTree {
    fn new(item_order: &[(Item, u64)]) -> FpTree {
        let mut header = Vec::with_capacity(item_order.len());
        let mut header_pos = FxHashMap::default();
        for (rank, &(item, _)) in item_order.iter().enumerate() {
            header.push((item, 0, NIL));
            header_pos.insert(item, rank);
        }
        FpTree {
            nodes: vec![Node {
                item: Item::data(0), // root sentinel; never read
                count: 0,
                parent: NIL,
                children: Vec::new(),
                next_same_item: NIL,
            }],
            header,
            header_pos,
        }
    }

    /// Insert a rank-sorted item path with a count.
    fn insert(&mut self, path: &[Item], count: u64) {
        let mut cur = 0usize;
        for &item in path {
            let found = self.nodes[cur]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            cur = match found {
                Some(child) => {
                    self.nodes[child].count += count;
                    child
                }
                None => {
                    let idx = self.nodes.len();
                    let rank = self.header_pos[&item];
                    let node = Node {
                        item,
                        count,
                        parent: cur,
                        children: Vec::new(),
                        next_same_item: self.header[rank].2,
                    };
                    self.header[rank].2 = idx;
                    self.nodes.push(node);
                    self.nodes[cur].children.push(idx);
                    idx
                }
            };
            let rank = self.header_pos[&item];
            self.header[rank].1 += count;
        }
    }

    /// The conditional pattern base of `rank`: (prefix path, count) pairs.
    fn conditional_base(&self, rank: usize) -> Vec<(Vec<Item>, u64)> {
        let mut out = Vec::new();
        let mut node = self.header[rank].2;
        while node != NIL {
            let count = self.nodes[node].count;
            let mut path = Vec::new();
            let mut p = self.nodes[node].parent;
            while p != 0 && p != NIL {
                path.push(self.nodes[p].item);
                p = self.nodes[p].parent;
            }
            path.reverse();
            if !path.is_empty() {
                out.push((path, count));
            }
            node = self.nodes[node].next_same_item;
        }
        out
    }
}

/// Mine all admissible itemsets with support ≥ `min_support` using
/// FP-Growth. Produces exactly the itemsets [`crate::apriori::apriori`]
/// produces under the same mode.
pub fn fpgrowth(
    transactions: &[Transaction],
    min_support: f64,
    mode: MiningMode,
) -> FrequentItemsets {
    let db_size = transactions.len() as u64;
    let mut result = FrequentItemsets::new(db_size);
    if db_size == 0 {
        return result;
    }
    let min_count = support_count_threshold(min_support, db_size);

    // Global item counts and rank order (descending count, ascending item).
    let mut counts: FxHashMap<Item, u64> = FxHashMap::default();
    for t in transactions {
        for &i in t.iter() {
            *counts.entry(i).or_insert(0) += 1;
        }
    }
    let mut order: Vec<(Item, u64)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .collect();
    order.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let rank_of: FxHashMap<Item, usize> = order
        .iter()
        .enumerate()
        .map(|(r, &(i, _))| (i, r))
        .collect();

    let mut tree = FpTree::new(&order);
    let mut path = Vec::new();
    for t in transactions {
        path.clear();
        path.extend(t.iter().copied().filter(|i| rank_of.contains_key(i)));
        path.sort_unstable_by_key(|i| rank_of[i]);
        tree.insert(&path, 1);
    }

    // Grow patterns from the least-frequent item upward.
    let suffix = ItemSet::empty();
    grow(&tree, &suffix, min_count, mode, &mut result);
    result
}

fn grow(
    tree: &FpTree,
    suffix: &ItemSet,
    min_count: u64,
    mode: MiningMode,
    result: &mut FrequentItemsets,
) {
    for rank in (0..tree.header.len()).rev() {
        let (item, total, _) = tree.header[rank];
        if total < min_count {
            continue;
        }
        let pattern = suffix.with(item);
        if !admissible_or_extendable(&pattern, mode) {
            continue;
        }
        if pattern.admitted_by(mode) {
            result.insert(pattern.clone(), total);
        }
        // Build the conditional tree for this pattern.
        let base = tree.conditional_base(rank);
        if base.is_empty() {
            continue;
        }
        let mut cond_counts: FxHashMap<Item, u64> = FxHashMap::default();
        for (p, c) in &base {
            for &i in p {
                *cond_counts.entry(i).or_insert(0) += c;
            }
        }
        let mut cond_order: Vec<(Item, u64)> = cond_counts
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .collect();
        if cond_order.is_empty() {
            continue;
        }
        cond_order.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let cond_rank: FxHashMap<Item, usize> = cond_order
            .iter()
            .enumerate()
            .map(|(r, &(i, _))| (i, r))
            .collect();
        let mut cond_tree = FpTree::new(&cond_order);
        let mut cpath = Vec::new();
        for (p, c) in &base {
            cpath.clear();
            cpath.extend(p.iter().copied().filter(|i| cond_rank.contains_key(i)));
            cpath.sort_unstable_by_key(|i| cond_rank[i]);
            cond_tree.insert(&cpath, *c);
        }
        grow(&cond_tree, &pattern, min_count, mode, result);
    }
}

/// Can `pattern` or any superset still be admissible under `mode`?
///
/// Admissibility is downward-closed; its complement is upward-closed, so an
/// inadmissible pattern prunes its entire growth branch *except* in modes
/// where supersets regain nothing — which is every mode here. The only
/// subtlety: a pure-annotation set is inadmissible under `DataToAnnotation`
/// when it has ≥ 2 annotations, and adding data items cannot fix that;
/// growth order mixes namespaces, so the check is simply "inadmissible ⇒
/// prune".
fn admissible_or_extendable(pattern: &ItemSet, mode: MiningMode) -> bool {
    match mode {
        MiningMode::Unrestricted => true,
        MiningMode::DataToAnnotation => pattern.annotation_count() <= 1,
        MiningMode::AnnotationToAnnotation => pattern.data_count() == 0,
        MiningMode::Annotated => pattern.data_count() == 0 || pattern.annotation_count() <= 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};

    fn d(i: u32) -> Item {
        Item::data(i)
    }
    fn a(i: u32) -> Item {
        Item::annotation(i)
    }
    fn tx(items: &[Item]) -> Transaction {
        let mut v = items.to_vec();
        v.sort_unstable();
        v.dedup();
        v.into_boxed_slice()
    }

    fn classic_db() -> Vec<Transaction> {
        vec![
            tx(&[d(1), d(3), d(4)]),
            tx(&[d(2), d(3), d(5)]),
            tx(&[d(1), d(2), d(3), d(5)]),
            tx(&[d(2), d(5)]),
        ]
    }

    #[test]
    fn matches_apriori_on_textbook_example() {
        let f = fpgrowth(&classic_db(), 0.5, MiningMode::Unrestricted);
        let g = apriori(
            &classic_db(),
            0.5,
            &AprioriConfig {
                mode: MiningMode::Unrestricted,
                ..Default::default()
            },
        );
        assert_eq!(f.sorted(), g.sorted());
    }

    #[test]
    fn matches_apriori_with_annotations_and_modes() {
        let db: Vec<Transaction> = vec![
            tx(&[d(1), d(2), a(1)]),
            tx(&[d(1), d(2), a(1), a(2)]),
            tx(&[d(1), a(2)]),
            tx(&[d(2), a(1)]),
            tx(&[d(1), d(2)]),
        ];
        for mode in [
            MiningMode::Unrestricted,
            MiningMode::Annotated,
            MiningMode::DataToAnnotation,
            MiningMode::AnnotationToAnnotation,
        ] {
            let f = fpgrowth(&db, 0.2, mode);
            let g = apriori(
                &db,
                0.2,
                &AprioriConfig {
                    mode,
                    ..Default::default()
                },
            );
            assert_eq!(f.sorted(), g.sorted(), "mode {mode:?} diverges");
        }
    }

    #[test]
    fn empty_database() {
        assert!(fpgrowth(&[], 0.5, MiningMode::Unrestricted).is_empty());
    }

    #[test]
    fn single_transaction_full_support() {
        let db = vec![tx(&[d(1), d(2)])];
        let f = fpgrowth(&db, 1.0, MiningMode::Unrestricted);
        assert_eq!(f.len(), 3); // {1}, {2}, {1,2}
        assert_eq!(f.count(&ItemSet::from_unsorted(vec![d(1), d(2)])), Some(1));
    }
}
