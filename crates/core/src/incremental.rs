//! Incremental maintenance of association rules (paper §4.3).
//!
//! Re-running Apriori after every database change is what the paper sets
//! out to avoid. [`IncrementalMiner`] keeps three pieces of state between
//! changes:
//!
//! * a **frequent-itemset table** with *exact* occurrence counts, mined at
//!   a *retention* level below the user's α (the paper's "candidate rules
//!   slightly below the minimum support and confidence requirements");
//! * the **valid rule set** and the **near-threshold candidate rule set**,
//!   both *derived* from the table (`rules::derive_rules_partitioned`), so
//!   maintaining the table maintains the rules;
//! * the **evolution budget**: the database size at the last full mine and
//!   the tuples added/deleted since. An itemset that was below the
//!   retention level can only become frequent after enough tuple churn; the
//!   budget check detects exactly when that becomes possible and falls back
//!   to one full re-mine, making every operation **exact** — the paper's
//!   own validation criterion ("the association rules resulting from both
//!   processes were identical") holds unconditionally, not just for small
//!   batches.
//!
//! The three cases of §4.3 map to [`IncrementalMiner::add_annotated_tuples`]
//! (Case 1), [`IncrementalMiner::add_unannotated_tuples`] (Case 2) and
//! [`IncrementalMiner::apply_annotations`] (Case 3, Figs. 12–13). Case 3
//! touches only delta tuples for count updates and only `index(a)` postings
//! for discovery — never the full database — and needs *no* budget: every
//! itemset whose count can change contains one of the batch's annotations,
//! and those are all either updated exactly (retained ones) or discovered
//! exactly (via the inverted index), as the module tests verify against
//! from-scratch mining.
//!
//! Deletion — the paper's future work (§6) — is implemented by
//! [`IncrementalMiner::remove_annotations`] and
//! [`IncrementalMiner::delete_tuples`] with the same exactness contract.

use anno_store::fxhash::{FxHashMap, FxHashSet};
use anno_store::{AnnotatedRelation, AnnotationDelta, AnnotationUpdate, Item, Tuple, TupleId};

use crate::apriori::{apriori, AprioriConfig, CountingStrategy};
use crate::frequent::{support_count_threshold, FrequentItemsets};
use crate::itemset::{transactions_of, ItemSet, MiningMode, Transaction};
use crate::mine::mine_rules;
use crate::rules::{derive_rules_partitioned, RuleSet, Thresholds};

/// Configuration of the incremental miner.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalConfig {
    /// The user-facing thresholds (α, β).
    pub thresholds: Thresholds,
    /// Retention factor in `(0, 1]`: the itemset table and candidate rules
    /// are kept down to `retention · α` support (and `retention · β`
    /// confidence for candidate rules). Lower retention = bigger table =
    /// larger evolution budget before a fallback re-mine.
    pub retention: f64,
    /// Counting structure for full mines.
    pub counting: CountingStrategy,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            thresholds: Thresholds::paper(),
            retention: 0.5,
            counting: CountingStrategy::HashTree,
        }
    }
}

/// The footprint of recent maintenance operations, for consumers that
/// mirror the miner's counts (e.g. a discovery index): which
/// annotation-like items may have changed support, and which
/// pure-annotation pairs were newly stored. Drained with
/// [`IncrementalMiner::take_touches`]; a full re-mine (or any operation
/// whose footprint is not itemised) sets `all` instead.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryTouch {
    /// Everything may have changed (full re-mine / initial mine): rescan
    /// the whole table instead of applying `items`/`new_pairs`.
    pub all: bool,
    /// Annotation-like items whose singleton count — or the count of any
    /// stored itemset containing them — may have changed.
    pub items: FxHashSet<Item>,
    /// Pure-annotation 2-itemsets newly inserted into the table (Fig. 13
    /// discovery), as sorted `(low, high)` item pairs.
    pub new_pairs: Vec<(Item, Item)>,
}

impl DiscoveryTouch {
    /// `true` iff no maintenance happened since the last drain.
    pub fn is_empty(&self) -> bool {
        !self.all && self.items.is_empty() && self.new_pairs.is_empty()
    }

    /// Record the annotation-like items of one transaction.
    fn note_transaction(&mut self, items: &[Item]) {
        self.items
            .extend(items.iter().copied().filter(|i| i.is_annotation_like()));
    }

    /// Record a newly stored itemset if it is a pure-annotation pair.
    fn note_inserted(&mut self, s: &ItemSet) {
        if s.len() == 2 && s.data_count() == 0 {
            self.new_pairs.push((s.items()[0], s.items()[1]));
        }
    }

    /// Fold another touch record into this one.
    pub fn merge(&mut self, other: DiscoveryTouch) {
        self.all |= other.all;
        self.items.extend(other.items);
        self.new_pairs.extend(other.new_pairs);
    }
}

/// Counters describing how the miner has been maintaining its state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Full Apriori re-mines (the initial one plus budget fallbacks).
    pub full_remines: u64,
    /// Case 1 batches processed incrementally.
    pub case1_batches: u64,
    /// Case 2 batches processed incrementally.
    pub case2_batches: u64,
    /// Case 3 batches processed incrementally.
    pub case3_batches: u64,
    /// Deletion batches (annotations or tuples) processed incrementally.
    pub deletion_batches: u64,
    /// Itemsets newly discovered by the Fig. 13 index-assisted pass.
    pub discovered_itemsets: u64,
}

/// Incrementally maintained association rules over one annotated relation.
///
/// The miner does not own the relation; instead, every mutation goes
/// through the miner (`add_*`, `apply_annotations`, `remove_*`,
/// `delete_tuples`), which applies it to the relation *and* maintains the
/// rule state. Mutating the relation behind the miner's back voids the
/// exactness contract.
#[derive(Debug, Clone)]
pub struct IncrementalMiner {
    pub(crate) config: IncrementalConfig,
    pub(crate) table: FrequentItemsets,
    pub(crate) valid: RuleSet,
    pub(crate) near: RuleSet,
    /// Database size at the last full mine.
    pub(crate) base_size: u64,
    /// Tuples added since the last full mine.
    pub(crate) added_since: u64,
    pub(crate) stats: MaintenanceStats,
    /// Accumulated maintenance footprint since the last
    /// [`IncrementalMiner::take_touches`] drain. Not persisted: a restored
    /// miner starts with an empty log and consumers rebuild from the table.
    pub(crate) touches: DiscoveryTouch,
}

impl IncrementalMiner {
    /// Mine `relation` from scratch and set up incremental state.
    pub fn mine_initial(relation: &AnnotatedRelation, config: IncrementalConfig) -> Self {
        assert!(
            config.retention > 0.0 && config.retention <= 1.0,
            "retention must be in (0, 1]"
        );
        let mut miner = IncrementalMiner {
            config,
            table: FrequentItemsets::new(0),
            valid: RuleSet::new(),
            near: RuleSet::new(),
            base_size: 0,
            added_since: 0,
            stats: MaintenanceStats::default(),
            touches: DiscoveryTouch::default(),
        };
        miner.full_remine(relation);
        miner
    }

    /// The currently valid rules (support ≥ α, confidence ≥ β). Exact.
    pub fn rules(&self) -> &RuleSet {
        &self.valid
    }

    /// The retained near-threshold candidate rules (best-effort; used to
    /// explain how close a almost-rule is, and refreshed on every re-mine).
    pub fn candidate_rules(&self) -> &RuleSet {
        &self.near
    }

    /// The maintained frequent-itemset table.
    pub fn table(&self) -> &FrequentItemsets {
        &self.table
    }

    /// Maintenance statistics.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// Drain the accumulated maintenance footprint (see
    /// [`DiscoveryTouch`]), leaving an empty log. Consumers mirroring the
    /// table (e.g. `anno-discover`) call this after each batch and apply
    /// the touches to their own state.
    pub fn take_touches(&mut self) -> DiscoveryTouch {
        std::mem::take(&mut self.touches)
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> Thresholds {
        self.config.thresholds
    }

    /// The full incremental configuration (thresholds, retention,
    /// counting strategy) — used by serving layers that re-publish the
    /// miner's state alongside its parameters.
    pub fn config(&self) -> IncrementalConfig {
        self.config
    }

    /// Remaining Case-1/Case-2 tuple-addition budget before the next
    /// operation triggers a fallback re-mine.
    pub fn remaining_tuple_budget(&self) -> u64 {
        let mut lo = 0u64;
        let mut hi = self.base_size.max(1) * 2 + 1_000_000;
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.budget_ok_with(self.added_since + mid, self.table.db_size() + mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    // ------------------------------------------------------------------
    // Case 1 (§4.3): adding annotated tuples.
    // ------------------------------------------------------------------

    /// Insert annotated tuples and maintain the rules. Returns the assigned
    /// tuple ids.
    pub fn add_annotated_tuples(
        &mut self,
        relation: &mut AnnotatedRelation,
        tuples: Vec<Tuple>,
    ) -> Vec<TupleId> {
        self.stats.case1_batches += 1;
        self.add_tuples_common(relation, tuples)
    }

    // ------------------------------------------------------------------
    // Case 2 (§4.3): adding un-annotated tuples.
    // ------------------------------------------------------------------

    /// Insert un-annotated tuples and maintain the rules. Panics if a tuple
    /// carries annotations (that would be Case 1).
    pub fn add_unannotated_tuples(
        &mut self,
        relation: &mut AnnotatedRelation,
        tuples: Vec<Tuple>,
    ) -> Vec<TupleId> {
        assert!(
            tuples.iter().all(Tuple::is_unannotated),
            "Case 2 requires un-annotated tuples; use add_annotated_tuples"
        );
        self.stats.case2_batches += 1;
        self.add_tuples_common(relation, tuples)
    }

    fn add_tuples_common(
        &mut self,
        relation: &mut AnnotatedRelation,
        tuples: Vec<Tuple>,
    ) -> Vec<TupleId> {
        let transactions: Vec<Transaction> = tuples.iter().map(|t| Box::from(t.items())).collect();
        for t in &transactions {
            self.touches.note_transaction(t);
        }
        let tids = relation.extend(tuples);
        self.added_since += tids.len() as u64;
        let new_size = relation.len() as u64;
        if !self.budget_ok_with(self.added_since, new_size) {
            self.full_remine(relation);
            return tids;
        }
        // Delta-only count update: each retained itemset gains exactly its
        // occurrences among the new tuples.
        let increments = count_itemsets_in(&self.table, &transactions);
        for (s, inc) in increments {
            self.table.add_count(&s, inc);
        }
        self.table.set_db_size(new_size);
        self.rederive();
        tids
    }

    // ------------------------------------------------------------------
    // Case 3 (§4.3, Figs. 12–13): adding annotations to existing tuples.
    // ------------------------------------------------------------------

    /// Apply an annotation batch (Fig. 14) and maintain the rules. Returns
    /// the effective delta. Always exact, never re-mines, and touches only
    /// delta tuples plus the inverted-index postings of the batch's
    /// annotations.
    pub fn apply_annotations(
        &mut self,
        relation: &mut AnnotatedRelation,
        updates: impl IntoIterator<Item = AnnotationUpdate>,
    ) -> AnnotationDelta {
        let delta = relation.apply_annotation_batch(updates);
        if delta.is_empty() {
            return delta;
        }
        self.stats.case3_batches += 1;

        let mut added_per_tuple: Vec<(TupleId, Vec<Item>)> = {
            let mut map: FxHashMap<TupleId, Vec<Item>> = FxHashMap::default();
            for u in &delta.added {
                map.entry(u.tuple).or_default().push(u.annotation);
            }
            map.into_iter().collect()
        };
        added_per_tuple.sort_unstable_by_key(|&(tid, _)| tid);

        // Fig. 12 — update retained itemsets by scanning only the newly
        // annotated tuples. An itemset's count changed iff it contains one
        // of the tuple's fresh annotations and matches the tuple now. One
        // bucketed matching pass over the touched tuples finds, per tuple,
        // every table itemset it contains.
        let keys: Vec<ItemSet> = self.table.iter().map(|(s, _)| s.clone()).collect();
        let by_first = bucket_by_first_item(&keys);
        for (tid, fresh) in &added_per_tuple {
            let tuple = relation.tuple(*tid).expect("delta tuple is live");
            for idx in matching_indices(&keys, &by_first, tuple.items()) {
                if fresh.iter().any(|a| keys[idx].contains(*a)) {
                    self.table.add_count(&keys[idx], 1);
                }
            }
        }

        // Fig. 13 Step 1 precondition — the per-annotation frequency table:
        // singleton counts come exactly from the inverted index.
        let retention_min = self.retention_min_count();
        let mut anns_sorted: Vec<Item> = delta.distinct_annotations();
        anns_sorted.sort_unstable();
        self.touches.items.extend(anns_sorted.iter().copied());
        for &a in &anns_sorted {
            let freq = relation.index().frequency(a) as u64;
            let single = ItemSet::single(a);
            if freq >= retention_min {
                debug_assert!(
                    self.table.count(&single).is_none_or(|c| c == freq),
                    "incremental singleton count diverged from index"
                );
                self.table.insert(single, freq);
            }
        }

        // Fig. 13 — discover newly frequent itemsets containing an added
        // annotation, counting over index(a) postings only. Per the paper,
        // seeds are the already-frequent patterns extracted *from the newly
        // annotated tuples*: a candidate can only have crossed the
        // retention level if its count grew, i.e. if it matches a touched
        // tuple that gained one of its annotations — so patterns absent
        // from every gained tuple need no re-evaluation. Seeds are
        // processed shortest-first so a candidate's sub-itemsets are
        // already in the table (levelwise closure); the outer loop sweeps
        // to a fixpoint because a candidate in annotation `a`'s pass may
        // need a seed that only a *later* annotation's pass (or an ensured
        // singleton) makes available.
        loop {
            // Per sweep: one bucketed pass over the touched tuples collects
            // the seed itemsets relevant to each added annotation.
            let keys: Vec<ItemSet> = self
                .table
                .iter()
                .filter(|(s, _)| s.annotation_count() == 0 || s.data_count() == 0)
                .map(|(s, _)| s.clone())
                .collect();
            let by_first = bucket_by_first_item(&keys);
            let mut seeds_per_ann: FxHashMap<Item, FxHashSet<usize>> = FxHashMap::default();
            for (tid, fresh) in &added_per_tuple {
                let tuple = relation.tuple(*tid).expect("delta tuple is live");
                for idx in matching_indices(&keys, &by_first, tuple.items()) {
                    for &a in fresh {
                        if !keys[idx].contains(a) {
                            seeds_per_ann.entry(a).or_default().insert(idx);
                        }
                    }
                }
            }

            let mut discovered_this_sweep = 0u64;
            for &a in &anns_sorted {
                let single = ItemSet::single(a);
                let Some(freq) = self.table.count(&single) else {
                    continue;
                };
                if freq < retention_min {
                    continue;
                }
                let Some(seed_ids) = seeds_per_ann.get(&a) else {
                    continue;
                };
                let mut seeds: Vec<&ItemSet> = seed_ids.iter().map(|&idx| &keys[idx]).collect();
                seeds.sort_unstable_by(|x, y| x.len().cmp(&y.len()).then(x.cmp(y)));
                let postings: Vec<TupleId> = relation.index().tuples_with(a).collect();
                for seed in seeds {
                    let candidate = seed.with(a);
                    if self.table.contains(&candidate) {
                        continue;
                    }
                    debug_assert!(candidate.admitted_by(MiningMode::Annotated));
                    // Levelwise prune: every k-subset must be stored with a
                    // count at the retention level. (Count-based, not mere
                    // presence: the table memoizes evaluated-but-infrequent
                    // candidates, and those must not admit supersets.)
                    let closed = candidate
                        .sub_itemsets()
                        .all(|sub| self.table.count(&sub).is_some_and(|c| c >= retention_min));
                    if !closed {
                        continue;
                    }
                    // Pure-annotation candidates count by posting-bitset
                    // intersection; mixed candidates scan index(a) postings
                    // and test their data part per tuple (Fig. 13's "check
                    // the data tuples annotated with the added annotation").
                    let count = if candidate.data_count() == 0 {
                        relation.index().co_occurrence(candidate.items()) as u64
                    } else {
                        let mut c = 0u64;
                        for &tid in &postings {
                            let t = relation.tuple(tid).expect("indexed tuple is live");
                            if seed.matches(t) {
                                c += 1;
                            }
                        }
                        c
                    };
                    // Memoize the exact count either way: below-retention
                    // candidates would otherwise be re-scanned on every
                    // future batch, and their counts stay exact under the
                    // Fig. 12 delta updates like any other stored itemset.
                    self.touches.note_inserted(&candidate);
                    self.table.insert(candidate, count);
                    if count >= retention_min {
                        self.stats.discovered_itemsets += 1;
                        discovered_this_sweep += 1;
                    }
                }
            }
            if discovered_this_sweep == 0 {
                break;
            }
        }

        self.rederive();
        delta
    }

    // ------------------------------------------------------------------
    // Deletion support — the paper's §6 future work.
    // ------------------------------------------------------------------

    /// Remove annotations from tuples and maintain the rules. Returns the
    /// number of effective removals. Exact; never re-mines (counts only
    /// decrease and the support denominator is unchanged).
    pub fn remove_annotations(
        &mut self,
        relation: &mut AnnotatedRelation,
        updates: &[AnnotationUpdate],
    ) -> usize {
        let mut removed_per_tuple: FxHashMap<TupleId, Vec<Item>> = FxHashMap::default();
        let mut removed_anns: FxHashSet<Item> = FxHashSet::default();
        let mut effective = 0usize;
        for u in updates {
            if relation.remove_annotation(u.tuple, u.annotation) {
                removed_per_tuple
                    .entry(u.tuple)
                    .or_default()
                    .push(u.annotation);
                removed_anns.insert(u.annotation);
                effective += 1;
            }
        }
        if effective == 0 {
            return 0;
        }
        self.stats.deletion_batches += 1;
        self.touches.items.extend(removed_anns.iter().copied());

        // Mirror image of the Fig. 12 update: an itemset lost a match on a
        // touched tuple iff it contains a removed annotation and matched
        // the tuple's pre-removal state (current items ∪ removed items).
        let candidates: Vec<ItemSet> = self
            .table
            .iter()
            .filter(|(s, _)| s.annotation_part().iter().any(|x| removed_anns.contains(x)))
            .map(|(s, _)| s.clone())
            .collect();
        for s in &candidates {
            let mut dec = 0u64;
            for (&tid, removed) in &removed_per_tuple {
                let lost = removed.iter().any(|x| s.contains(*x));
                if !lost {
                    continue;
                }
                let tuple = relation.tuple(tid).expect("touched tuple is live");
                let matched_before = s
                    .items()
                    .iter()
                    .all(|i| tuple.contains(*i) || removed.contains(i));
                if matched_before {
                    dec += 1;
                }
            }
            if dec > 0 {
                self.table.sub_count(s, dec);
            }
        }
        self.rederive();
        effective
    }

    /// Delete whole tuples and maintain the rules. Returns the number of
    /// tuples actually deleted. Exact: the shrinking support denominator can
    /// promote below-retention itemsets, so the budget check may trigger a
    /// fallback re-mine.
    pub fn delete_tuples(&mut self, relation: &mut AnnotatedRelation, tids: &[TupleId]) -> usize {
        let mut deleted_transactions: Vec<Transaction> = Vec::new();
        for &tid in tids {
            let Some(tuple) = relation.tuple(tid) else {
                continue;
            };
            let transaction: Transaction = Box::from(tuple.items());
            if relation.delete_tuple(tid) {
                deleted_transactions.push(transaction);
            }
        }
        if deleted_transactions.is_empty() {
            return 0;
        }
        self.stats.deletion_batches += 1;
        for t in &deleted_transactions {
            self.touches.note_transaction(t);
        }
        let new_size = relation.len() as u64;
        if !self.budget_ok_with(self.added_since, new_size) {
            let n = deleted_transactions.len();
            self.full_remine(relation);
            return n;
        }
        let decrements = count_itemsets_in(&self.table, &deleted_transactions);
        for (s, dec) in decrements {
            self.table.sub_count(&s, dec);
        }
        self.table.set_db_size(new_size);
        self.rederive();
        deleted_transactions.len()
    }

    // ------------------------------------------------------------------
    // Verification and internals.
    // ------------------------------------------------------------------

    /// The paper's validation methodology: compare the maintained rules
    /// against a from-scratch mine of the current relation.
    pub fn verify_against_remine(&self, relation: &AnnotatedRelation) -> bool {
        let fresh = mine_rules(relation, &self.config.thresholds);
        self.valid.identical_to(&fresh)
    }

    fn retention_min_count(&self) -> u64 {
        support_count_threshold(
            self.config.thresholds.min_support * self.config.retention,
            self.table.db_size(),
        )
    }

    /// Exactness condition: an itemset that was below the retention level
    /// at the last full mine (count ≤ retained_min_then − 1) has gained at
    /// most `added` occurrences since, so it cannot reach the current
    /// α-threshold as long as
    /// `retained_min_then − 1 + added < support_count_threshold(α, n_now)`.
    fn budget_ok_with(&self, added: u64, db_size_now: u64) -> bool {
        let retained_min_then = support_count_threshold(
            self.config.thresholds.min_support * self.config.retention,
            self.base_size,
        );
        let current_min = support_count_threshold(self.config.thresholds.min_support, db_size_now);
        retained_min_then - 1 + added < current_min
    }

    fn full_remine(&mut self, relation: &AnnotatedRelation) {
        let transactions = transactions_of(relation, MiningMode::Annotated);
        let retained_support = self.config.thresholds.min_support * self.config.retention;
        self.table = apriori(
            &transactions,
            retained_support,
            &AprioriConfig {
                mode: MiningMode::Annotated,
                counting: self.config.counting,
                max_len: None,
            },
        );
        self.base_size = relation.len() as u64;
        self.added_since = 0;
        self.stats.full_remines += 1;
        self.touches.all = true;
        self.rederive();
    }

    pub(crate) fn rederive(&mut self) {
        let strict = self.config.thresholds;
        let loose = strict.scaled(self.config.retention);
        let (valid, near) = derive_rules_partitioned(&self.table, &strict, &loose);
        self.valid = valid;
        self.near = near;
    }
}

/// Count how many of `transactions` each stored itemset matches, bucketed
/// by first item so each transaction probes only plausible itemsets.
/// Returns only itemsets with non-zero matches.
/// Group itemset indices by their first item, for prefix-probed matching.
fn bucket_by_first_item(keys: &[ItemSet]) -> FxHashMap<Item, Vec<usize>> {
    let mut by_first: FxHashMap<Item, Vec<usize>> = FxHashMap::default();
    for (i, s) in keys.iter().enumerate() {
        if let Some(&first) = s.items().first() {
            by_first.entry(first).or_default().push(i);
        }
    }
    by_first
}

/// Indices of the itemsets contained in the sorted `transaction`, probing
/// only the buckets of items the transaction actually holds.
fn matching_indices(
    keys: &[ItemSet],
    by_first: &FxHashMap<Item, Vec<usize>>,
    transaction: &[Item],
) -> Vec<usize> {
    let mut out = Vec::new();
    for (pos, item) in transaction.iter().enumerate() {
        let Some(bucket) = by_first.get(item) else {
            continue;
        };
        for &ci in bucket {
            if keys[ci].is_subset_of(&transaction[pos..]) {
                out.push(ci);
            }
        }
    }
    out
}

/// Count how many of `transactions` each stored itemset matches. Returns
/// only itemsets with non-zero matches.
fn count_itemsets_in(
    table: &FrequentItemsets,
    transactions: &[Transaction],
) -> Vec<(ItemSet, u64)> {
    let keys: Vec<ItemSet> = table.iter().map(|(s, _)| s.clone()).collect();
    let by_first = bucket_by_first_item(&keys);
    let mut counts = vec![0u64; keys.len()];
    for t in transactions {
        for idx in matching_indices(&keys, &by_first, t) {
            counts[idx] += 1;
        }
    }
    keys.into_iter()
        .zip(counts)
        .filter(|&(_, c)| c > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_store::{generate, random_annotation_batch, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(alpha: f64, beta: f64, retention: f64) -> IncrementalConfig {
        IncrementalConfig {
            thresholds: Thresholds::new(alpha, beta),
            retention,
            counting: CountingStrategy::HashTree,
        }
    }

    fn demo() -> (AnnotatedRelation, IncrementalMiner) {
        let ds = generate(&GeneratorConfig::tiny(21));
        let rel = ds.relation;
        let miner = IncrementalMiner::mine_initial(&rel, config(0.2, 0.6, 0.5));
        (rel, miner)
    }

    #[test]
    fn initial_mine_matches_batch_mining() {
        let (rel, miner) = demo();
        assert!(miner.verify_against_remine(&rel));
        assert_eq!(miner.stats().full_remines, 1);
        assert!(!miner.rules().is_empty(), "tiny dataset should yield rules");
    }

    #[test]
    fn case1_annotated_tuples_stay_exact() {
        let (mut rel, mut miner) = demo();
        let mut rng = StdRng::seed_from_u64(5);
        let batch = anno_store::random_annotated_tuples(&mut rel, &mut rng, 15, 4);
        miner.add_annotated_tuples(&mut rel, batch);
        assert!(miner.verify_against_remine(&rel));
        assert_eq!(miner.stats().case1_batches, 1);
        assert_eq!(miner.stats().full_remines, 1, "within budget: no re-mine");
    }

    #[test]
    fn case2_unannotated_tuples_stay_exact() {
        let (mut rel, mut miner) = demo();
        let mut rng = StdRng::seed_from_u64(6);
        let batch = anno_store::random_unannotated_tuples(&mut rel, &mut rng, 15, 4);
        let before = miner.rules().len();
        miner.add_unannotated_tuples(&mut rel, batch);
        assert!(miner.verify_against_remine(&rel));
        // Supports only fall in Case 2: the rule set can only shrink.
        assert!(miner.rules().len() <= before);
    }

    #[test]
    #[should_panic(expected = "Case 2 requires un-annotated tuples")]
    fn case2_rejects_annotated_tuples() {
        let (mut rel, mut miner) = demo();
        let a = rel.vocab_mut().annotation("sneaky");
        let x = rel.vocab_mut().data("1");
        miner.add_unannotated_tuples(&mut rel, vec![Tuple::new([x], [a])]);
    }

    #[test]
    fn case3_annotation_batches_stay_exact() {
        let (mut rel, mut miner) = demo();
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..5 {
            let batch = random_annotation_batch(&rel, &mut rng, 20);
            miner.apply_annotations(&mut rel, batch);
            assert!(
                miner.verify_against_remine(&rel),
                "diverged from re-mine at round {round}"
            );
        }
        assert_eq!(miner.stats().case3_batches, 5);
        assert_eq!(miner.stats().full_remines, 1, "Case 3 never re-mines");
    }

    #[test]
    fn case3_discovers_rules_for_brand_new_annotations() {
        // Build a relation where data pattern {x,y} is frequent but carries
        // no annotation; then annotate most {x,y} tuples with a brand-new
        // annotation in one batch. The miner must discover {x,y} ⇒ NEW.
        let mut rel = AnnotatedRelation::new("R");
        let x = rel.vocab_mut().data("10");
        let y = rel.vocab_mut().data("20");
        let z = rel.vocab_mut().data("30");
        for _ in 0..8 {
            rel.insert(Tuple::new([x, y], []));
        }
        for _ in 0..2 {
            rel.insert(Tuple::new([z], []));
        }
        let mut miner = IncrementalMiner::mine_initial(&rel, config(0.4, 0.8, 0.5));
        assert!(miner.rules().is_empty());

        let fresh = rel.vocab_mut().annotation("NEW");
        let updates: Vec<AnnotationUpdate> = (0..7)
            .map(|i| AnnotationUpdate {
                tuple: TupleId(i),
                annotation: fresh,
            })
            .collect();
        miner.apply_annotations(&mut rel, updates);
        assert!(miner.verify_against_remine(&rel));
        let rule = miner
            .rules()
            .get(&ItemSet::from_unsorted(vec![x, y]), fresh)
            .expect("discovered {x,y} ⇒ NEW");
        assert_eq!(rule.union_count, 7);
        assert_eq!(rule.lhs_count, 8);
        assert!(miner.stats().discovered_itemsets > 0);
    }

    #[test]
    fn budget_exhaustion_triggers_fallback_remine() {
        let (mut rel, mut miner) = demo();
        let budget = miner.remaining_tuple_budget();
        assert!(budget > 0);
        let mut rng = StdRng::seed_from_u64(9);
        // One batch larger than the budget must force a re-mine and still
        // be exact.
        let batch = anno_store::random_annotated_tuples(&mut rel, &mut rng, budget as usize + 1, 4);
        miner.add_annotated_tuples(&mut rel, batch);
        assert_eq!(miner.stats().full_remines, 2);
        assert!(miner.verify_against_remine(&rel));
    }

    #[test]
    fn remove_annotations_is_exact_and_can_create_rules() {
        // {x} ⇒ A holds at 6/8 = 0.75 < 0.8; removing A-free x-tuples'
        // *other* annotation cannot help, but deleting annotation B from
        // tuples where B dilutes {B} ⇒ A confidence can create that rule.
        let (mut rel, mut miner) = demo();
        let mut rng = StdRng::seed_from_u64(11);
        // Remove a random slice of existing annotation occurrences.
        let occurrences: Vec<AnnotationUpdate> = rel
            .iter()
            .flat_map(|(tid, t)| {
                t.annotations()
                    .iter()
                    .map(move |&a| AnnotationUpdate {
                        tuple: tid,
                        annotation: a,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let sample: Vec<AnnotationUpdate> = occurrences
            .into_iter()
            .filter(|_| rand::Rng::gen_bool(&mut rng, 0.1))
            .collect();
        let removed = miner.remove_annotations(&mut rel, &sample);
        assert_eq!(removed, sample.len());
        assert!(miner.verify_against_remine(&rel));
        assert_eq!(miner.stats().full_remines, 1, "removals never re-mine");
    }

    #[test]
    fn delete_tuples_is_exact() {
        let (mut rel, mut miner) = demo();
        let victims: Vec<TupleId> = rel.iter().map(|(tid, _)| tid).take(10).collect();
        let n = miner.delete_tuples(&mut rel, &victims);
        assert_eq!(n, 10);
        assert!(miner.verify_against_remine(&rel));
        // Double-deletion is a no-op.
        assert_eq!(miner.delete_tuples(&mut rel, &victims), 0);
    }

    #[test]
    fn mixed_workload_maintains_exactness() {
        let (mut rel, mut miner) = demo();
        let mut rng = StdRng::seed_from_u64(13);
        for round in 0..4 {
            let ann_batch = random_annotation_batch(&rel, &mut rng, 10);
            miner.apply_annotations(&mut rel, ann_batch);
            let tup_batch = anno_store::random_annotated_tuples(&mut rel, &mut rng, 5, 4);
            miner.add_annotated_tuples(&mut rel, tup_batch);
            let plain = anno_store::random_unannotated_tuples(&mut rel, &mut rng, 5, 4);
            miner.add_unannotated_tuples(&mut rel, plain);
            let victims: Vec<TupleId> = rel.iter().map(|(tid, _)| tid).take(2).collect();
            miner.delete_tuples(&mut rel, &victims);
            assert!(
                miner.verify_against_remine(&rel),
                "mixed workload diverged at round {round}"
            );
        }
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let (mut rel, mut miner) = demo();
        let stats_before = miner.stats();
        let rules_before = miner.rules().clone();
        miner.apply_annotations(&mut rel, Vec::new());
        miner.remove_annotations(&mut rel, &[]);
        miner.delete_tuples(&mut rel, &[]);
        assert_eq!(miner.stats(), stats_before);
        assert!(miner.rules().identical_to(&rules_before));
    }

    #[test]
    #[should_panic(expected = "retention must be in")]
    fn zero_retention_is_rejected() {
        let ds = generate(&GeneratorConfig::tiny(1));
        let _ = IncrementalMiner::mine_initial(&ds.relation, config(0.4, 0.8, 0.0));
    }
}
