//! The Agrawal–Srikant hash tree for candidate support counting.
//!
//! Fig. 3 of the paper: "the algorithm uses breadth-first search and a hash
//! tree structure to count candidate item sets". Interior nodes hash the
//! transaction item at the current depth into a fixed fan-out; leaves hold
//! small candidate vectors that are checked by merge-walk. Counting a
//! transaction visits only the subtrees its own items hash into, which is
//! the structure's entire point — the `counting` bench compares it against
//! flat per-candidate scanning.

use anno_store::Item;

use crate::itemset::ItemSet;

const FANOUT: usize = 8;
const LEAF_CAPACITY: usize = 24;

#[derive(Debug)]
enum Node {
    Leaf(Vec<usize>),
    Interior(Box<[Node; FANOUT]>),
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }
}

fn bucket(item: Item) -> usize {
    // Multiply-shift on the raw id: items are dense per namespace, so the
    // golden-ratio multiplier spreads consecutive ids across buckets.
    (item.raw().wrapping_mul(0x9E37_79B9) >> 16) as usize % FANOUT
}

/// A hash tree over equal-length candidate itemsets, with per-candidate
/// support counters.
#[derive(Debug)]
pub struct HashTree {
    root: Node,
    candidates: Vec<ItemSet>,
    counts: Vec<u64>,
    k: usize,
}

impl HashTree {
    /// Build a tree over `candidates`, all of which must have length `k`.
    pub fn new(candidates: Vec<ItemSet>, k: usize) -> HashTree {
        assert!(k > 0, "hash tree requires non-empty candidates");
        debug_assert!(candidates.iter().all(|c| c.len() == k));
        let mut tree = HashTree {
            root: Node::empty_leaf(),
            counts: vec![0; candidates.len()],
            candidates,
            k,
        };
        for idx in 0..tree.candidates.len() {
            Self::insert(&mut tree.root, &tree.candidates, idx, 0, tree.k);
        }
        tree
    }

    fn insert(node: &mut Node, candidates: &[ItemSet], idx: usize, depth: usize, k: usize) {
        match node {
            Node::Interior(children) => {
                let item = candidates[idx].items()[depth];
                Self::insert(&mut children[bucket(item)], candidates, idx, depth + 1, k);
            }
            Node::Leaf(slots) => {
                slots.push(idx);
                // Split overfull leaves while there are items left to hash.
                if slots.len() > LEAF_CAPACITY && depth < k {
                    let old = std::mem::take(slots);
                    let mut children: Box<[Node; FANOUT]> =
                        Box::new(std::array::from_fn(|_| Node::empty_leaf()));
                    for i in old {
                        let item = candidates[i].items()[depth];
                        match &mut children[bucket(item)] {
                            Node::Leaf(v) => v.push(i),
                            Node::Interior(_) => unreachable!("fresh children are leaves"),
                        }
                    }
                    *node = Node::Interior(children);
                }
            }
        }
    }

    /// Count one transaction (sorted item slice) against all candidates it
    /// contains.
    pub fn count_transaction(&mut self, transaction: &[Item]) {
        if transaction.len() < self.k {
            return;
        }
        // Recursive descent: at depth d we may choose any not-yet-consumed
        // item as the d-th hashed item, mirroring subset choice. Leaves
        // verify candidates against the FULL transaction — the descent only
        // has to *reach* every leaf that might contain a match, and taking
        // the earliest position per bucket at each level guarantees that
        // (later positions only ever see a subset of the remaining items).
        Self::descend(
            &self.root,
            transaction,
            0,
            0,
            self.k,
            &self.candidates,
            &mut self.counts,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        node: &Node,
        transaction: &[Item],
        start: usize,
        depth: usize,
        k: usize,
        candidates: &[ItemSet],
        counts: &mut [u64],
    ) {
        match node {
            Node::Leaf(slots) => {
                for &idx in slots {
                    if candidates[idx].is_subset_of(transaction) {
                        counts[idx] += 1;
                    }
                }
            }
            Node::Interior(children) => {
                // Need k - depth more items; positions must leave enough
                // suffix for the remaining hashes.
                let remaining = k - depth;
                if transaction.len() < start + remaining {
                    return;
                }
                let limit = transaction.len() - remaining;
                let mut visited = [false; FANOUT];
                for pos in start..=limit {
                    let b = bucket(transaction[pos]);
                    if visited[b] {
                        continue; // already descended via an earlier position
                    }
                    visited[b] = true;
                    Self::descend(
                        &children[b],
                        transaction,
                        pos + 1,
                        depth + 1,
                        k,
                        candidates,
                        counts,
                    );
                }
            }
        }
    }

    /// Consume the tree, returning `(candidate, support_count)` pairs.
    pub fn into_counts(self) -> Vec<(ItemSet, u64)> {
        self.candidates.into_iter().zip(self.counts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> Item {
        Item::data(i)
    }

    fn set(items: &[u32]) -> ItemSet {
        ItemSet::from_unsorted(items.iter().copied().map(d).collect())
    }

    fn brute_force(candidates: &[ItemSet], transactions: &[Vec<Item>]) -> Vec<u64> {
        candidates
            .iter()
            .map(|c| transactions.iter().filter(|t| c.is_subset_of(t)).count() as u64)
            .collect()
    }

    #[test]
    fn counts_match_brute_force_small() {
        let candidates = vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3]), set(&[4, 5])];
        let transactions: Vec<Vec<Item>> = vec![
            vec![d(1), d(2), d(3)],
            vec![d(1), d(3)],
            vec![d(4), d(5)],
            vec![d(2)],
        ];
        let mut tree = HashTree::new(candidates.clone(), 2);
        for t in &transactions {
            tree.count_transaction(t);
        }
        let counts: Vec<u64> = tree.into_counts().into_iter().map(|(_, c)| c).collect();
        assert_eq!(counts, brute_force(&candidates, &transactions));
    }

    #[test]
    fn counts_match_brute_force_randomised() {
        // Deterministic pseudo-random stress: enough candidates to force
        // leaf splits at several depths.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let k = 3;
        let mut candidates: Vec<ItemSet> = Vec::new();
        while candidates.len() < 300 {
            let s = set(&[next() % 30, next() % 30, next() % 30]);
            if s.len() == k && !candidates.contains(&s) {
                candidates.push(s);
            }
        }
        let transactions: Vec<Vec<Item>> = (0..200)
            .map(|_| {
                let mut items: Vec<Item> = (0..(3 + next() % 8)).map(|_| d(next() % 30)).collect();
                items.sort_unstable();
                items.dedup();
                items
            })
            .collect();
        let mut tree = HashTree::new(candidates.clone(), k);
        for t in &transactions {
            tree.count_transaction(t);
        }
        let counts: Vec<u64> = tree.into_counts().into_iter().map(|(_, c)| c).collect();
        assert_eq!(counts, brute_force(&candidates, &transactions));
    }

    #[test]
    fn short_transactions_are_skipped() {
        let mut tree = HashTree::new(vec![set(&[1, 2, 3])], 3);
        tree.count_transaction(&[d(1), d(2)]);
        assert_eq!(tree.into_counts()[0].1, 0);
    }

    #[test]
    fn single_item_candidates() {
        let mut tree = HashTree::new(vec![set(&[1]), set(&[2])], 1);
        tree.count_transaction(&[d(1), d(3)]);
        tree.count_transaction(&[d(1), d(2)]);
        let counts: Vec<u64> = tree.into_counts().into_iter().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![2, 1]);
    }
}
