//! Itemsets and transaction encoding.
//!
//! A mining *transaction* is a tuple viewed as its flat sorted item slice
//! (data values + annotation-like items). An [`ItemSet`] is a sorted,
//! deduplicated, immutable set of items — the unit of frequent-pattern
//! mining and the LHS of association rules. Because [`Item`]'s namespace
//! tag sorts data values before annotations before labels, an itemset's
//! data part is a prefix and its annotation part a suffix, and classifying
//! an itemset for the paper's rule shapes (Definitions 4.2/4.3) is O(1)
//! after a partition-point.

use anno_store::{AnnotatedRelation, Item, Tuple};

/// How tuples are projected into transactions and which itemsets are
/// admissible, encoding the paper's "early elimination" pruning soundly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiningMode {
    /// Mine data-to-annotation correlations (Definition 4.2).
    ///
    /// Transactions carry data and annotations; itemsets with more than one
    /// annotation-like item are pruned — they can never produce a
    /// `x1 … xk ⇒ a` rule, while pure-data itemsets must be **kept** (they
    /// are the confidence denominators).
    DataToAnnotation,
    /// Mine annotation-to-annotation correlations (Definition 4.3).
    ///
    /// Transactions are projected onto annotation-like items only.
    AnnotationToAnnotation,
    /// Mine both rule shapes in one pass (the incremental miner's mode).
    ///
    /// Transactions carry everything; itemsets mixing data values with two
    /// or more annotations are pruned — they serve neither rule shape.
    Annotated,
    /// Plain Apriori with no pruning (baseline / cross-check).
    Unrestricted,
}

impl MiningMode {
    /// Is an itemset with `data_count` data items and `ann_count`
    /// annotation-like items admissible under this mode?
    pub fn admits(self, data_count: usize, ann_count: usize) -> bool {
        match self {
            MiningMode::DataToAnnotation => ann_count <= 1,
            MiningMode::AnnotationToAnnotation => data_count == 0,
            MiningMode::Annotated => data_count == 0 || ann_count <= 1,
            MiningMode::Unrestricted => true,
        }
    }

    /// Does this mode project transactions onto annotations only?
    pub fn annotations_only(self) -> bool {
        self == MiningMode::AnnotationToAnnotation
    }
}

/// A sorted, deduplicated, immutable set of items.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemSet(Box<[Item]>);

impl ItemSet {
    /// The empty itemset.
    pub fn empty() -> ItemSet {
        ItemSet(Box::from([]))
    }

    /// A single-item set.
    pub fn single(item: Item) -> ItemSet {
        ItemSet(Box::from([item]))
    }

    /// Build from an already-sorted, deduplicated slice (checked in debug).
    pub fn from_sorted(items: Vec<Item>) -> ItemSet {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "not sorted/dedup");
        ItemSet(items.into_boxed_slice())
    }

    /// Build from arbitrary items (sorts and deduplicates).
    pub fn from_unsorted(mut items: Vec<Item>) -> ItemSet {
        items.sort_unstable();
        items.dedup();
        ItemSet(items.into_boxed_slice())
    }

    /// The items, sorted ascending.
    pub fn items(&self) -> &[Item] {
        &self.0
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// Index of the first annotation-like item (== number of data items).
    pub fn data_count(&self) -> usize {
        self.0.partition_point(|i| i.is_data())
    }

    /// Number of annotation-like items.
    pub fn annotation_count(&self) -> usize {
        self.len() - self.data_count()
    }

    /// The data-value prefix.
    pub fn data_part(&self) -> &[Item] {
        &self.0[..self.data_count()]
    }

    /// The annotation-like suffix.
    pub fn annotation_part(&self) -> &[Item] {
        &self.0[self.data_count()..]
    }

    /// `true` iff every item of `self` occurs in the sorted slice `other`
    /// (merge-walk).
    pub fn is_subset_of(&self, other: &[Item]) -> bool {
        let mut theirs = other.iter();
        'outer: for want in self.0.iter() {
            for have in theirs.by_ref() {
                match have.cmp(want) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `true` iff the tuple contains every item of `self`.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.is_subset_of(tuple.items())
    }

    /// The set with `item` removed (no-op clone if absent).
    pub fn without(&self, item: Item) -> ItemSet {
        match self.0.binary_search(&item) {
            Ok(pos) => {
                let mut v = self.0.to_vec();
                v.remove(pos);
                ItemSet(v.into_boxed_slice())
            }
            Err(_) => self.clone(),
        }
    }

    /// The set with `item` inserted (no-op clone if present).
    pub fn with(&self, item: Item) -> ItemSet {
        match self.0.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.to_vec();
                v.insert(pos, item);
                ItemSet(v.into_boxed_slice())
            }
        }
    }

    /// Apriori candidate join: if `self` and `other` are equal-length sets
    /// sharing all but the last item, and `self`'s last < `other`'s last,
    /// return their union of length `k+1`.
    pub fn join_prefix(&self, other: &ItemSet) -> Option<ItemSet> {
        let k = self.len();
        if k == 0 || other.len() != k {
            return None;
        }
        if self.0[..k - 1] != other.0[..k - 1] || self.0[k - 1] >= other.0[k - 1] {
            return None;
        }
        let mut v = self.0.to_vec();
        v.push(other.0[k - 1]);
        Some(ItemSet(v.into_boxed_slice()))
    }

    /// Iterate all `(k-1)`-subsets (each obtained by dropping one item).
    pub fn sub_itemsets(&self) -> impl Iterator<Item = ItemSet> + '_ {
        (0..self.len()).map(move |drop| {
            let mut v = Vec::with_capacity(self.len() - 1);
            v.extend_from_slice(&self.0[..drop]);
            v.extend_from_slice(&self.0[drop + 1..]);
            ItemSet(v.into_boxed_slice())
        })
    }

    /// Is this itemset admissible under `mode`?
    pub fn admitted_by(&self, mode: MiningMode) -> bool {
        mode.admits(self.data_count(), self.annotation_count())
    }
}

impl FromIterator<Item> for ItemSet {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        ItemSet::from_unsorted(iter.into_iter().collect())
    }
}

/// A transaction: one tuple's projected item slice.
pub type Transaction = Box<[Item]>;

/// Project the live tuples of a relation into transactions under `mode`.
///
/// Walks the relation segment-at-a-time: each segment is an independent
/// `Arc`-shared block, so a full-mine projection over a published
/// snapshot touches exactly the blocks the snapshot holds — no flat-slice
/// assumption, and a natural unit for future per-segment parallelism.
pub fn transactions_of(relation: &AnnotatedRelation, mode: MiningMode) -> Vec<Transaction> {
    let mut out: Vec<Transaction> = Vec::with_capacity(relation.len());
    for segment in relation.segments() {
        out.extend(segment.iter_live().map(|(_, tuple)| {
            if mode.annotations_only() {
                Box::from(tuple.annotations())
            } else {
                Box::from(tuple.items())
            }
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> Item {
        Item::data(i)
    }
    fn a(i: u32) -> Item {
        Item::annotation(i)
    }

    #[test]
    fn from_unsorted_normalises() {
        let s = ItemSet::from_unsorted(vec![a(1), d(5), d(2), d(5)]);
        assert_eq!(s.items(), &[d(2), d(5), a(1)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn partition_accessors() {
        let s = ItemSet::from_unsorted(vec![d(1), a(2), a(7), d(3)]);
        assert_eq!(s.data_count(), 2);
        assert_eq!(s.annotation_count(), 2);
        assert_eq!(s.data_part(), &[d(1), d(3)]);
        assert_eq!(s.annotation_part(), &[a(2), a(7)]);
    }

    #[test]
    fn subset_merge_walk() {
        let s = ItemSet::from_unsorted(vec![d(1), d(5)]);
        assert!(s.is_subset_of(&[d(1), d(3), d(5), a(0)]));
        assert!(!s.is_subset_of(&[d(1), d(3)]));
        assert!(ItemSet::empty().is_subset_of(&[]));
        assert!(!s.is_subset_of(&[d(5)]));
    }

    #[test]
    fn with_and_without() {
        let s = ItemSet::from_unsorted(vec![d(1), d(3)]);
        assert_eq!(s.with(d(2)).items(), &[d(1), d(2), d(3)]);
        assert_eq!(s.with(d(1)), s);
        assert_eq!(s.without(d(1)).items(), &[d(3)]);
        assert_eq!(s.without(d(9)), s);
    }

    #[test]
    fn join_prefix_follows_apriori_rules() {
        let ab = ItemSet::from_unsorted(vec![d(1), d(2)]);
        let ac = ItemSet::from_unsorted(vec![d(1), d(3)]);
        let bc = ItemSet::from_unsorted(vec![d(2), d(3)]);
        assert_eq!(ab.join_prefix(&ac).unwrap().items(), &[d(1), d(2), d(3)]);
        assert!(ac.join_prefix(&ab).is_none(), "wrong order");
        assert!(ab.join_prefix(&bc).is_none(), "prefix differs");
        assert!(ab.join_prefix(&ab).is_none(), "equal last items");
    }

    #[test]
    fn sub_itemsets_enumerates_all_k_minus_1() {
        let s = ItemSet::from_unsorted(vec![d(1), d(2), d(3)]);
        let subs: Vec<ItemSet> = s.sub_itemsets().collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&ItemSet::from_unsorted(vec![d(2), d(3)])));
        assert!(subs.contains(&ItemSet::from_unsorted(vec![d(1), d(3)])));
        assert!(subs.contains(&ItemSet::from_unsorted(vec![d(1), d(2)])));
    }

    #[test]
    fn mode_admission_rules() {
        use MiningMode::*;
        // pure data
        assert!(DataToAnnotation.admits(3, 0));
        assert!(Annotated.admits(3, 0));
        assert!(!AnnotationToAnnotation.admits(3, 0));
        // data + one annotation
        assert!(DataToAnnotation.admits(3, 1));
        assert!(Annotated.admits(3, 1));
        // data + two annotations
        assert!(!DataToAnnotation.admits(3, 2));
        assert!(!Annotated.admits(3, 2));
        assert!(Unrestricted.admits(3, 2));
        // pure annotations
        assert!(AnnotationToAnnotation.admits(0, 4));
        assert!(Annotated.admits(0, 4));
        assert!(!DataToAnnotation.admits(0, 4));
    }

    #[test]
    fn transactions_respect_mode_projection() {
        let mut rel = AnnotatedRelation::new("R");
        let x = rel.vocab_mut().data("1");
        let an = rel.vocab_mut().annotation("A");
        rel.insert(Tuple::new([x], [an]));
        let full = transactions_of(&rel, MiningMode::Annotated);
        assert_eq!(&*full[0], &[x, an]);
        let anns = transactions_of(&rel, MiningMode::AnnotationToAnnotation);
        assert_eq!(&*anns[0], &[an]);
    }
}
