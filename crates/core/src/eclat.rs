//! Eclat: depth-first vertical mining over tid-bitsets.
//!
//! The third independent miner (after Apriori and FP-Growth), used for
//! cross-checking and as a bench baseline. Each item maps to the bitset of
//! transaction ids containing it; a pattern's support is the cardinality of
//! the intersection of its items' bitsets, and the search extends patterns
//! depth-first with lexicographically larger items. [`MiningMode`]
//! admissibility prunes branches exactly as in FP-Growth.

use anno_store::fxhash::FxHashMap;
use anno_store::{BitSet, Item};

use crate::frequent::{support_count_threshold, FrequentItemsets};
use crate::itemset::{ItemSet, MiningMode, Transaction};

/// Mine all admissible itemsets with support ≥ `min_support` using Eclat.
pub fn eclat(transactions: &[Transaction], min_support: f64, mode: MiningMode) -> FrequentItemsets {
    let db_size = transactions.len() as u64;
    let mut result = FrequentItemsets::new(db_size);
    if db_size == 0 {
        return result;
    }
    let min_count = support_count_threshold(min_support, db_size);

    // Vertical layout: item → tid bitset.
    let mut tidsets: FxHashMap<Item, BitSet> = FxHashMap::default();
    for (tid, t) in transactions.iter().enumerate() {
        for &item in t.iter() {
            tidsets.entry(item).or_default().insert(tid as u32);
        }
    }
    let mut items: Vec<(Item, BitSet)> = tidsets
        .into_iter()
        .filter(|(_, bits)| bits.len() as u64 >= min_count)
        .collect();
    items.sort_unstable_by_key(|&(item, _)| item);

    // Frequent singletons (mode-admissible ones).
    let frontier: Vec<(Item, BitSet)> = items;
    for (item, bits) in &frontier {
        let single = ItemSet::single(*item);
        if single.admitted_by(mode) {
            result.insert(single, bits.len() as u64);
        }
    }
    let prefix = ItemSet::empty();
    extend(&prefix, &frontier, min_count, mode, &mut result);
    result
}

/// Depth-first extension: for each item in the frontier, intersect with
/// every later item, recursing on the surviving extensions.
fn extend(
    prefix: &ItemSet,
    frontier: &[(Item, BitSet)],
    min_count: u64,
    mode: MiningMode,
    result: &mut FrequentItemsets,
) {
    for (i, (item, bits)) in frontier.iter().enumerate() {
        let pattern = prefix.with(*item);
        if !branch_viable(&pattern, mode) {
            continue;
        }
        let mut next: Vec<(Item, BitSet)> = Vec::new();
        for (other, other_bits) in &frontier[i + 1..] {
            let joined = bits.intersection(other_bits);
            if joined.len() as u64 >= min_count {
                let extended = pattern.with(*other);
                if extended.admitted_by(mode) {
                    result.insert(extended, joined.len() as u64);
                }
                next.push((*other, joined));
            }
        }
        if !next.is_empty() {
            extend(&pattern, &next, min_count, mode, result);
        }
    }
}

/// Can this branch still produce admissible patterns?
///
/// Items are explored in ascending order, and [`Item`]'s namespace tag sorts
/// data before annotations — so once a pattern holds annotations, all
/// further extensions are annotations too. A pattern that is inadmissible
/// now can only gain more annotation items, which never restores
/// admissibility for the modes here.
fn branch_viable(pattern: &ItemSet, mode: MiningMode) -> bool {
    match mode {
        MiningMode::Unrestricted => true,
        MiningMode::DataToAnnotation => pattern.annotation_count() <= 1,
        MiningMode::AnnotationToAnnotation => pattern.data_count() == 0,
        MiningMode::Annotated => pattern.data_count() == 0 || pattern.annotation_count() <= 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};
    use crate::fpgrowth::fpgrowth;

    fn d(i: u32) -> Item {
        Item::data(i)
    }
    fn a(i: u32) -> Item {
        Item::annotation(i)
    }
    fn tx(items: &[Item]) -> Transaction {
        let mut v = items.to_vec();
        v.sort_unstable();
        v.dedup();
        v.into_boxed_slice()
    }

    #[test]
    fn all_three_miners_agree() {
        let db: Vec<Transaction> = vec![
            tx(&[d(1), d(3), d(4), a(1)]),
            tx(&[d(2), d(3), d(5)]),
            tx(&[d(1), d(2), d(3), d(5), a(1)]),
            tx(&[d(2), d(5), a(2)]),
            tx(&[d(1), d(3), a(1), a(2)]),
        ];
        for mode in [
            MiningMode::Unrestricted,
            MiningMode::Annotated,
            MiningMode::DataToAnnotation,
            MiningMode::AnnotationToAnnotation,
        ] {
            let e = eclat(&db, 0.4, mode);
            let f = fpgrowth(&db, 0.4, mode);
            let ap = apriori(
                &db,
                0.4,
                &AprioriConfig {
                    mode,
                    ..Default::default()
                },
            );
            assert_eq!(e.sorted(), ap.sorted(), "eclat vs apriori, mode {mode:?}");
            assert_eq!(
                f.sorted(),
                ap.sorted(),
                "fpgrowth vs apriori, mode {mode:?}"
            );
        }
    }

    #[test]
    fn eclat_counts_are_exact() {
        let db: Vec<Transaction> = vec![tx(&[d(1), d(2)]), tx(&[d(1), d(2)]), tx(&[d(1)])];
        let e = eclat(&db, 0.3, MiningMode::Unrestricted);
        assert_eq!(e.count(&ItemSet::from_unsorted(vec![d(1)])), Some(3));
        assert_eq!(e.count(&ItemSet::from_unsorted(vec![d(1), d(2)])), Some(2));
    }

    #[test]
    fn empty_database() {
        assert!(eclat(&[], 0.5, MiningMode::Unrestricted).is_empty());
    }
}
