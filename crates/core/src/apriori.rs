//! The Apriori algorithm (paper §3, Fig. 3) with annotation-aware pruning.
//!
//! Classic levelwise mining: frequent `k`-itemsets are joined into `(k+1)`-
//! candidates, candidates whose sub-itemsets are not all frequent are
//! pruned, and survivors are counted against the transaction list — with a
//! hash tree (as Fig. 3 prescribes) or by first-item-bucketed direct
//! scanning (the ablation baseline; see the `counting` bench).
//!
//! The paper's modification — "early elimination of any candidate patterns
//! that didn't include at least one annotation" — is applied through
//! [`MiningMode`]: candidates that cannot participate in any Definition
//! 4.2/4.3 rule are dropped *before counting*, while pure-data itemsets are
//! retained because rule confidence needs them as denominators (see
//! DESIGN.md decision 3 for why the literal reading is unsound).

use anno_store::fxhash::FxHashSet;

use crate::frequent::{support_count_threshold, FrequentItemsets};
use crate::hashtree::HashTree;
use crate::itemset::{ItemSet, MiningMode, Transaction};

/// How candidate supports are counted each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountingStrategy {
    /// Agrawal–Srikant hash tree (the paper's Fig. 3 structure).
    #[default]
    HashTree,
    /// Per-candidate subset scanning, bucketed by first item.
    DirectScan,
    /// [`CountingStrategy::DirectScan`] parallelised across transaction
    /// chunks with scoped threads (support counting is embarrassingly
    /// parallel: per-chunk counts sum).
    ParallelScan,
}

/// Apriori configuration.
#[derive(Debug, Clone, Copy)]
pub struct AprioriConfig {
    /// Admissibility pruning (see [`MiningMode`]).
    pub mode: MiningMode,
    /// Candidate counting structure.
    pub counting: CountingStrategy,
    /// Optional cap on itemset length (None = unbounded).
    pub max_len: Option<usize>,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig {
            mode: MiningMode::Annotated,
            counting: CountingStrategy::HashTree,
            max_len: None,
        }
    }
}

/// Mine all admissible itemsets with support ≥ `min_support` from
/// `transactions` (each transaction sorted + deduplicated).
pub fn apriori(
    transactions: &[Transaction],
    min_support: f64,
    config: &AprioriConfig,
) -> FrequentItemsets {
    let db_size = transactions.len() as u64;
    let mut result = FrequentItemsets::new(db_size);
    if db_size == 0 {
        return result;
    }
    let min_count = support_count_threshold(min_support, db_size);

    // Level 1: count singletons with a flat map.
    let mut singleton_counts: anno_store::fxhash::FxHashMap<anno_store::Item, u64> =
        Default::default();
    for t in transactions {
        for &item in t.iter() {
            *singleton_counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut level: Vec<ItemSet> = singleton_counts
        .iter()
        .filter(|&(&item, &c)| {
            let (dc, ac) = if item.is_data() { (1, 0) } else { (0, 1) };
            c >= min_count && config.mode.admits(dc, ac)
        })
        .map(|(&item, _)| ItemSet::single(item))
        .collect();
    level.sort_unstable();
    for s in &level {
        result.insert(s.clone(), singleton_counts[&s.items()[0]]);
    }

    let mut k = 1usize;
    while !level.is_empty() {
        k += 1;
        if config.max_len.is_some_and(|m| k > m) {
            break;
        }
        let candidates = generate_candidates(&level, config.mode, &result);
        if candidates.is_empty() {
            break;
        }
        let counted = match config.counting {
            CountingStrategy::HashTree => count_hash_tree(candidates, k, transactions),
            CountingStrategy::DirectScan => count_direct(candidates, transactions),
            CountingStrategy::ParallelScan => count_parallel(candidates, transactions),
        };
        level = counted
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .map(|(s, c)| {
                result.insert(s.clone(), c);
                s
            })
            .collect();
        level.sort_unstable();
    }
    result
}

/// Join + prune step: candidates of length `k+1` from the sorted frequent
/// `k`-itemsets, dropping those with an infrequent sub-itemset or an
/// inadmissible shape.
pub fn generate_candidates(
    level: &[ItemSet],
    mode: MiningMode,
    frequent: &FrequentItemsets,
) -> Vec<ItemSet> {
    let level_set: FxHashSet<&ItemSet> = level.iter().collect();
    let mut out = Vec::new();
    // Groups sharing a (k-1)-prefix are contiguous because `level` is
    // sorted; join every ordered pair inside a group.
    let mut group_start = 0usize;
    for i in 0..level.len() {
        let k = level[i].len();
        let same_group = level[group_start].items()[..k - 1] == level[i].items()[..k - 1];
        if !same_group {
            group_start = i;
        }
        for a in &level[group_start..i] {
            let Some(candidate) = a.join_prefix(&level[i]) else {
                continue;
            };
            if !candidate.admitted_by(mode) {
                continue;
            }
            // Downward closure: every k-subset must be frequent. Skip
            // subsets that are inadmissible under `mode` — they were never
            // counted, and admissibility is downward-closed so an
            // inadmissible subset of an admissible candidate cannot occur;
            // the check is kept for Unrestricted completeness.
            let all_frequent = candidate
                .sub_itemsets()
                .all(|sub| level_set.contains(&sub) || frequent.contains(&sub));
            if all_frequent {
                out.push(candidate);
            }
        }
    }
    out
}

fn count_hash_tree(
    candidates: Vec<ItemSet>,
    k: usize,
    transactions: &[Transaction],
) -> Vec<(ItemSet, u64)> {
    let mut tree = HashTree::new(candidates, k);
    for t in transactions {
        tree.count_transaction(t);
    }
    tree.into_counts()
}

/// Count candidates by direct subset checks, bucketed by first item so each
/// transaction only probes candidates that can possibly match.
pub fn count_direct(candidates: Vec<ItemSet>, transactions: &[Transaction]) -> Vec<(ItemSet, u64)> {
    let mut by_first: anno_store::fxhash::FxHashMap<anno_store::Item, Vec<usize>> =
        Default::default();
    for (i, c) in candidates.iter().enumerate() {
        if let Some(&first) = c.items().first() {
            by_first.entry(first).or_default().push(i);
        }
    }
    let mut counts = vec![0u64; candidates.len()];
    for t in transactions {
        for (pos, item) in t.iter().enumerate() {
            let Some(bucket) = by_first.get(item) else {
                continue;
            };
            for &ci in bucket {
                if candidates[ci].is_subset_of(&t[pos..]) {
                    counts[ci] += 1;
                }
            }
        }
    }
    candidates.into_iter().zip(counts).collect()
}

/// Parallel variant of [`count_direct`]: transactions are split into one
/// chunk per available core and counted with scoped threads; per-chunk
/// count vectors sum into the result. Falls back to the serial path for
/// small inputs where spawning would dominate.
pub fn count_parallel(
    candidates: Vec<ItemSet>,
    transactions: &[Transaction],
) -> Vec<(ItemSet, u64)> {
    const MIN_PARALLEL_WORK: usize = 4096;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads <= 1 || transactions.len() < MIN_PARALLEL_WORK || candidates.is_empty() {
        return count_direct(candidates, transactions);
    }
    let mut by_first: anno_store::fxhash::FxHashMap<anno_store::Item, Vec<usize>> =
        Default::default();
    for (i, c) in candidates.iter().enumerate() {
        if let Some(&first) = c.items().first() {
            by_first.entry(first).or_default().push(i);
        }
    }
    let chunk_len = transactions.len().div_ceil(threads);
    let chunk_counts: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = transactions
            .chunks(chunk_len)
            .map(|chunk| {
                let candidates = &candidates;
                let by_first = &by_first;
                scope.spawn(move || {
                    let mut counts = vec![0u64; candidates.len()];
                    for t in chunk {
                        for (pos, item) in t.iter().enumerate() {
                            let Some(bucket) = by_first.get(item) else {
                                continue;
                            };
                            for &ci in bucket {
                                if candidates[ci].is_subset_of(&t[pos..]) {
                                    counts[ci] += 1;
                                }
                            }
                        }
                    }
                    counts
                })
            })
            .collect();
        handles
            .into_iter()
            // anno-lint: allow(panic-path) -- propagates a counter-thread panic; the closure only counts over immutable slices
            .map(|h| h.join().expect("counter thread"))
            .collect()
    });
    let mut totals = vec![0u64; candidates.len()];
    for counts in chunk_counts {
        for (t, c) in totals.iter_mut().zip(counts) {
            *t += c;
        }
    }
    candidates.into_iter().zip(totals).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_store::Item;

    fn d(i: u32) -> Item {
        Item::data(i)
    }
    fn a(i: u32) -> Item {
        Item::annotation(i)
    }

    fn tx(items: &[Item]) -> Transaction {
        let mut v = items.to_vec();
        v.sort_unstable();
        v.dedup();
        v.into_boxed_slice()
    }

    fn classic_db() -> Vec<Transaction> {
        // The textbook example: {1,3,4} {2,3,5} {1,2,3,5} {2,5}.
        vec![
            tx(&[d(1), d(3), d(4)]),
            tx(&[d(2), d(3), d(5)]),
            tx(&[d(1), d(2), d(3), d(5)]),
            tx(&[d(2), d(5)]),
        ]
    }

    #[test]
    fn textbook_example_unrestricted() {
        let cfg = AprioriConfig {
            mode: MiningMode::Unrestricted,
            ..Default::default()
        };
        let f = apriori(&classic_db(), 0.5, &cfg);
        // Known frequent itemsets at minsup 50% (count ≥ 2):
        // {1}:2 {2}:3 {3}:3 {5}:3 {1,3}:2 {2,3}:2 {2,5}:3 {3,5}:2 {2,3,5}:2
        assert_eq!(f.len(), 9);
        assert_eq!(f.count(&ItemSet::from_unsorted(vec![d(2), d(5)])), Some(3));
        assert_eq!(
            f.count(&ItemSet::from_unsorted(vec![d(2), d(3), d(5)])),
            Some(2)
        );
        assert_eq!(f.count(&ItemSet::from_unsorted(vec![d(1), d(2)])), None);
    }

    #[test]
    fn all_counting_strategies_agree() {
        let db = classic_db();
        for mode in [MiningMode::Unrestricted, MiningMode::Annotated] {
            let tree = apriori(
                &db,
                0.25,
                &AprioriConfig {
                    mode,
                    counting: CountingStrategy::HashTree,
                    max_len: None,
                },
            );
            for counting in [CountingStrategy::DirectScan, CountingStrategy::ParallelScan] {
                let other = apriori(
                    &db,
                    0.25,
                    &AprioriConfig {
                        mode,
                        counting,
                        max_len: None,
                    },
                );
                assert_eq!(tree.sorted(), other.sorted(), "{counting:?} diverges");
            }
        }
    }

    #[test]
    fn parallel_counting_crosses_the_spawn_threshold() {
        // Large enough to actually run multithreaded.
        let db: Vec<Transaction> = (0..6000)
            .map(|i| tx(&[d(i % 7), d(7 + i % 5), d(12 + i % 3)]))
            .collect();
        let serial = apriori(
            &db,
            0.05,
            &AprioriConfig {
                mode: MiningMode::Unrestricted,
                counting: CountingStrategy::DirectScan,
                max_len: None,
            },
        );
        let parallel = apriori(
            &db,
            0.05,
            &AprioriConfig {
                mode: MiningMode::Unrestricted,
                counting: CountingStrategy::ParallelScan,
                max_len: None,
            },
        );
        assert_eq!(serial.sorted(), parallel.sorted());
    }

    #[test]
    fn annotated_mode_prunes_mixed_multi_annotation_itemsets() {
        // Every transaction has data 1,2 and annotations A,B.
        let db: Vec<Transaction> = (0..4).map(|_| tx(&[d(1), d(2), a(1), a(2)])).collect();
        let f = apriori(&db, 0.5, &AprioriConfig::default());
        // Pure data: kept. Data + 1 annotation: kept. Pure annotations: kept.
        assert!(f.contains(&ItemSet::from_unsorted(vec![d(1), d(2)])));
        assert!(f.contains(&ItemSet::from_unsorted(vec![d(1), a(1)])));
        assert!(f.contains(&ItemSet::from_unsorted(vec![a(1), a(2)])));
        // Mixed with ≥2 annotations: pruned.
        assert!(!f.contains(&ItemSet::from_unsorted(vec![d(1), a(1), a(2)])));
        let unrestricted = apriori(
            &db,
            0.5,
            &AprioriConfig {
                mode: MiningMode::Unrestricted,
                ..Default::default()
            },
        );
        assert!(unrestricted.contains(&ItemSet::from_unsorted(vec![d(1), a(1), a(2)])));
    }

    #[test]
    fn data_to_annotation_mode_keeps_pure_data_denominators() {
        let db: Vec<Transaction> = (0..4).map(|_| tx(&[d(1), d(2), a(1), a(2)])).collect();
        let f = apriori(
            &db,
            0.5,
            &AprioriConfig {
                mode: MiningMode::DataToAnnotation,
                ..Default::default()
            },
        );
        assert!(f.contains(&ItemSet::from_unsorted(vec![d(1), d(2)])));
        assert!(f.contains(&ItemSet::from_unsorted(vec![d(1), d(2), a(1)])));
        assert!(!f.contains(&ItemSet::from_unsorted(vec![a(1), a(2)])));
    }

    #[test]
    fn max_len_caps_levels() {
        let f = apriori(
            &classic_db(),
            0.5,
            &AprioriConfig {
                mode: MiningMode::Unrestricted,
                counting: CountingStrategy::HashTree,
                max_len: Some(2),
            },
        );
        assert!(f.iter().all(|(s, _)| s.len() <= 2));
        assert!(f.contains(&ItemSet::from_unsorted(vec![d(2), d(5)])));
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let f = apriori(&[], 0.5, &AprioriConfig::default());
        assert!(f.is_empty());
        assert_eq!(f.db_size(), 0);
    }

    #[test]
    fn min_support_one_requires_every_transaction() {
        let db = classic_db();
        let f = apriori(
            &db,
            1.0,
            &AprioriConfig {
                mode: MiningMode::Unrestricted,
                ..Default::default()
            },
        );
        assert!(f.is_empty(), "no item occurs in all four transactions");
    }
}
