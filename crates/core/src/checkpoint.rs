//! Miner-state checkpoints.
//!
//! Together with `anno_store::snapshot` this completes the paper's second
//! future-work item ("implementing the incremental updating of association
//! rules into an actual database management system"): the maintained
//! frequent-itemset table, the evolution budget, and the configuration are
//! persisted in a line-oriented text format, and a restored miner carries
//! the *same exactness contract* — it continues incremental maintenance as
//! if the process had never stopped (rules are derived data, so they are
//! re-derived on load rather than stored).
//!
//! ```text
//! annomine-checkpoint v1
//! thresholds <min_support> <min_confidence>
//! retention <factor>
//! counting hash_tree|direct_scan|parallel_scan
//! base_size <tuples-at-last-full-mine>
//! added_since <tuples-added-since>
//! db_size <current-denominator>
//! stats <remines> <c1> <c2> <c3> <del> <discovered>
//! itemset <count> <raw-item>,...
//! end
//! ```

use std::io::{self, BufRead, Write};

use anno_store::Item;

use crate::apriori::CountingStrategy;
use crate::frequent::FrequentItemsets;
use crate::incremental::{IncrementalConfig, IncrementalMiner, MaintenanceStats};
use crate::itemset::ItemSet;
use crate::rules::{RuleSet, Thresholds};

impl IncrementalMiner {
    /// Persist the full maintenance state.
    pub fn write_checkpoint<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writeln!(writer, "annomine-checkpoint v1")?;
        writeln!(
            writer,
            "thresholds {:?} {:?}",
            self.config.thresholds.min_support, self.config.thresholds.min_confidence
        )?;
        writeln!(writer, "retention {:?}", self.config.retention)?;
        let counting = match self.config.counting {
            CountingStrategy::HashTree => "hash_tree",
            CountingStrategy::DirectScan => "direct_scan",
            CountingStrategy::ParallelScan => "parallel_scan",
        };
        writeln!(writer, "counting {counting}")?;
        writeln!(writer, "base_size {}", self.base_size)?;
        writeln!(writer, "added_since {}", self.added_since)?;
        writeln!(writer, "db_size {}", self.table.db_size())?;
        let s = self.stats;
        writeln!(
            writer,
            "stats {} {} {} {} {} {}",
            s.full_remines,
            s.case1_batches,
            s.case2_batches,
            s.case3_batches,
            s.deletion_batches,
            s.discovered_itemsets
        )?;
        // Sorted for deterministic output.
        for (itemset, count) in self.table.sorted() {
            write!(writer, "itemset {count} ")?;
            for (i, item) in itemset.items().iter().enumerate() {
                if i > 0 {
                    write!(writer, ",")?;
                }
                write!(writer, "{}", item.raw())?;
            }
            writeln!(writer)?;
        }
        writeln!(writer, "end")
    }

    /// Render the checkpoint to a string.
    pub fn checkpoint_to_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_checkpoint(&mut buf)
            .expect("writing to Vec cannot fail"); // anno-lint: allow(panic-path) -- io::Write on Vec<u8> is infallible
                                                   // anno-lint: allow(panic-path) -- the writer emits only ASCII framing and already-valid UTF-8 names
        String::from_utf8(buf).expect("checkpoint text is UTF-8")
    }

    /// Restore a miner from a checkpoint; rules are re-derived from the
    /// restored table.
    pub fn read_checkpoint<R: BufRead>(reader: R) -> Result<IncrementalMiner, String> {
        let mut lines = reader.lines();
        let header = lines
            .next()
            .ok_or("empty checkpoint")?
            .map_err(|e| e.to_string())?;
        if header.trim() != "annomine-checkpoint v1" {
            return Err(format!("unsupported checkpoint header {header:?}"));
        }
        let mut thresholds: Option<Thresholds> = None;
        let mut retention: Option<f64> = None;
        let mut counting = CountingStrategy::HashTree;
        let mut base_size = 0u64;
        let mut added_since = 0u64;
        let mut db_size = 0u64;
        let mut stats = MaintenanceStats::default();
        let mut entries: Vec<(ItemSet, u64)> = Vec::new();
        let mut saw_end = false;

        for (lineno, line) in lines.enumerate() {
            let line = line.map_err(|e| e.to_string())?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("line {}: {msg}", lineno + 2);
            let mut parts = line.split(' ');
            match parts.next() {
                Some("thresholds") => {
                    let sup: f64 = parse_next(&mut parts).map_err(&err)?;
                    let conf: f64 = parse_next(&mut parts).map_err(&err)?;
                    thresholds = Some(Thresholds::new(sup, conf));
                }
                Some("retention") => retention = Some(parse_next(&mut parts).map_err(&err)?),
                Some("counting") => {
                    counting = match parts.next() {
                        Some("hash_tree") => CountingStrategy::HashTree,
                        Some("direct_scan") => CountingStrategy::DirectScan,
                        Some("parallel_scan") => CountingStrategy::ParallelScan,
                        other => return Err(err(format!("unknown counting {other:?}"))),
                    };
                }
                Some("base_size") => base_size = parse_next(&mut parts).map_err(&err)?,
                Some("added_since") => added_since = parse_next(&mut parts).map_err(&err)?,
                Some("db_size") => db_size = parse_next(&mut parts).map_err(&err)?,
                Some("stats") => {
                    stats = MaintenanceStats {
                        full_remines: parse_next(&mut parts).map_err(&err)?,
                        case1_batches: parse_next(&mut parts).map_err(&err)?,
                        case2_batches: parse_next(&mut parts).map_err(&err)?,
                        case3_batches: parse_next(&mut parts).map_err(&err)?,
                        deletion_batches: parse_next(&mut parts).map_err(&err)?,
                        discovered_itemsets: parse_next(&mut parts).map_err(&err)?,
                    };
                }
                Some("itemset") => {
                    let count: u64 = parse_next(&mut parts).map_err(&err)?;
                    let raws = parts.next().unwrap_or("");
                    let mut items = Vec::new();
                    for tok in raws.split(',').filter(|t| !t.is_empty()) {
                        let raw: u32 = tok.parse().map_err(|e| err(format!("bad item: {e}")))?;
                        items.push(Item::from_raw(raw));
                    }
                    if items.is_empty() {
                        return Err(err("empty itemset".into()));
                    }
                    entries.push((ItemSet::from_unsorted(items), count));
                }
                Some("end") => {
                    saw_end = true;
                    break;
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        if !saw_end {
            return Err("checkpoint truncated: missing 'end'".into());
        }
        let thresholds = thresholds.ok_or("checkpoint missing 'thresholds'")?;
        let retention = retention.ok_or("checkpoint missing 'retention'")?;

        let mut table = FrequentItemsets::new(db_size);
        for (itemset, count) in entries {
            table.insert(itemset, count);
        }
        let mut miner = IncrementalMiner {
            config: IncrementalConfig {
                thresholds,
                retention,
                counting,
            },
            table,
            valid: RuleSet::new(),
            near: RuleSet::new(),
            base_size,
            added_since,
            stats,
            touches: crate::incremental::DiscoveryTouch::default(),
        };
        miner.rederive();
        Ok(miner)
    }

    /// Restore from a string (see [`IncrementalMiner::read_checkpoint`]).
    pub fn checkpoint_from_string(text: &str) -> Result<IncrementalMiner, String> {
        IncrementalMiner::read_checkpoint(text.as_bytes())
    }

    /// Resume-time screen that this (typically just-restored) miner state
    /// plausibly belongs to `relation`: the support denominator must equal
    /// the live tuple count, and every retained pure-annotation itemset
    /// count (singletons and larger, via posting intersection) must agree
    /// with the relation's inverted index. A mismatch proves the
    /// checkpoint and the database snapshot are from different moments —
    /// continuing incremental maintenance would silently void the
    /// exactness contract. The converse does not hold: a desync confined
    /// to mixed data/annotation itemsets (e.g. an annotation moved between
    /// two tuples) can pass this screen, so treat `Ok` as "not provably
    /// stale"; [`IncrementalMiner::verify_against_remine`] is the
    /// exhaustive — and O(full mine) — check.
    pub fn validate_against(&self, relation: &anno_store::AnnotatedRelation) -> Result<(), String> {
        let live = relation.len() as u64;
        if self.table.db_size() != live {
            return Err(format!(
                "checkpoint denominator {} != live tuple count {live}",
                self.table.db_size()
            ));
        }
        for (itemset, count) in self.table.iter() {
            if itemset.data_count() != 0 {
                continue;
            }
            let indexed = relation.index().co_occurrence(itemset.items()) as u64;
            if count != indexed {
                return Err(format!(
                    "checkpoint counts {count} occurrences of {itemset:?}, index says {indexed}"
                ));
            }
        }
        Ok(())
    }
}

fn parse_next<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let tok = parts.next().ok_or("missing field")?;
    tok.parse().map_err(|e| format!("bad field {tok:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_store::{generate, random_annotation_batch, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (anno_store::AnnotatedRelation, IncrementalMiner) {
        let ds = generate(&GeneratorConfig::tiny(77));
        let rel = ds.relation;
        let miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds: Thresholds::new(0.2, 0.6),
                retention: 0.5,
                counting: CountingStrategy::HashTree,
            },
        );
        (rel, miner)
    }

    #[test]
    fn checkpoint_roundtrips_state_exactly() {
        let (_, miner) = setup();
        let text = miner.checkpoint_to_string();
        let restored = IncrementalMiner::checkpoint_from_string(&text).unwrap();
        assert!(restored.rules().identical_to(miner.rules()));
        assert!(restored
            .candidate_rules()
            .identical_to(miner.candidate_rules()));
        assert_eq!(restored.table().sorted(), miner.table().sorted());
        assert_eq!(restored.stats(), miner.stats());
        assert_eq!(
            restored.remaining_tuple_budget(),
            miner.remaining_tuple_budget()
        );
        // Fixpoint on second round-trip.
        assert_eq!(restored.checkpoint_to_string(), text);
    }

    #[test]
    fn restored_miner_continues_incremental_maintenance() {
        let (mut rel, mut miner) = setup();
        let text = miner.checkpoint_to_string();
        let mut restored = IncrementalMiner::checkpoint_from_string(&text).unwrap();

        // Apply the same workload to both miners on cloned relations.
        let mut rel2 = rel.clone();
        let mut rng = StdRng::seed_from_u64(5);
        let batch = random_annotation_batch(&rel, &mut rng, 25);
        miner.apply_annotations(&mut rel, batch.clone());
        restored.apply_annotations(&mut rel2, batch);
        assert!(miner.rules().identical_to(restored.rules()));
        assert!(restored.verify_against_remine(&rel2));
    }

    #[test]
    fn validate_against_detects_out_of_sync_relations() {
        let (mut rel, miner) = setup();
        let restored =
            IncrementalMiner::checkpoint_from_string(&miner.checkpoint_to_string()).unwrap();
        restored.validate_against(&rel).expect("matching pair");

        // Mutating the relation behind the miner's back must be caught:
        // a tuple deletion changes the denominator...
        let victim = rel.iter().next().map(|(tid, _)| tid).unwrap();
        let mut smaller = rel.clone();
        smaller.delete_tuple(victim);
        assert!(restored.validate_against(&smaller).is_err());

        // ...and an unmaintained annotation change desyncs the index
        // (the denominator stays equal, so only the singleton check can
        // catch it). Pick an annotation the table actually retains.
        let ann = restored
            .table()
            .iter()
            .find_map(|(s, _)| match s.items() {
                [i] if i.is_annotation_like() => Some(*i),
                _ => None,
            })
            .expect("tiny workload retains some singleton annotation");
        let target = rel
            .iter()
            .find(|(_, t)| !t.contains(ann))
            .map(|(tid, _)| tid)
            .unwrap();
        rel.add_annotation(target, ann);
        assert!(restored.validate_against(&rel).is_err());
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        assert!(IncrementalMiner::checkpoint_from_string("").is_err());
        assert!(IncrementalMiner::checkpoint_from_string("nope\nend\n").is_err());
        let missing_end = "annomine-checkpoint v1\nthresholds 0.4 0.8\nretention 0.5\n";
        assert!(IncrementalMiner::checkpoint_from_string(missing_end).is_err());
        let bad_itemset =
            "annomine-checkpoint v1\nthresholds 0.4 0.8\nretention 0.5\nitemset 3 \nend\n";
        assert!(IncrementalMiner::checkpoint_from_string(bad_itemset).is_err());
        let missing_thresholds = "annomine-checkpoint v1\nretention 0.5\nend\n";
        assert!(IncrementalMiner::checkpoint_from_string(missing_thresholds).is_err());
    }

    #[test]
    fn float_thresholds_roundtrip_bit_exactly() {
        let ds = generate(&GeneratorConfig::tiny(3));
        let miner = IncrementalMiner::mine_initial(
            &ds.relation,
            IncrementalConfig {
                thresholds: Thresholds::new(1.0 / 3.0, 0.755),
                retention: 0.61803,
                counting: CountingStrategy::DirectScan,
            },
        );
        let restored =
            IncrementalMiner::checkpoint_from_string(&miner.checkpoint_to_string()).unwrap();
        assert_eq!(restored.thresholds().min_support, 1.0 / 3.0);
        assert_eq!(restored.thresholds().min_confidence, 0.755);
    }
}
