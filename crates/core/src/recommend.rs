//! Exploitation of correlations (paper §5, Fig. 17).
//!
//! Two curation aids are built on the discovered rules:
//!
//! 1. **Missing-annotation discovery** — [`recommend_missing`] scans the
//!    database; wherever a rule's LHS pattern is present in a tuple but its
//!    RHS annotation is not, the RHS is recommended for that tuple,
//!    together with the supporting rule and its support/confidence (the
//!    paper insists recommendations stay recommendations: "it is up to the
//!    curators to make the final decision").
//! 2. **New-tuple prediction** — the same logic replayed by a trigger when
//!    tuples are inserted; see [`crate::triggers`].
//!
//! [`score_recommendations`] evaluates prediction quality against hidden
//! ground truth (precision / recall / F1), which EXPERIMENTS.md reports as
//! experiment E7.

use anno_store::{AnnotatedRelation, AnnotationUpdate, Item, TupleId, Vocabulary};

use crate::rules::{AssociationRule, RuleSet};

/// A recommendation: attach `annotation` to `tuple`, justified by `rule`.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The tuple the annotation is predicted for.
    pub tuple: TupleId,
    /// The predicted annotation (the supporting rule's RHS).
    pub annotation: Item,
    /// The rule justifying the prediction (shown to the curator with its
    /// support and confidence, per Fig. 17).
    pub rule: AssociationRule,
}

impl Recommendation {
    /// Render for a curator: tuple, annotation, and the supporting rule.
    pub fn render(&self, vocab: &Vocabulary) -> String {
        format!(
            "{}: add {} [{}]",
            self.tuple,
            vocab.name(self.annotation),
            self.rule.render(vocab)
        )
    }
}

/// Deduplicate (keep the highest-confidence supporting rule per
/// `(tuple, annotation)`) and order by descending confidence, then support.
fn finalize(mut recs: Vec<Recommendation>) -> Vec<Recommendation> {
    recs.sort_by(|a, b| {
        (a.tuple, a.annotation).cmp(&(b.tuple, b.annotation)).then(
            b.rule
                .confidence()
                .partial_cmp(&a.rule.confidence())
                .unwrap(),
        )
    });
    recs.dedup_by(|a, b| a.tuple == b.tuple && a.annotation == b.annotation);
    recs.sort_by(|a, b| {
        b.rule
            .confidence()
            .partial_cmp(&a.rule.confidence())
            .unwrap()
            .then(b.rule.support().partial_cmp(&a.rule.support()).unwrap())
            .then((a.tuple, a.annotation).cmp(&(b.tuple, b.annotation)))
    });
    recs
}

/// Scan specific tuples against the rules (shared by the scanner and the
/// insert trigger).
pub fn recommend_for_tuples<'a>(
    relation: &AnnotatedRelation,
    rules: &RuleSet,
    tuples: impl IntoIterator<Item = TupleId> + 'a,
) -> Vec<Recommendation> {
    let mut out = Vec::new();
    for tid in tuples {
        let Some(tuple) = relation.tuple(tid) else {
            continue;
        };
        for rule in rules.rules() {
            if !tuple.contains(rule.rhs) && rule.lhs.matches(tuple) {
                out.push(Recommendation {
                    tuple: tid,
                    annotation: rule.rhs,
                    rule: rule.clone(),
                });
            }
        }
    }
    finalize(out)
}

/// §5 Case 1: scan the whole database for missing annotations.
pub fn recommend_missing(relation: &AnnotatedRelation, rules: &RuleSet) -> Vec<Recommendation> {
    recommend_for_tuples(
        relation,
        rules,
        relation.iter().map(|(tid, _)| tid).collect::<Vec<_>>(),
    )
}

/// Prediction quality against hidden ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionQuality {
    /// Predictions that match a hidden annotation.
    pub true_positives: usize,
    /// Predictions that do not.
    pub false_positives: usize,
    /// Hidden annotations that were not predicted.
    pub false_negatives: usize,
}

impl PredictionQuality {
    /// `tp / (tp + fp)`; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 when nothing was hidden.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score recommendations against the hidden annotations they should
/// recover (experiment E7).
pub fn score_recommendations(
    recommendations: &[Recommendation],
    hidden: &[AnnotationUpdate],
) -> PredictionQuality {
    let truth: std::collections::BTreeSet<(TupleId, Item)> =
        hidden.iter().map(|u| (u.tuple, u.annotation)).collect();
    let predicted: std::collections::BTreeSet<(TupleId, Item)> = recommendations
        .iter()
        .map(|r| (r.tuple, r.annotation))
        .collect();
    let true_positives = predicted.intersection(&truth).count();
    PredictionQuality {
        true_positives,
        false_positives: predicted.len() - true_positives,
        false_negatives: truth.len() - true_positives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::mine_rules;
    use crate::rules::Thresholds;
    use anno_store::Tuple;

    /// 9 of 10 {x,y} tuples carry A; one is missing it.
    fn setup() -> (AnnotatedRelation, RuleSet, Item, TupleId) {
        let mut rel = AnnotatedRelation::new("R");
        let x = rel.vocab_mut().data("10");
        let y = rel.vocab_mut().data("20");
        let z = rel.vocab_mut().data("30");
        let a = rel.vocab_mut().annotation("A");
        for _ in 0..9 {
            rel.insert(Tuple::new([x, y], [a]));
        }
        let gap = rel.insert(Tuple::new([x, y], []));
        for _ in 0..2 {
            rel.insert(Tuple::new([z], []));
        }
        let rules = mine_rules(&rel, &Thresholds::new(0.3, 0.8));
        (rel, rules, a, gap)
    }

    #[test]
    fn finds_the_missing_annotation() {
        let (rel, rules, a, gap) = setup();
        let recs = recommend_missing(&rel, &rules);
        assert_eq!(recs.len(), 1, "exactly the gap tuple is flagged");
        assert_eq!(recs[0].tuple, gap);
        assert_eq!(recs[0].annotation, a);
        assert!(recs[0].rule.confidence() >= 0.8);
    }

    #[test]
    fn recommendations_carry_their_supporting_rule() {
        let (rel, rules, _, _) = setup();
        let recs = recommend_missing(&rel, &rules);
        let text = recs[0].render(rel.vocab());
        assert!(text.contains("add A"), "{text}");
        assert!(text.contains("conf="), "{text}");
    }

    #[test]
    fn duplicate_predictions_keep_best_rule() {
        let (rel, rules, a, gap) = setup();
        // Scanning the gap tuple twice must not duplicate recommendations.
        let recs = recommend_for_tuples(&rel, &rules, [gap, gap]);
        let hits: Vec<_> = recs
            .iter()
            .filter(|r| r.tuple == gap && r.annotation == a)
            .collect();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn scoring_computes_precision_recall_f1() {
        let (rel, rules, a, gap) = setup();
        let recs = recommend_missing(&rel, &rules);
        let hidden = vec![AnnotationUpdate {
            tuple: gap,
            annotation: a,
        }];
        let q = score_recommendations(&recs, &hidden);
        assert_eq!(q.true_positives, 1);
        assert_eq!(q.false_positives, 0);
        assert_eq!(q.false_negatives, 0);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn scoring_counts_misses_and_spurious_predictions() {
        let q = score_recommendations(
            &[],
            &[AnnotationUpdate {
                tuple: TupleId(0),
                annotation: Item::annotation(0),
            }],
        );
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.precision(), 1.0, "no predictions, vacuous precision");
        assert_eq!(q.f1(), 0.0);
    }

    #[test]
    fn no_rules_yields_no_recommendations() {
        let (rel, ..) = setup();
        assert!(recommend_missing(&rel, &RuleSet::new()).is_empty());
    }
}
