//! `anno-mine`: discovery, incremental maintenance, and exploitation of
//! correlations in annotated databases.
//!
//! This crate implements the primary contribution of *"Discovering
//! Correlations in Annotated Databases"* on top of the `anno-store`
//! substrate:
//!
//! * **Discovery** (paper §3–4): the Apriori algorithm with annotation-
//!   aware pruning ([`apriori`]), two independent cross-check miners
//!   ([`fpgrowth`], [`eclat`]), and rule derivation for the paper's two
//!   shapes — data-to-annotation (`x1 … xk ⇒ a`) and
//!   annotation-to-annotation (`a1 … ak ⇒ a`) — in [`rules`] and [`mine`].
//!   Generalization-based correlations (§4.1) mine the taxonomy-extended
//!   database via [`mine::mine_generalized`].
//! * **Incremental maintenance** (§4.3, the paper's main focus): the
//!   [`IncrementalMiner`](incremental::IncrementalMiner) maintains exact
//!   rule sets under all three evolution cases — adding annotated tuples,
//!   adding un-annotated tuples, and adding annotations to existing tuples
//!   (Figs. 12–13) — plus annotation/tuple deletion, the paper's stated
//!   future work.
//! * **Exploitation** (§5): missing-annotation recommendations and insert
//!   triggers in [`recommend`] and [`triggers`].
//!
//! # Quickstart
//!
//! ```
//! use anno_mine::prelude::*;
//! use anno_store::{parse_dataset, AnnotationUpdate, TupleId};
//!
//! // Fig. 4-style dataset: numeric data values, Annot_* annotations.
//! let mut rel = parse_dataset("db", "\
//! 28 85 Annot_1
//! 28 85 Annot_1
//! 28 85 Annot_1
//! 28 85
//! 17 99
//! ").unwrap();
//!
//! // Discover rules at minimum support 0.4 and confidence 0.7.
//! let mut miner = IncrementalMiner::mine_initial(
//!     &rel,
//!     IncrementalConfig { thresholds: Thresholds::new(0.4, 0.7), ..Default::default() },
//! );
//! assert_eq!(miner.rules().len(), 3); // {28}⇒A, {85}⇒A, {28,85}⇒A
//!
//! // Case 3: annotate the fourth tuple; rules update incrementally.
//! let ann = rel.vocab().get(anno_store::ItemKind::Annotation, "Annot_1").unwrap();
//! miner.apply_annotations(&mut rel, [AnnotationUpdate { tuple: TupleId(3), annotation: ann }]);
//! assert!(miner.verify_against_remine(&rel));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod checkpoint;
pub mod eclat;
pub mod fpgrowth;
pub mod frequent;
pub mod hashtree;
pub mod incremental;
pub mod itemset;
pub mod mine;
pub mod recommend;
pub mod report;
pub mod rules;
pub mod summary;
pub mod triggers;

pub use apriori::{apriori, count_direct, generate_candidates, AprioriConfig, CountingStrategy};
pub use eclat::eclat;
pub use fpgrowth::fpgrowth;
pub use frequent::{support_count_threshold, FrequentItemsets};
pub use hashtree::HashTree;
pub use incremental::{DiscoveryTouch, IncrementalConfig, IncrementalMiner, MaintenanceStats};
pub use itemset::{transactions_of, ItemSet, MiningMode, Transaction};
pub use mine::{
    mine_annotation_to_annotation, mine_data_to_annotation, mine_generalized, mine_rules,
    mine_with, MineResult, Miner,
};
pub use recommend::{
    recommend_for_tuples, recommend_missing, score_recommendations, PredictionQuality,
    Recommendation,
};
pub use report::{parse_rules_file, rules_to_string, write_rules, ParsedRule};
pub use rules::{
    derive_rules, derive_rules_partitioned, AssociationRule, RuleKind, RuleSet, Thresholds,
};
pub use summary::{MetricSummary, RuleSetSummary};
pub use triggers::CurationSession;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::incremental::{IncrementalConfig, IncrementalMiner};
    pub use crate::itemset::{ItemSet, MiningMode};
    pub use crate::mine::{mine_generalized, mine_rules, mine_with, Miner};
    pub use crate::recommend::{recommend_missing, score_recommendations};
    pub use crate::rules::{AssociationRule, RuleKind, RuleSet, Thresholds};
    pub use crate::triggers::CurationSession;
}
