//! Association rules over annotated databases (paper Definitions 4.2/4.3).
//!
//! A rule `LHS ⇒ a` keeps its raw integer counts (`union_count` =
//! occurrences of `LHS ∪ {a}`, `lhs_count` = occurrences of `LHS`,
//! `db_size` = transactions), from which support and confidence are derived
//! on demand. Counts are what incremental maintenance updates (Fig. 12's
//! "numerator"/"de-numerator" bookkeeping), and they make the direction-of-
//! change semantics of Fig. 11 mechanically checkable.
//!
//! Rules are *derived data*: [`derive_rules`] reconstructs the exact rule
//! set from a [`FrequentItemsets`] table, so maintaining the table
//! incrementally maintains the rules.

use anno_store::{Item, Vocabulary};

use crate::frequent::{support_count_threshold, FrequentItemsets};
use crate::itemset::ItemSet;

/// Minimum support (α) and minimum confidence (β), both fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Minimum support α.
    pub min_support: f64,
    /// Minimum confidence β.
    pub min_confidence: f64,
}

impl Thresholds {
    /// Construct, validating both fractions.
    pub fn new(min_support: f64, min_confidence: f64) -> Thresholds {
        assert!((0.0..=1.0).contains(&min_support), "support out of range");
        assert!(
            (0.0..=1.0).contains(&min_confidence),
            "confidence out of range"
        );
        Thresholds {
            min_support,
            min_confidence,
        }
    }

    /// The paper's running configuration: α = 0.4, β = 0.8 (§4.3 Results).
    pub fn paper() -> Thresholds {
        Thresholds::new(0.4, 0.8)
    }

    /// Scale both thresholds by `retention` (for the near-threshold
    /// candidate store of §4.3: "rules slightly below the minimum support
    /// and confidence requirements").
    pub fn scaled(&self, retention: f64) -> Thresholds {
        assert!((0.0..=1.0).contains(&retention));
        Thresholds {
            min_support: self.min_support * retention,
            min_confidence: self.min_confidence * retention,
        }
    }
}

/// The paper's two target rule shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// `x1 x2 … xk ⇒ a` — data values imply an annotation (Def. 4.2).
    DataToAnnotation,
    /// `a1 a2 … ak ⇒ a` — annotations imply an annotation (Def. 4.3).
    AnnotationToAnnotation,
}

/// An association rule with exact counts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AssociationRule {
    /// The antecedent itemset (pure data or pure annotations).
    pub lhs: ItemSet,
    /// The consequent: always a single annotation-like item.
    pub rhs: Item,
    /// Occurrences of `LHS ∪ {rhs}` (the support numerator and confidence
    /// numerator).
    pub union_count: u64,
    /// Occurrences of `LHS` (the confidence denominator).
    pub lhs_count: u64,
    /// Occurrences of the consequent annotation alone (for the
    /// interestingness measures: lift, leverage, conviction).
    pub rhs_count: u64,
    /// Number of transactions (the support denominator).
    pub db_size: u64,
}

impl AssociationRule {
    /// `support = |LHS ∪ {a}| / |D|`.
    pub fn support(&self) -> f64 {
        self.union_count as f64 / self.db_size.max(1) as f64
    }

    /// `confidence = |LHS ∪ {a}| / |LHS|`.
    pub fn confidence(&self) -> f64 {
        self.union_count as f64 / self.lhs_count.max(1) as f64
    }

    /// Support of the consequent alone, `|{a}| / |D|`.
    pub fn rhs_support(&self) -> f64 {
        self.rhs_count as f64 / self.db_size.max(1) as f64
    }

    /// Lift: `confidence / support(rhs)` — how much more likely the
    /// annotation is given the antecedent than at random. 1.0 means
    /// independent; > 1 positively correlated.
    pub fn lift(&self) -> f64 {
        let rhs = self.rhs_support();
        if rhs == 0.0 {
            f64::INFINITY
        } else {
            self.confidence() / rhs
        }
    }

    /// Leverage: `support(LHS ∪ {a}) − support(LHS)·support(a)` — the
    /// absolute co-occurrence surplus over independence.
    pub fn leverage(&self) -> f64 {
        let n = self.db_size.max(1) as f64;
        self.union_count as f64 / n - (self.lhs_count as f64 / n) * (self.rhs_count as f64 / n)
    }

    /// Conviction: `(1 − support(a)) / (1 − confidence)` — the degree to
    /// which the rule would be wrong by chance relative to how often it is
    /// actually wrong. ∞ for exact rules.
    pub fn conviction(&self) -> f64 {
        let denom = 1.0 - self.confidence();
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            (1.0 - self.rhs_support()) / denom
        }
    }

    /// Which of the paper's shapes this rule has.
    pub fn kind(&self) -> RuleKind {
        debug_assert!(self.rhs.is_annotation_like());
        if self.lhs.annotation_count() == 0 {
            RuleKind::DataToAnnotation
        } else {
            RuleKind::AnnotationToAnnotation
        }
    }

    /// The full itemset `LHS ∪ {rhs}`.
    pub fn union_itemset(&self) -> ItemSet {
        self.lhs.with(self.rhs)
    }

    /// Does the rule meet `thresholds`?
    pub fn meets(&self, thresholds: &Thresholds) -> bool {
        self.union_count >= support_count_threshold(thresholds.min_support, self.db_size)
            && self.confidence() >= thresholds.min_confidence - 1e-12
    }

    /// Render in the paper's Fig. 7 output format:
    /// `28, 85 -> Annot_1 (conf=0.9659, sup=0.4194)`.
    pub fn render(&self, vocab: &Vocabulary) -> String {
        format!(
            "{} -> {} (conf={:.4}, sup={:.4})",
            vocab.render(self.lhs.items()),
            vocab.name(self.rhs),
            self.confidence(),
            self.support()
        )
    }
}

/// An ordered collection of rules with canonical form for comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    rules: Vec<AssociationRule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Build from rules, normalising order (by LHS then RHS).
    pub fn from_rules(mut rules: Vec<AssociationRule>) -> RuleSet {
        rules.sort_unstable_by(|a, b| (&a.lhs, a.rhs).cmp(&(&b.lhs, b.rhs)));
        rules.dedup_by(|a, b| a.lhs == b.lhs && a.rhs == b.rhs);
        RuleSet { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, ordered by LHS then RHS.
    pub fn rules(&self) -> &[AssociationRule] {
        &self.rules
    }

    /// Iterate rules of one kind.
    pub fn of_kind(&self, kind: RuleKind) -> impl Iterator<Item = &AssociationRule> + '_ {
        self.rules.iter().filter(move |r| r.kind() == kind)
    }

    /// Look up the rule with exactly this LHS and RHS.
    pub fn get(&self, lhs: &ItemSet, rhs: Item) -> Option<&AssociationRule> {
        self.rules
            .binary_search_by(|r| (&r.lhs, r.rhs).cmp(&(lhs, rhs)))
            .ok()
            .map(|i| &self.rules[i])
    }

    /// The `(LHS, RHS)` identities, for set comparison in tests.
    pub fn identities(&self) -> Vec<(ItemSet, Item)> {
        self.rules.iter().map(|r| (r.lhs.clone(), r.rhs)).collect()
    }

    /// Structural equality including counts — the paper's verification
    /// criterion ("the association rules resulting from both processes were
    /// identical").
    pub fn identical_to(&self, other: &RuleSet) -> bool {
        self.rules.len() == other.rules.len()
            && self.rules.iter().zip(&other.rules).all(|(a, b)| {
                a.lhs == b.lhs
                    && a.rhs == b.rhs
                    && a.union_count == b.union_count
                    && a.lhs_count == b.lhs_count
                    && a.rhs_count == b.rhs_count
                    && a.db_size == b.db_size
            })
    }

    /// Drop *redundant* rules: a rule is redundant if another rule with the
    /// same consequent and a strict subset of its antecedent has confidence
    /// at least as high (the specialisation adds no predictive power).
    ///
    /// The paper's own Fig. 7 output shows the phenomenon — `28 ⇒ Annot_1`,
    /// `85 ⇒ Annot_1`, and `28, 85 ⇒ Annot_1` all at the same confidence;
    /// only the minimal antecedents inform a curator.
    pub fn without_redundant(&self) -> RuleSet {
        let kept: Vec<AssociationRule> = self
            .rules
            .iter()
            .filter(|rule| {
                !self.rules.iter().any(|other| {
                    other.rhs == rule.rhs
                        && other.lhs.len() < rule.lhs.len()
                        && other.lhs.items().iter().all(|i| rule.lhs.contains(*i))
                        && other.confidence() >= rule.confidence() - 1e-12
                })
            })
            .cloned()
            .collect();
        RuleSet::from_rules(kept)
    }

    /// The `k` rules maximising an arbitrary measure, descending.
    pub fn top_by<F: Fn(&AssociationRule) -> f64>(
        &self,
        measure: F,
        k: usize,
    ) -> Vec<&AssociationRule> {
        let mut order: Vec<&AssociationRule> = self.rules.iter().collect();
        order.sort_by(|a, b| {
            measure(b)
                .partial_cmp(&measure(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (&a.lhs, a.rhs).cmp(&(&b.lhs, b.rhs)))
        });
        order.truncate(k);
        order
    }

    /// Render every rule in Fig. 7 format, one per line, sorted by
    /// descending confidence then support (ties by identity order).
    pub fn render(&self, vocab: &Vocabulary) -> String {
        let mut order: Vec<&AssociationRule> = self.rules.iter().collect();
        order.sort_by(|a, b| {
            b.confidence()
                .partial_cmp(&a.confidence())
                .unwrap()
                .then(b.support().partial_cmp(&a.support()).unwrap())
                .then_with(|| (&a.lhs, a.rhs).cmp(&(&b.lhs, b.rhs)))
        });
        let mut out = String::new();
        for r in order {
            out.push_str(&r.render(vocab));
            out.push('\n');
        }
        out
    }
}

/// Derive every rule meeting `thresholds` from an exact itemset table.
///
/// For each stored itemset `S` with support ≥ α:
/// * pure-annotation `S` (|S| ≥ 2) yields, per member `b`, the rule
///   `S∖{b} ⇒ b` (Def. 4.3);
/// * `S` with exactly one annotation `b` and ≥ 1 data value yields
///   `S∖{b} ⇒ b` (Def. 4.2);
/// * all other shapes yield nothing (no annotation on the R.H.S.).
///
/// The LHS count is read from the table; levelwise mining guarantees it is
/// present for any frequent `S` (downward closure).
pub fn derive_rules(table: &FrequentItemsets, thresholds: &Thresholds) -> RuleSet {
    let (valid, _) = derive_rules_partitioned(table, thresholds, thresholds);
    valid
}

/// Derive rules at `loose` thresholds and partition them into those meeting
/// `strict` (the valid set) and the rest (the retained candidate set).
pub fn derive_rules_partitioned(
    table: &FrequentItemsets,
    strict: &Thresholds,
    loose: &Thresholds,
) -> (RuleSet, RuleSet) {
    let db_size = table.db_size();
    let loose_min_count = support_count_threshold(loose.min_support, db_size);
    let mut valid = Vec::new();
    let mut near = Vec::new();
    for (s, union_count) in table.iter() {
        if union_count < loose_min_count || s.len() < 2 {
            continue;
        }
        let ann_count = s.annotation_count();
        let data_count = s.data_count();
        let rhs_choices: &[Item] = if data_count == 0 && ann_count >= 2 {
            s.items() // annotation-to-annotation: any member can be RHS
        } else if data_count >= 1 && ann_count == 1 {
            &s.items()[data_count..] // the single annotation is the RHS
        } else {
            continue;
        };
        for &rhs in rhs_choices {
            let lhs = s.without(rhs);
            let rhs_count = table.count(&ItemSet::single(rhs)).unwrap_or(0);
            let Some(lhs_count) = table.count(&lhs) else {
                // LHS below the table's retention level: the rule's
                // confidence would be below the loose threshold anyway
                // (lhs_count ≥ union_count ≥ loose support count), so this
                // only happens for non-closed tables; skip defensively.
                continue;
            };
            let rule = AssociationRule {
                lhs,
                rhs,
                union_count,
                lhs_count,
                rhs_count,
                db_size,
            };
            if rule.confidence() < loose.min_confidence - 1e-12 {
                continue;
            }
            if rule.meets(strict) {
                valid.push(rule);
            } else {
                near.push(rule);
            }
        }
    }
    (RuleSet::from_rules(valid), RuleSet::from_rules(near))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> Item {
        Item::data(i)
    }
    fn a(i: u32) -> Item {
        Item::annotation(i)
    }
    fn set(items: &[Item]) -> ItemSet {
        ItemSet::from_unsorted(items.to_vec())
    }

    fn demo_table() -> FrequentItemsets {
        // 10 transactions; {1,2}: 6, {1,2,A}: 5, A: 6, B: 5, {A,B}: 4.
        let mut t = FrequentItemsets::new(10);
        t.insert(set(&[d(1), d(2)]), 6);
        t.insert(set(&[d(1)]), 7);
        t.insert(set(&[d(2)]), 6);
        t.insert(set(&[d(1), d(2), a(1)]), 5);
        t.insert(set(&[d(1), a(1)]), 5);
        t.insert(set(&[d(2), a(1)]), 5);
        t.insert(set(&[a(1)]), 6);
        t.insert(set(&[a(2)]), 5);
        t.insert(set(&[a(1), a(2)]), 4);
        t
    }

    #[test]
    fn derives_both_rule_shapes() {
        let rules = derive_rules(&demo_table(), &Thresholds::new(0.4, 0.8));
        // {1,2} ⇒ A: sup 0.5, conf 5/6 ≈ 0.83 ✓
        let d2a = rules.get(&set(&[d(1), d(2)]), a(1)).expect("d2a rule");
        assert_eq!(d2a.kind(), RuleKind::DataToAnnotation);
        assert!((d2a.confidence() - 5.0 / 6.0).abs() < 1e-12);
        assert!((d2a.support() - 0.5).abs() < 1e-12);
        // {B} ⇒ A: sup 0.4, conf 4/5 = 0.8 ✓ ; {A} ⇒ B: conf 4/6 ✗.
        let a2a = rules.get(&set(&[a(2)]), a(1)).expect("a2a rule");
        assert_eq!(a2a.kind(), RuleKind::AnnotationToAnnotation);
        assert!(rules.get(&set(&[a(1)]), a(2)).is_none());
        // {1} ⇒ A: conf 5/7 < 0.8 ✗ ; {2} ⇒ A: conf 5/6 ✓.
        assert!(rules.get(&set(&[d(1)]), a(1)).is_none());
        assert!(rules.get(&set(&[d(2)]), a(1)).is_some());
    }

    #[test]
    fn pure_data_itemsets_never_become_rules() {
        let rules = derive_rules(&demo_table(), &Thresholds::new(0.1, 0.0));
        assert!(rules.rules().iter().all(|r| r.rhs.is_annotation_like()));
    }

    #[test]
    fn partition_splits_valid_from_near_threshold() {
        let strict = Thresholds::new(0.4, 0.8);
        let loose = strict.scaled(0.5);
        let (valid, near) = derive_rules_partitioned(&demo_table(), &strict, &loose);
        assert!(!valid.is_empty());
        // {A} ⇒ B has conf 4/6 ≈ 0.67: below 0.8, above 0.4 ⇒ near.
        assert!(near.get(&set(&[a(1)]), a(2)).is_some());
        // Nothing in `near` meets strict.
        assert!(near.rules().iter().all(|r| !r.meets(&strict)));
        assert!(valid.rules().iter().all(|r| r.meets(&strict)));
    }

    #[test]
    fn identical_to_compares_counts_not_just_identity() {
        let rules = derive_rules(&demo_table(), &Thresholds::paper());
        let mut tweaked_table = demo_table();
        tweaked_table.add_count(&set(&[d(1), d(2), a(1)]), 1);
        let tweaked = derive_rules(&tweaked_table, &Thresholds::paper());
        assert!(!rules.identical_to(&tweaked));
        assert!(rules.identical_to(&rules.clone()));
    }

    #[test]
    fn render_matches_fig7_shape() {
        let mut vocab = Vocabulary::new();
        let x28 = vocab.data("28");
        let x85 = vocab.data("85");
        let annot1 = vocab.annotation("Annot_1");
        let rule = AssociationRule {
            lhs: set(&[x28, x85]),
            rhs: annot1,
            union_count: 4194,
            lhs_count: 4342,
            rhs_count: 5000,
            db_size: 10000,
        };
        assert_eq!(
            rule.render(&vocab),
            "28, 85 -> Annot_1 (conf=0.9659, sup=0.4194)"
        );
    }

    #[test]
    fn ruleset_ordering_and_lookup() {
        let rules = derive_rules(&demo_table(), &Thresholds::new(0.3, 0.5));
        for w in rules.rules().windows(2) {
            assert!((&w[0].lhs, w[0].rhs) < (&w[1].lhs, w[1].rhs));
        }
        for r in rules.rules() {
            assert_eq!(rules.get(&r.lhs, r.rhs).unwrap(), r);
        }
    }

    #[test]
    fn interestingness_measures_match_hand_computation() {
        // 10 transactions: union 4, lhs 5, rhs 6.
        let rule = AssociationRule {
            lhs: set(&[d(1)]),
            rhs: a(1),
            union_count: 4,
            lhs_count: 5,
            rhs_count: 6,
            db_size: 10,
        };
        assert!((rule.confidence() - 0.8).abs() < 1e-12);
        assert!((rule.rhs_support() - 0.6).abs() < 1e-12);
        assert!((rule.lift() - 0.8 / 0.6).abs() < 1e-12);
        assert!((rule.leverage() - (0.4 - 0.5 * 0.6)).abs() < 1e-12);
        assert!((rule.conviction() - (1.0 - 0.6) / (1.0 - 0.8)).abs() < 1e-9);
    }

    #[test]
    fn exact_rules_have_infinite_conviction() {
        let rule = AssociationRule {
            lhs: set(&[d(1)]),
            rhs: a(1),
            union_count: 5,
            lhs_count: 5,
            rhs_count: 5,
            db_size: 10,
        };
        assert!(rule.conviction().is_infinite());
        assert!((rule.lift() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn derived_rules_carry_rhs_counts() {
        let rules = derive_rules(&demo_table(), &Thresholds::new(0.4, 0.8));
        let r = rules.get(&set(&[d(1), d(2)]), a(1)).unwrap();
        assert_eq!(r.rhs_count, 6); // count({A}) in demo_table
        assert!(r.lift() > 1.0, "planted correlation must lift above 1");
    }

    #[test]
    fn top_by_ranks_by_measure() {
        let rules = derive_rules(&demo_table(), &Thresholds::new(0.3, 0.5));
        let top = rules.top_by(|r| r.lift(), 3);
        assert!(top.len() <= 3);
        for w in top.windows(2) {
            assert!(w[0].lift() >= w[1].lift());
        }
    }

    #[test]
    fn redundant_specialisations_are_pruned() {
        // {1} ⇒ A at conf 0.9; {1,2} ⇒ A at conf 0.9 (redundant);
        // {1,3} ⇒ A at conf 1.0 (kept: strictly better than its subset).
        let mk = |lhs: &[Item], union: u64, lhs_count: u64| AssociationRule {
            lhs: set(lhs),
            rhs: a(1),
            union_count: union,
            lhs_count,
            rhs_count: 12,
            db_size: 20,
        };
        let rules = RuleSet::from_rules(vec![
            mk(&[d(1)], 9, 10),
            mk(&[d(1), d(2)], 9, 10),
            mk(&[d(1), d(3)], 5, 5),
        ]);
        let pruned = rules.without_redundant();
        assert_eq!(pruned.len(), 2);
        assert!(pruned.get(&set(&[d(1)]), a(1)).is_some());
        assert!(pruned.get(&set(&[d(1), d(2)]), a(1)).is_none());
        assert!(pruned.get(&set(&[d(1), d(3)]), a(1)).is_some());
    }

    #[test]
    fn pruning_is_idempotent_and_preserves_distinct_consequents() {
        let rules = derive_rules(&demo_table(), &Thresholds::new(0.3, 0.5));
        let once = rules.without_redundant();
        let twice = once.without_redundant();
        assert!(once.identical_to(&twice));
        // Every surviving rule is minimal for its consequent.
        for rule in once.rules() {
            for other in once.rules() {
                if other.rhs == rule.rhs && other.lhs.len() < rule.lhs.len() {
                    let subset = other.lhs.items().iter().all(|i| rule.lhs.contains(*i));
                    assert!(!(subset && other.confidence() >= rule.confidence()));
                }
            }
        }
    }

    #[test]
    fn thresholds_validation_and_scaling() {
        let t = Thresholds::paper();
        assert_eq!(t.min_support, 0.4);
        let s = t.scaled(0.5);
        assert!((s.min_support - 0.2).abs() < 1e-12);
        assert!((s.min_confidence - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_threshold_rejected() {
        let _ = Thresholds::new(1.5, 0.5);
    }
}
