//! Rule-set summaries for reporting and monitoring.
//!
//! The paper's application prints discovered rules as a flat file; a
//! production curation system also wants an at-a-glance picture: how many
//! rules of each shape, how strong they are, how the strength distributes.
//! [`RuleSetSummary`] computes that in one pass and renders a compact text
//! report (used by the `experiments` harness and the examples).

use crate::rules::{RuleKind, RuleSet};

/// Distribution snapshot of one metric over a rule set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl MetricSummary {
    fn of(values: &[f64]) -> Option<MetricSummary> {
        if values.is_empty() {
            return None;
        }
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(MetricSummary {
            min,
            max,
            mean: sum / values.len() as f64,
        })
    }
}

/// One-pass summary of a rule set.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSetSummary {
    /// Total number of rules.
    pub total: usize,
    /// Data-to-annotation rules (Def. 4.2).
    pub data_to_annotation: usize,
    /// Annotation-to-annotation rules (Def. 4.3).
    pub annotation_to_annotation: usize,
    /// Support distribution (None when the set is empty).
    pub support: Option<MetricSummary>,
    /// Confidence distribution.
    pub confidence: Option<MetricSummary>,
    /// Lift distribution.
    pub lift: Option<MetricSummary>,
    /// Histogram of confidence in ten `[i/10, (i+1)/10)` buckets (the last
    /// bucket is closed at 1.0).
    pub confidence_histogram: [usize; 10],
    /// Mean antecedent length.
    pub mean_lhs_len: f64,
}

impl RuleSetSummary {
    /// Summarise `rules`.
    pub fn of(rules: &RuleSet) -> RuleSetSummary {
        let supports: Vec<f64> = rules.rules().iter().map(|r| r.support()).collect();
        let confidences: Vec<f64> = rules.rules().iter().map(|r| r.confidence()).collect();
        let lifts: Vec<f64> = rules
            .rules()
            .iter()
            .map(|r| r.lift())
            .filter(|l| l.is_finite())
            .collect();
        let mut histogram = [0usize; 10];
        for &c in &confidences {
            let bucket = ((c * 10.0) as usize).min(9);
            histogram[bucket] += 1;
        }
        let lhs_total: usize = rules.rules().iter().map(|r| r.lhs.len()).sum();
        RuleSetSummary {
            total: rules.len(),
            data_to_annotation: rules.of_kind(RuleKind::DataToAnnotation).count(),
            annotation_to_annotation: rules.of_kind(RuleKind::AnnotationToAnnotation).count(),
            support: MetricSummary::of(&supports),
            confidence: MetricSummary::of(&confidences),
            lift: MetricSummary::of(&lifts),
            confidence_histogram: histogram,
            mean_lhs_len: if rules.is_empty() {
                0.0
            } else {
                lhs_total as f64 / rules.len() as f64
            },
        }
    }

    /// Render a compact multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rules: {} total ({} data⇒ann, {} ann⇒ann), mean LHS {:.2} items\n",
            self.total, self.data_to_annotation, self.annotation_to_annotation, self.mean_lhs_len
        ));
        let fmt = |name: &str, m: &Option<MetricSummary>| match m {
            Some(m) => format!(
                "{name}: min {:.3}  mean {:.3}  max {:.3}\n",
                m.min, m.mean, m.max
            ),
            None => format!("{name}: (no rules)\n"),
        };
        out.push_str(&fmt("support   ", &self.support));
        out.push_str(&fmt("confidence", &self.confidence));
        out.push_str(&fmt("lift      ", &self.lift));
        out.push_str("confidence histogram: ");
        for (i, &count) in self.confidence_histogram.iter().enumerate() {
            if count > 0 {
                out.push_str(&format!(
                    "[{:.1}-{:.1}]:{count} ",
                    i as f64 / 10.0,
                    (i + 1) as f64 / 10.0
                ));
            }
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::ItemSet;
    use crate::rules::AssociationRule;
    use anno_store::Item;

    fn rule(lhs: &[u32], rhs: u32, union: u64, lhs_count: u64) -> AssociationRule {
        AssociationRule {
            lhs: ItemSet::from_unsorted(lhs.iter().map(|&i| Item::data(i)).collect()),
            rhs: Item::annotation(rhs),
            union_count: union,
            lhs_count,
            rhs_count: union + 1,
            db_size: 20,
        }
    }

    #[test]
    fn empty_rule_set_summarises_cleanly() {
        let s = RuleSetSummary::of(&RuleSet::new());
        assert_eq!(s.total, 0);
        assert!(s.support.is_none());
        assert_eq!(s.mean_lhs_len, 0.0);
        assert!(s.render().contains("(no rules)"));
    }

    #[test]
    fn counts_and_metrics_match_hand_computation() {
        let rules = RuleSet::from_rules(vec![
            rule(&[1], 0, 10, 10),   // conf 1.0, sup 0.5
            rule(&[1, 2], 1, 8, 16), // conf 0.5, sup 0.4
        ]);
        let s = RuleSetSummary::of(&rules);
        assert_eq!(s.total, 2);
        assert_eq!(s.data_to_annotation, 2);
        let conf = s.confidence.unwrap();
        assert!((conf.min - 0.5).abs() < 1e-12);
        assert!((conf.max - 1.0).abs() < 1e-12);
        assert!((conf.mean - 0.75).abs() < 1e-12);
        assert!((s.mean_lhs_len - 1.5).abs() < 1e-12);
        // Histogram: conf 0.5 → bucket 5; conf 1.0 → clamped to bucket 9.
        assert_eq!(s.confidence_histogram[5], 1);
        assert_eq!(s.confidence_histogram[9], 1);
    }

    #[test]
    fn render_is_informative() {
        let rules = RuleSet::from_rules(vec![rule(&[1], 0, 10, 10)]);
        let text = RuleSetSummary::of(&rules).render();
        assert!(text.contains("1 total"));
        assert!(text.contains("confidence"));
        assert!(text.contains("histogram"));
    }
}
