//! Top-level batch mining entry points (the paper's menu options 1 and 2).
//!
//! These wrap transaction projection, a frequent-itemset miner, and rule
//! derivation into the operations the paper's application exposes:
//! discovering data-to-annotation rules, annotation-to-annotation rules, or
//! both, optionally through a generalization taxonomy (§4.1) with
//! multi-level hierarchies.

use anno_store::{AnnotatedRelation, Taxonomy};

use crate::apriori::{apriori, AprioriConfig, CountingStrategy};
use crate::frequent::FrequentItemsets;
use crate::itemset::{transactions_of, MiningMode};
use crate::rules::{derive_rules, RuleKind, RuleSet, Thresholds};

/// Which frequent-itemset algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Miner {
    /// Apriori with a hash tree (the paper's algorithm).
    #[default]
    Apriori,
    /// Apriori counting by bucketed direct scans.
    AprioriDirectScan,
    /// Apriori with multi-threaded scan counting.
    AprioriParallel,
    /// FP-Growth.
    FpGrowth,
    /// Eclat.
    Eclat,
}

/// The result of a batch mine: the itemset table and the derived rules.
#[derive(Debug, Clone)]
pub struct MineResult {
    /// All admissible frequent itemsets with exact counts.
    pub itemsets: FrequentItemsets,
    /// The rules meeting the thresholds.
    pub rules: RuleSet,
}

/// Mine `relation` under `mode` with the chosen `miner`.
pub fn mine_with(
    relation: &AnnotatedRelation,
    thresholds: &Thresholds,
    mode: MiningMode,
    miner: Miner,
) -> MineResult {
    let transactions = transactions_of(relation, mode);
    let itemsets = match miner {
        Miner::Apriori => apriori(
            &transactions,
            thresholds.min_support,
            &AprioriConfig {
                mode,
                counting: CountingStrategy::HashTree,
                max_len: None,
            },
        ),
        Miner::AprioriDirectScan => apriori(
            &transactions,
            thresholds.min_support,
            &AprioriConfig {
                mode,
                counting: CountingStrategy::DirectScan,
                max_len: None,
            },
        ),
        Miner::AprioriParallel => apriori(
            &transactions,
            thresholds.min_support,
            &AprioriConfig {
                mode,
                counting: CountingStrategy::ParallelScan,
                max_len: None,
            },
        ),
        Miner::FpGrowth => crate::fpgrowth::fpgrowth(&transactions, thresholds.min_support, mode),
        Miner::Eclat => crate::eclat::eclat(&transactions, thresholds.min_support, mode),
    };
    let rules = derive_rules(&itemsets, thresholds);
    MineResult { itemsets, rules }
}

/// Discover both rule shapes with the paper's Apriori (menu options 1+2).
pub fn mine_rules(relation: &AnnotatedRelation, thresholds: &Thresholds) -> RuleSet {
    mine_with(relation, thresholds, MiningMode::Annotated, Miner::Apriori).rules
}

/// Discover only data-to-annotation rules (Definition 4.2; menu option 1).
pub fn mine_data_to_annotation(relation: &AnnotatedRelation, thresholds: &Thresholds) -> RuleSet {
    let r = mine_with(
        relation,
        thresholds,
        MiningMode::DataToAnnotation,
        Miner::Apriori,
    );
    RuleSet::from_rules(
        r.rules
            .of_kind(RuleKind::DataToAnnotation)
            .cloned()
            .collect(),
    )
}

/// Discover only annotation-to-annotation rules (Definition 4.3; menu
/// option 2).
pub fn mine_annotation_to_annotation(
    relation: &AnnotatedRelation,
    thresholds: &Thresholds,
) -> RuleSet {
    mine_with(
        relation,
        thresholds,
        MiningMode::AnnotationToAnnotation,
        Miner::Apriori,
    )
    .rules
}

/// Generalization-based correlation discovery (§4.1): extend the relation
/// with the taxonomy's concept labels (Fig. 10), mine the extended database,
/// and drop *hierarchical tautologies* — rules whose consequent is a
/// taxonomy ancestor of one of their own antecedent items (those hold with
/// confidence 1 by construction and carry no information).
pub fn mine_generalized(
    relation: &AnnotatedRelation,
    taxonomy: &Taxonomy,
    thresholds: &Thresholds,
) -> (AnnotatedRelation, RuleSet) {
    let extended = taxonomy.extend_relation(relation);
    let rules = mine_rules(&extended, thresholds);
    let informative: Vec<_> = rules
        .rules()
        .iter()
        .filter(|r| {
            !r.lhs
                .items()
                .iter()
                .any(|&l| taxonomy.is_ancestor(r.rhs, l))
        })
        .cloned()
        .collect();
    (extended, RuleSet::from_rules(informative))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_store::{taxonomy_from_rules, Tuple};

    /// A relation where {x, y} ⇒ A holds strongly and A ⇒ B holds strongly.
    fn demo_relation() -> AnnotatedRelation {
        let mut rel = AnnotatedRelation::new("demo");
        let x = rel.vocab_mut().data("10");
        let y = rel.vocab_mut().data("20");
        let z = rel.vocab_mut().data("30");
        let a = rel.vocab_mut().annotation("A");
        let b = rel.vocab_mut().annotation("B");
        for _ in 0..8 {
            rel.insert(Tuple::new([x, y], [a, b]));
        }
        rel.insert(Tuple::new([x, y], [a]));
        rel.insert(Tuple::new([x, y], []));
        for _ in 0..2 {
            rel.insert(Tuple::new([z], []));
        }
        rel
    }

    #[test]
    fn mine_rules_finds_both_shapes() {
        let rel = demo_relation();
        let rules = mine_rules(&rel, &Thresholds::new(0.3, 0.8));
        let a = rel
            .vocab()
            .get(anno_store::ItemKind::Annotation, "A")
            .unwrap();
        let b = rel
            .vocab()
            .get(anno_store::ItemKind::Annotation, "B")
            .unwrap();
        let x = rel.vocab().get(anno_store::ItemKind::Data, "10").unwrap();
        let y = rel.vocab().get(anno_store::ItemKind::Data, "20").unwrap();
        // {x, y} ⇒ A: 9/10 tuples with {x,y} carry A; support 9/12.
        let d2a = rules
            .get(&crate::itemset::ItemSet::from_unsorted(vec![x, y]), a)
            .expect("d2a rule");
        assert_eq!(d2a.union_count, 9);
        assert_eq!(d2a.lhs_count, 10);
        // {A} ⇒ B: 8/9.
        let a2a = rules
            .get(&crate::itemset::ItemSet::single(a), b)
            .expect("a2a rule");
        assert_eq!(a2a.union_count, 8);
        assert_eq!(a2a.lhs_count, 9);
    }

    #[test]
    fn single_shape_entry_points_are_consistent_with_joint_mining() {
        let rel = demo_relation();
        let thresholds = Thresholds::new(0.3, 0.8);
        let joint = mine_rules(&rel, &thresholds);
        let d2a = mine_data_to_annotation(&rel, &thresholds);
        let a2a = mine_annotation_to_annotation(&rel, &thresholds);
        let joint_d2a: Vec<_> = joint.of_kind(RuleKind::DataToAnnotation).cloned().collect();
        let joint_a2a: Vec<_> = joint
            .of_kind(RuleKind::AnnotationToAnnotation)
            .cloned()
            .collect();
        assert!(RuleSet::from_rules(joint_d2a).identical_to(&d2a));
        assert!(RuleSet::from_rules(joint_a2a).identical_to(&a2a));
    }

    #[test]
    fn all_miners_produce_identical_rules() {
        let rel = demo_relation();
        let thresholds = Thresholds::new(0.25, 0.7);
        let reference = mine_with(&rel, &thresholds, MiningMode::Annotated, Miner::Apriori);
        for miner in [
            Miner::AprioriDirectScan,
            Miner::AprioriParallel,
            Miner::FpGrowth,
            Miner::Eclat,
        ] {
            let other = mine_with(&rel, &thresholds, MiningMode::Annotated, miner);
            assert!(
                reference.rules.identical_to(&other.rules),
                "{miner:?} diverges from Apriori"
            );
        }
    }

    #[test]
    fn generalized_mining_surfaces_concept_rules_and_drops_tautologies() {
        // Annotations A1 and A2 each appear on half the pattern tuples:
        // individually below a 0.6-confidence bar, but their common concept
        // covers all of them.
        let mut rel = AnnotatedRelation::new("gen");
        let x = rel.vocab_mut().data("10");
        let a1 = rel.vocab_mut().annotation("wrong value");
        let a2 = rel.vocab_mut().annotation("invalid entry");
        for i in 0..10 {
            let ann = if i % 2 == 0 { a1 } else { a2 };
            rel.insert(Tuple::new([x], [ann]));
        }
        let tax = taxonomy_from_rules(
            "wrong value, invalid entry -> Invalidation",
            rel.vocab_mut(),
        )
        .unwrap();
        let thresholds = Thresholds::new(0.4, 0.9);
        let raw_rules = mine_rules(&rel, &thresholds);
        let inv = rel
            .vocab()
            .get(anno_store::ItemKind::Label, "Invalidation")
            .unwrap();
        // Raw mining cannot find {x} ⇒ anything at 0.9 confidence.
        assert!(raw_rules.is_empty());
        let (_, gen_rules) = mine_generalized(&rel, &tax, &thresholds);
        let rule = gen_rules
            .get(&crate::itemset::ItemSet::single(x), inv)
            .expect("generalized rule {x} ⇒ Invalidation");
        assert_eq!(rule.union_count, 10);
        // The tautology {wrong value} ⇒ Invalidation (conf 1.0) is dropped.
        assert!(gen_rules
            .get(&crate::itemset::ItemSet::single(a1), inv)
            .is_none());
    }
}
