//! Rule-file output (paper Fig. 7) and its parser.
//!
//! The application of the paper writes discovered rules to a text file,
//! one rule per line:
//!
//! ```text
//! 28, 85 -> Annot_1 (conf=0.9659, sup=0.4194)
//! ```
//!
//! [`write_rules`] reproduces that format (rules sorted by descending
//! confidence, as in the figure); [`parse_rules_file`] reads it back for
//! round-trip tests and external tooling. Parsed rules reconstruct
//! fractional support/confidence only — the text format does not carry raw
//! counts — so round-trips compare identities and fractions, not counts.

use std::io::{self, Write};

use anno_store::{ItemKind, Vocabulary};

use crate::itemset::ItemSet;
use crate::rules::RuleSet;

/// Write `rules` in Fig. 7 format.
pub fn write_rules<W: Write>(
    rules: &RuleSet,
    vocab: &Vocabulary,
    writer: &mut W,
) -> io::Result<()> {
    writer.write_all(rules.render(vocab).as_bytes())
}

/// Render `rules` in Fig. 7 format to a string.
pub fn rules_to_string(rules: &RuleSet, vocab: &Vocabulary) -> String {
    rules.render(vocab)
}

/// A rule as recovered from a Fig. 7 file: identity plus fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRule {
    /// The antecedent.
    pub lhs: ItemSet,
    /// The consequent annotation.
    pub rhs: anno_store::Item,
    /// The printed confidence.
    pub confidence: f64,
    /// The printed support.
    pub support: f64,
}

/// Parse a Fig. 7 rules file. Tokens are resolved against `vocab` exactly
/// like dataset tokens: all-digit names are data values, everything else is
/// an annotation (concept labels must already be interned to be recognised
/// as labels).
pub fn parse_rules_file(vocab: &mut Vocabulary, text: &str) -> Result<Vec<ParsedRule>, String> {
    let mut out = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let (body, metrics) = line
            .rsplit_once('(')
            .ok_or_else(|| err("missing '(conf=…, sup=…)'"))?;
        let metrics = metrics.trim_end_matches(')');
        let mut conf = None;
        let mut sup = None;
        for part in metrics.split(',') {
            let part = part.trim();
            if let Some(v) = part.strip_prefix("conf=") {
                conf = v.parse::<f64>().ok();
            } else if let Some(v) = part.strip_prefix("sup=") {
                sup = v.parse::<f64>().ok();
            }
        }
        let (confidence, support) = match (conf, sup) {
            (Some(c), Some(s)) => (c, s),
            _ => return Err(err("malformed metrics")),
        };
        let (lhs_text, rhs_text) = body.rsplit_once("->").ok_or_else(|| err("missing '->'"))?;
        let rhs_name = rhs_text.trim();
        if rhs_name.is_empty() {
            return Err(err("empty consequent"));
        }
        let rhs = vocab
            .get(ItemKind::Label, rhs_name)
            .unwrap_or_else(|| vocab.annotation(rhs_name));
        let mut lhs_items = Vec::new();
        for tok in lhs_text.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let item = if tok.bytes().all(|b| b.is_ascii_digit()) {
                vocab.data(tok)
            } else {
                vocab
                    .get(ItemKind::Label, tok)
                    .unwrap_or_else(|| vocab.annotation(tok))
            };
            lhs_items.push(item);
        }
        if lhs_items.is_empty() {
            return Err(err("empty antecedent"));
        }
        out.push(ParsedRule {
            lhs: ItemSet::from_unsorted(lhs_items),
            rhs,
            confidence,
            support,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{AssociationRule, RuleSet};

    #[test]
    fn writes_sorted_by_confidence_desc() {
        let mut vocab = Vocabulary::new();
        let x = vocab.data("28");
        let y = vocab.data("85");
        let a1 = vocab.annotation("Annot_1");
        let a2 = vocab.annotation("Annot_2");
        let strong = AssociationRule {
            lhs: ItemSet::from_unsorted(vec![x, y]),
            rhs: a1,
            union_count: 4194,
            lhs_count: 4342,
            rhs_count: 5000,
            db_size: 10000,
        };
        let weak = AssociationRule {
            lhs: ItemSet::single(x),
            rhs: a2,
            union_count: 5000,
            lhs_count: 9000,
            rhs_count: 6000,
            db_size: 10000,
        };
        let rules = RuleSet::from_rules(vec![weak, strong]);
        let text = rules_to_string(&rules, &vocab);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "28, 85 -> Annot_1 (conf=0.9659, sup=0.4194)");
        assert!(lines[1].starts_with("28 -> Annot_2"));
    }

    #[test]
    fn roundtrip_preserves_identity_and_fractions() {
        let mut vocab = Vocabulary::new();
        let x = vocab.data("28");
        let a1 = vocab.annotation("Annot_1");
        let rule = AssociationRule {
            lhs: ItemSet::single(x),
            rhs: a1,
            union_count: 3,
            lhs_count: 4,
            rhs_count: 5,
            db_size: 10,
        };
        let rules = RuleSet::from_rules(vec![rule.clone()]);
        let text = rules_to_string(&rules, &vocab);
        let parsed = parse_rules_file(&mut vocab, &text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].lhs, rule.lhs);
        assert_eq!(parsed[0].rhs, rule.rhs);
        assert!((parsed[0].confidence - 0.75).abs() < 1e-4);
        assert!((parsed[0].support - 0.3).abs() < 1e-4);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        let mut vocab = Vocabulary::new();
        assert!(parse_rules_file(&mut vocab, "28 -> A").is_err());
        assert!(parse_rules_file(&mut vocab, "28 A (conf=0.5, sup=0.1)").is_err());
        assert!(parse_rules_file(&mut vocab, "-> A (conf=0.5, sup=0.1)").is_err());
        assert!(parse_rules_file(&mut vocab, "28 -> (conf=0.5, sup=0.1)").is_err());
        assert!(parse_rules_file(&mut vocab, "28 -> A (conf=x, sup=0.1)").is_err());
        let err = parse_rules_file(&mut vocab, "28 -> A (conf=0.5, sup=0.1)\nbad").unwrap_err();
        assert!(err.contains("line 2"));
    }

    #[test]
    fn write_rules_streams_to_writer() {
        let vocab = Vocabulary::new();
        let rules = RuleSet::new();
        let mut buf = Vec::new();
        write_rules(&rules, &vocab, &mut buf).unwrap();
        assert!(buf.is_empty());
    }
}
