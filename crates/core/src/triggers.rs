//! Insert triggers for annotation prediction (paper §5, second case).
//!
//! "When a patch of new tuples is added to the database, the system
//! automatically compares these tuples to the association rules" — the
//! database-trigger flavour of exploitation. [`CurationSession`] bundles an
//! [`IncrementalMiner`] with a trigger queue: every insert through the
//! session maintains the rules *and* fires the prediction trigger over the
//! inserted tuples, collecting pending [`Recommendation`]s for the curator
//! to accept or dismiss (accepting routes back through Case-3 maintenance,
//! closing the loop).

use anno_store::{AnnotatedRelation, AnnotationUpdate, Tuple, TupleId};

use crate::incremental::{IncrementalConfig, IncrementalMiner};
use crate::recommend::{recommend_for_tuples, Recommendation};

/// A curation session: relation + maintained rules + prediction trigger.
#[derive(Debug)]
pub struct CurationSession {
    relation: AnnotatedRelation,
    miner: IncrementalMiner,
    pending: Vec<Recommendation>,
}

impl CurationSession {
    /// Open a session over `relation`, mining the initial rules.
    pub fn open(relation: AnnotatedRelation, config: IncrementalConfig) -> CurationSession {
        let miner = IncrementalMiner::mine_initial(&relation, config);
        CurationSession {
            relation,
            miner,
            pending: Vec::new(),
        }
    }

    /// The underlying relation (read-only; mutations go through the
    /// session so rules and triggers stay consistent).
    pub fn relation(&self) -> &AnnotatedRelation {
        &self.relation
    }

    /// The maintained miner (rules, candidate rules, statistics).
    pub fn miner(&self) -> &IncrementalMiner {
        &self.miner
    }

    /// Recommendations produced by triggers and scans, newest last, not yet
    /// accepted or dismissed.
    pub fn pending(&self) -> &[Recommendation] {
        &self.pending
    }

    /// Insert tuples; maintains rules (Case 1 or 2 as appropriate) and
    /// fires the insert trigger, queuing predictions for the new tuples.
    pub fn insert_tuples(&mut self, tuples: Vec<Tuple>) -> Vec<TupleId> {
        let annotated = tuples.iter().any(|t| !t.is_unannotated());
        let tids = if annotated {
            self.miner.add_annotated_tuples(&mut self.relation, tuples)
        } else {
            self.miner
                .add_unannotated_tuples(&mut self.relation, tuples)
        };
        let recs = recommend_for_tuples(&self.relation, self.miner.rules(), tids.iter().copied());
        self.pending.extend(recs);
        tids
    }

    /// Apply an annotation batch (Case 3); drops any pending
    /// recommendations the batch just satisfied.
    pub fn apply_annotations(
        &mut self,
        updates: impl IntoIterator<Item = AnnotationUpdate>,
    ) -> usize {
        let delta = self.miner.apply_annotations(&mut self.relation, updates);
        self.pending.retain(|rec| {
            !delta
                .added
                .iter()
                .any(|u| u.tuple == rec.tuple && u.annotation == rec.annotation)
        });
        delta.len()
    }

    /// Run the full missing-annotation scan (§5 first case) and queue the
    /// results (deduplicated against already-pending entries).
    pub fn scan_for_missing(&mut self) -> usize {
        let recs = crate::recommend::recommend_missing(&self.relation, self.miner.rules());
        let mut added = 0;
        for rec in recs {
            let dup = self
                .pending
                .iter()
                .any(|p| p.tuple == rec.tuple && p.annotation == rec.annotation);
            if !dup {
                self.pending.push(rec);
                added += 1;
            }
        }
        added
    }

    /// Curator accepts the pending recommendation at `index`: the
    /// annotation is applied through Case-3 maintenance.
    pub fn accept(&mut self, index: usize) -> bool {
        if index >= self.pending.len() {
            return false;
        }
        let rec = self.pending.remove(index);
        let applied = self.miner.apply_annotations(
            &mut self.relation,
            [AnnotationUpdate {
                tuple: rec.tuple,
                annotation: rec.annotation,
            }],
        );
        !applied.is_empty()
    }

    /// Curator dismisses the pending recommendation at `index`.
    pub fn dismiss(&mut self, index: usize) -> bool {
        if index >= self.pending.len() {
            return false;
        }
        self.pending.remove(index);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Thresholds;
    use anno_store::Item;

    fn session() -> (CurationSession, Item, Item, Item) {
        let mut rel = AnnotatedRelation::new("R");
        let x = rel.vocab_mut().data("10");
        let y = rel.vocab_mut().data("20");
        let a = rel.vocab_mut().annotation("A");
        for _ in 0..9 {
            rel.insert(Tuple::new([x, y], [a]));
        }
        rel.insert(Tuple::new([y], []));
        let config = IncrementalConfig {
            thresholds: Thresholds::new(0.3, 0.8),
            ..Default::default()
        };
        (CurationSession::open(rel, config), x, y, a)
    }

    #[test]
    fn insert_trigger_predicts_for_new_tuples() {
        let (mut s, x, y, a) = session();
        assert!(s.pending().is_empty());
        let tids = s.insert_tuples(vec![Tuple::new([x, y], [])]);
        assert_eq!(s.pending().len(), 1);
        assert_eq!(s.pending()[0].tuple, tids[0]);
        assert_eq!(s.pending()[0].annotation, a);
    }

    #[test]
    fn accepting_applies_the_annotation_and_maintains_rules() {
        let (mut s, x, y, a) = session();
        let tids = s.insert_tuples(vec![Tuple::new([x, y], [])]);
        assert!(s.accept(0));
        assert!(s.pending().is_empty());
        assert!(s.relation().tuple(tids[0]).unwrap().contains(a));
        assert!(s.miner().verify_against_remine(s.relation()));
    }

    #[test]
    fn dismissing_removes_without_applying() {
        let (mut s, x, y, a) = session();
        let tids = s.insert_tuples(vec![Tuple::new([x, y], [])]);
        assert!(s.dismiss(0));
        assert!(!s.relation().tuple(tids[0]).unwrap().contains(a));
        assert!(!s.dismiss(0), "nothing left to dismiss");
    }

    #[test]
    fn external_annotation_batch_clears_satisfied_predictions() {
        let (mut s, x, y, a) = session();
        let tids = s.insert_tuples(vec![Tuple::new([x, y], [])]);
        assert_eq!(s.pending().len(), 1);
        let n = s.apply_annotations([AnnotationUpdate {
            tuple: tids[0],
            annotation: a,
        }]);
        assert_eq!(n, 1);
        assert!(s.pending().is_empty(), "satisfied prediction was dropped");
    }

    #[test]
    fn scan_for_missing_queues_database_wide_gaps() {
        let (mut s, x, y, _) = session();
        // Dismiss the insert trigger's prediction, then re-scan: the scan
        // re-finds the new gap tuple *and* the pre-existing lone-y tuple
        // (rule {y} ⇒ A applies to it as well).
        s.insert_tuples(vec![Tuple::new([x, y], [])]);
        s.dismiss(0);
        let added = s.scan_for_missing();
        assert_eq!(added, 2);
        // Re-scanning does not duplicate.
        assert_eq!(s.scan_for_missing(), 0);
    }

    #[test]
    fn unannotated_inserts_route_through_case2() {
        let (mut s, _, y, _) = session();
        s.insert_tuples(vec![Tuple::new([y], [])]);
        assert_eq!(s.miner().stats().case2_batches, 1);
        assert!(s.miner().verify_against_remine(s.relation()));
    }
}
