//! The frequent-itemset table: counted itemsets plus the support math.
//!
//! Support thresholds arrive as fractions (`α`, paper §2.2) but all
//! bookkeeping is exact integer counts: `support(S) = count(S) / |D|`, so
//! `support ≥ α ⟺ count ≥ ⌈α·|D|⌉` (with an epsilon guard against float
//! representation of products like `0.4 × 8000`). Keeping raw counts is what
//! makes incremental maintenance exact — counts add and subtract; fractions
//! do not.

use anno_store::fxhash::FxHashMap;

use crate::itemset::ItemSet;

/// The number of occurrences required for a fraction-`alpha` support over
/// `db_size` transactions (at least 1 — an itemset occurring zero times is
/// never frequent).
pub fn support_count_threshold(alpha: f64, db_size: u64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&alpha),
        "support fraction out of range"
    );
    let exact = alpha * db_size as f64;
    // Guard against float error pushing e.g. 3200.0000000004 up to 3201.
    let count = (exact - 1e-9).ceil().max(0.0) as u64;
    count.max(1)
}

/// A set of itemsets with exact occurrence counts over a database of
/// `db_size` transactions.
#[derive(Debug, Clone, Default)]
pub struct FrequentItemsets {
    counts: FxHashMap<ItemSet, u64>,
    db_size: u64,
}

impl FrequentItemsets {
    /// An empty table over a database of `db_size` transactions.
    pub fn new(db_size: u64) -> Self {
        FrequentItemsets {
            counts: FxHashMap::default(),
            db_size,
        }
    }

    /// Number of transactions (the support denominator).
    pub fn db_size(&self) -> u64 {
        self.db_size
    }

    /// Set the support denominator (used by incremental maintenance when
    /// tuples are added or deleted).
    pub fn set_db_size(&mut self, db_size: u64) {
        self.db_size = db_size;
    }

    /// Number of stored itemsets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` iff no itemsets are stored.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Exact occurrence count of `s`, if stored.
    pub fn count(&self, s: &ItemSet) -> Option<u64> {
        self.counts.get(s).copied()
    }

    /// `true` iff `s` is stored.
    pub fn contains(&self, s: &ItemSet) -> bool {
        self.counts.contains_key(s)
    }

    /// Support fraction of `s` (`None` if not stored).
    pub fn support(&self, s: &ItemSet) -> Option<f64> {
        self.count(s).map(|c| c as f64 / self.db_size.max(1) as f64)
    }

    /// Insert or overwrite the count of `s`.
    pub fn insert(&mut self, s: ItemSet, count: u64) {
        self.counts.insert(s, count);
    }

    /// Add `delta` occurrences to `s` (which must be stored).
    pub fn add_count(&mut self, s: &ItemSet, delta: u64) {
        *self
            .counts
            .get_mut(s)
            // anno-lint: allow(panic-path) -- documented contract: callers only count itemsets they inserted; a miss is table corruption
            .unwrap_or_else(|| panic!("itemset not stored: {s:?}")) += delta;
    }

    /// Subtract `delta` occurrences from `s` (which must be stored and have
    /// at least `delta` occurrences).
    pub fn sub_count(&mut self, s: &ItemSet, delta: u64) {
        let slot = self
            .counts
            .get_mut(s)
            // anno-lint: allow(panic-path) -- documented contract: callers only count itemsets they inserted; a miss is table corruption
            .unwrap_or_else(|| panic!("itemset not stored: {s:?}"));
        // anno-lint: allow(panic-path) -- documented contract: deletions never exceed prior insertions; underflow is table corruption
        *slot = slot.checked_sub(delta).expect("count underflow");
    }

    /// Remove every itemset with count below `min_count`.
    pub fn prune_below(&mut self, min_count: u64) {
        self.counts.retain(|_, &mut c| c >= min_count);
    }

    /// Iterate `(itemset, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&ItemSet, u64)> + '_ {
        self.counts.iter().map(|(s, &c)| (s, c))
    }

    /// Mutable iteration over counts.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&ItemSet, &mut u64)> + '_ {
        self.counts.iter_mut()
    }

    /// The stored itemsets whose count meets the fraction-`alpha` threshold.
    pub fn frequent_at(&self, alpha: f64) -> impl Iterator<Item = (&ItemSet, u64)> + '_ {
        let min = support_count_threshold(alpha, self.db_size);
        self.iter().filter(move |&(_, c)| c >= min)
    }

    /// The *closed* itemsets: those with no stored superset of equal count.
    /// Closed itemsets losslessly compress the table — every stored
    /// itemset's count equals the count of its smallest closed superset.
    pub fn closed(&self) -> Vec<(ItemSet, u64)> {
        let mut out: Vec<(ItemSet, u64)> = self
            .iter()
            .filter(|(s, c)| {
                !self.iter().any(|(t, ct)| {
                    ct == *c && t.len() > s.len() && s.items().iter().all(|i| t.contains(*i))
                })
            })
            .map(|(s, c)| (s.clone(), c))
            .collect();
        out.sort_unstable();
        out
    }

    /// The *maximal* itemsets at the fraction-`alpha` level: frequent
    /// itemsets with no frequent strict superset (the positive border).
    pub fn maximal_at(&self, alpha: f64) -> Vec<(ItemSet, u64)> {
        let min = support_count_threshold(alpha, self.db_size);
        let frequent: Vec<(&ItemSet, u64)> = self.iter().filter(|&(_, c)| c >= min).collect();
        let mut out: Vec<(ItemSet, u64)> = frequent
            .iter()
            .filter(|(s, _)| {
                !frequent
                    .iter()
                    .any(|(t, _)| t.len() > s.len() && s.items().iter().all(|i| t.contains(*i)))
            })
            .map(|&(s, c)| (s.clone(), c))
            .collect();
        out.sort_unstable();
        out
    }

    /// A canonical sorted snapshot, for equality assertions in tests.
    pub fn sorted(&self) -> Vec<(ItemSet, u64)> {
        let mut v: Vec<(ItemSet, u64)> = self.iter().map(|(s, c)| (s.clone(), c)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_store::Item;

    fn set(items: &[u32]) -> ItemSet {
        ItemSet::from_unsorted(items.iter().map(|&i| Item::data(i)).collect())
    }

    #[test]
    fn threshold_handles_exact_products() {
        assert_eq!(support_count_threshold(0.4, 8000), 3200);
        assert_eq!(support_count_threshold(0.5, 7), 4); // ceil(3.5)
        assert_eq!(support_count_threshold(0.0, 100), 1); // never zero
        assert_eq!(support_count_threshold(1.0, 100), 100);
    }

    #[test]
    fn threshold_is_at_least_one_on_empty_db() {
        assert_eq!(support_count_threshold(0.4, 0), 1);
    }

    #[test]
    fn insert_count_add_sub() {
        let mut f = FrequentItemsets::new(10);
        f.insert(set(&[1]), 4);
        assert_eq!(f.count(&set(&[1])), Some(4));
        assert_eq!(f.support(&set(&[1])), Some(0.4));
        f.add_count(&set(&[1]), 2);
        f.sub_count(&set(&[1]), 1);
        assert_eq!(f.count(&set(&[1])), Some(5));
        assert_eq!(f.count(&set(&[2])), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_count_underflow_panics() {
        let mut f = FrequentItemsets::new(10);
        f.insert(set(&[1]), 1);
        f.sub_count(&set(&[1]), 2);
    }

    #[test]
    fn prune_and_frequent_at() {
        let mut f = FrequentItemsets::new(10);
        f.insert(set(&[1]), 6);
        f.insert(set(&[2]), 3);
        f.insert(set(&[3]), 1);
        assert_eq!(f.frequent_at(0.5).count(), 1);
        assert_eq!(f.frequent_at(0.3).count(), 2);
        f.prune_below(3);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn closed_itemsets_compress_losslessly() {
        // {1}:5, {2}:5, {1,2}:5 → only {1,2} is closed.
        // {3}:4 has no equal-count superset → closed.
        let mut f = FrequentItemsets::new(10);
        f.insert(set(&[1]), 5);
        f.insert(set(&[2]), 5);
        f.insert(set(&[1, 2]), 5);
        f.insert(set(&[3]), 4);
        let closed = f.closed();
        assert_eq!(closed.len(), 2);
        assert!(closed.contains(&(set(&[1, 2]), 5)));
        assert!(closed.contains(&(set(&[3]), 4)));
        // Lossless: every itemset's count is recoverable from its smallest
        // closed superset.
        for (s, c) in f.iter() {
            let recovered = closed
                .iter()
                .filter(|(t, _)| s.items().iter().all(|i| t.contains(*i)))
                .map(|&(_, ct)| ct)
                .max()
                .unwrap();
            assert_eq!(recovered, c);
        }
    }

    #[test]
    fn maximal_itemsets_form_the_positive_border() {
        let mut f = FrequentItemsets::new(10);
        f.insert(set(&[1]), 8);
        f.insert(set(&[2]), 7);
        f.insert(set(&[1, 2]), 6);
        f.insert(set(&[3]), 3);
        let maximal = f.maximal_at(0.5);
        assert_eq!(maximal, vec![(set(&[1, 2]), 6)]);
        // At a lower bar, {3} joins the border.
        let maximal = f.maximal_at(0.3);
        assert_eq!(maximal.len(), 2);
    }

    #[test]
    fn sorted_snapshot_is_deterministic() {
        let mut f = FrequentItemsets::new(10);
        f.insert(set(&[2]), 1);
        f.insert(set(&[1]), 2);
        let snap = f.sorted();
        assert_eq!(snap[0].0, set(&[1]));
        assert_eq!(snap[1].0, set(&[2]));
    }
}
