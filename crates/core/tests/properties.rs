//! Property-based tests for the mining layer: three miners against a
//! brute-force model, rule derivation against definitional recomputation,
//! hash-tree counting against naive counting, and incremental maintenance
//! against re-mining over arbitrary operation sequences.

use anno_mine::{
    apriori, derive_rules, eclat, fpgrowth, mine_rules, AprioriConfig, CountingStrategy, HashTree,
    IncrementalConfig, IncrementalMiner, ItemSet, MiningMode, Thresholds, Transaction,
};
use anno_store::{AnnotatedRelation, AnnotationUpdate, Item, Tuple, TupleId};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random transaction databases.
// ---------------------------------------------------------------------

fn arb_transaction() -> impl Strategy<Value = Vec<Item>> {
    (
        proptest::collection::btree_set(0u32..12, 0..5),
        proptest::collection::btree_set(0u32..4, 0..3),
    )
        .prop_map(|(data, anns)| {
            data.into_iter()
                .map(Item::data)
                .chain(anns.into_iter().map(Item::annotation))
                .collect()
        })
}

fn arb_db() -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec(arb_transaction().prop_map(|v| v.into_boxed_slice()), 1..24)
}

/// Brute force: all frequent itemsets under `mode`, by enumerating every
/// subset of every transaction.
fn brute_force(
    transactions: &[Transaction],
    min_support: f64,
    mode: MiningMode,
) -> Vec<(ItemSet, u64)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<ItemSet, u64> = BTreeMap::new();
    let mut all: std::collections::BTreeSet<ItemSet> = Default::default();
    for t in transactions {
        let items: Vec<Item> = if mode.annotations_only() {
            t.iter()
                .copied()
                .filter(|i| i.is_annotation_like())
                .collect()
        } else {
            t.to_vec()
        };
        let n = items.len();
        for mask in 1u32..(1 << n) {
            let subset: Vec<Item> = (0..n)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| items[b])
                .collect();
            all.insert(ItemSet::from_unsorted(subset));
        }
    }
    let min_count = anno_mine::support_count_threshold(min_support, transactions.len() as u64);
    for s in all {
        if !s.admitted_by(mode) {
            continue;
        }
        let projected = |t: &Transaction| -> bool {
            if mode.annotations_only() {
                s.items().iter().all(|i| t.contains(i))
            } else {
                s.is_subset_of(t)
            }
        };
        let c = transactions.iter().filter(|t| projected(t)).count() as u64;
        if c >= min_count {
            counts.insert(s, c);
        }
    }
    counts.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn all_miners_match_brute_force(db in arb_db(), alpha in 0.1f64..0.9) {
        for mode in [
            MiningMode::Unrestricted,
            MiningMode::Annotated,
            MiningMode::DataToAnnotation,
            MiningMode::AnnotationToAnnotation,
        ] {
            let expected = brute_force(&db, alpha, mode);
            let ap = apriori(&db, alpha, &AprioriConfig { mode, ..Default::default() });
            prop_assert_eq!(ap.sorted(), expected.clone(), "apriori/hashtree, {:?}", mode);
            let ds = apriori(&db, alpha, &AprioriConfig {
                mode,
                counting: CountingStrategy::DirectScan,
                max_len: None,
            });
            prop_assert_eq!(ds.sorted(), expected.clone(), "apriori/directscan, {:?}", mode);
            let fp = fpgrowth(&db, alpha, mode);
            prop_assert_eq!(fp.sorted(), expected.clone(), "fpgrowth, {:?}", mode);
            let ec = eclat(&db, alpha, mode);
            prop_assert_eq!(ec.sorted(), expected, "eclat, {:?}", mode);
        }
    }

    #[test]
    fn hash_tree_counts_match_naive(db in arb_db(), k in 1usize..4) {
        // Candidates: every k-subset occurring in the db (deduplicated).
        let mut candidates: std::collections::BTreeSet<ItemSet> = Default::default();
        for t in &db {
            let n = t.len();
            if n < k { continue; }
            for mask in 1u32..(1 << n) {
                if mask.count_ones() as usize != k { continue; }
                let subset: Vec<Item> =
                    (0..n).filter(|b| mask & (1 << b) != 0).map(|b| t[b]).collect();
                candidates.insert(ItemSet::from_unsorted(subset));
            }
        }
        let candidates: Vec<ItemSet> = candidates.into_iter().collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let mut tree = HashTree::new(candidates.clone(), k);
        for t in &db {
            tree.count_transaction(t);
        }
        for (s, count) in tree.into_counts() {
            let naive = db.iter().filter(|t| s.is_subset_of(t)).count() as u64;
            prop_assert_eq!(count, naive, "hash tree miscounted {:?}", s);
        }
        let _ = candidates;
    }

    #[test]
    fn derived_rules_match_definitions(db in arb_db(), alpha in 0.1f64..0.6, beta in 0.3f64..0.95) {
        let table = apriori(&db, alpha, &AprioriConfig::default());
        let rules = derive_rules(&table, &Thresholds::new(alpha, beta));
        let n = db.len() as u64;
        for rule in rules.rules() {
            // Counts must match definitional recounting.
            let union = rule.union_itemset();
            let union_count = db.iter().filter(|t| union.is_subset_of(t)).count() as u64;
            let lhs_count = db.iter().filter(|t| rule.lhs.is_subset_of(t)).count() as u64;
            prop_assert_eq!(rule.union_count, union_count);
            prop_assert_eq!(rule.lhs_count, lhs_count);
            prop_assert_eq!(rule.db_size, n);
            // Thresholds hold, RHS is an annotation, shape is one of the
            // paper's two.
            prop_assert!(rule.rhs.is_annotation_like());
            prop_assert!(rule.meets(&Thresholds::new(alpha, beta)));
            prop_assert!(
                rule.lhs.annotation_count() == 0 || rule.lhs.data_count() == 0
            );
        }
        // Completeness: every admissible frequent itemset that encodes a
        // rule meeting the thresholds appears.
        let min_count = anno_mine::support_count_threshold(alpha, n);
        for (s, c) in table.iter() {
            if c < min_count || s.len() < 2 {
                continue;
            }
            let rhs_choices: Vec<Item> = if s.data_count() == 0 {
                s.items().to_vec()
            } else if s.annotation_count() == 1 {
                vec![s.items()[s.len() - 1]]
            } else {
                continue;
            };
            for rhs in rhs_choices {
                let lhs = s.without(rhs);
                let lhs_count = db.iter().filter(|t| lhs.is_subset_of(t)).count() as u64;
                if c as f64 / lhs_count as f64 >= beta - 1e-12 {
                    prop_assert!(
                        rules.get(&lhs, rhs).is_some(),
                        "missing rule {:?} => {:?}", lhs, rhs
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Incremental maintenance vs re-mining over arbitrary op sequences.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum WorkloadOp {
    AddAnnotated(Vec<(Vec<u8>, Vec<u8>)>),
    AddPlain(Vec<Vec<u8>>),
    Annotate(Vec<(u8, u8)>),
    RemoveAnnotations(Vec<(u8, u8)>),
    DeleteTuples(Vec<u8>),
}

fn arb_op() -> impl Strategy<Value = WorkloadOp> {
    let tuple = (
        proptest::collection::vec(0u8..10, 1..4),
        proptest::collection::vec(0u8..4, 0..3),
    );
    prop_oneof![
        proptest::collection::vec(tuple, 1..5).prop_map(WorkloadOp::AddAnnotated),
        proptest::collection::vec(proptest::collection::vec(0u8..10, 1..4), 1..5)
            .prop_map(WorkloadOp::AddPlain),
        proptest::collection::vec((any::<u8>(), 0u8..4), 1..8).prop_map(WorkloadOp::Annotate),
        proptest::collection::vec((any::<u8>(), 0u8..4), 1..8)
            .prop_map(WorkloadOp::RemoveAnnotations),
        proptest::collection::vec(any::<u8>(), 1..4).prop_map(WorkloadOp::DeleteTuples),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn incremental_equals_remine_for_any_workload(
        initial in proptest::collection::vec(
            (
                proptest::collection::vec(0u8..10, 1..4),
                proptest::collection::vec(0u8..4, 0..3),
            ),
            4..16,
        ),
        ops in proptest::collection::vec(arb_op(), 1..8),
        alpha in 0.15f64..0.5,
        beta in 0.4f64..0.9,
        retention in 0.3f64..1.0,
    ) {
        let mut rel = AnnotatedRelation::new("w");
        let data: Vec<Item> = (0..10).map(|i| rel.vocab_mut().data(&format!("{i}"))).collect();
        let anns: Vec<Item> =
            (0..4).map(|i| rel.vocab_mut().annotation(&format!("A{i}"))).collect();
        let build = |d: &[u8], a: &[u8], data: &[Item], anns: &[Item]| {
            Tuple::new(
                d.iter().map(|&i| data[i as usize]),
                a.iter().map(|&i| anns[i as usize]),
            )
        };
        for (d, a) in &initial {
            rel.insert(build(d, a, &data, &anns));
        }
        let mut miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds: Thresholds::new(alpha, beta),
                retention,
                ..Default::default()
            },
        );
        // Pinned snapshots: after every batch the relation is cloned (an
        // O(#segments) persistent snapshot of the segment store) together
        // with the rule set a from-scratch mine produced at that moment.
        // All pins are re-checked after the full workload — later batches
        // must never bleed into an earlier snapshot's view.
        let mut pinned: Vec<(anno_store::AnnotatedRelation, anno_mine::RuleSet)> = Vec::new();
        for op in ops {
            match op {
                WorkloadOp::AddAnnotated(tuples) => {
                    let tuples: Vec<Tuple> = tuples
                        .iter()
                        .map(|(d, a)| build(d, a, &data, &anns))
                        .collect();
                    // Mixed batches may contain un-annotated tuples; route
                    // through Case 1 which accepts both.
                    miner.add_annotated_tuples(&mut rel, tuples);
                }
                WorkloadOp::AddPlain(tuples) => {
                    let tuples: Vec<Tuple> =
                        tuples.iter().map(|d| build(d, &[], &data, &anns)).collect();
                    miner.add_unannotated_tuples(&mut rel, tuples);
                }
                WorkloadOp::Annotate(pairs) => {
                    let slots = rel.slot_count() as u32;
                    let updates: Vec<AnnotationUpdate> = pairs
                        .iter()
                        .map(|&(slot, ann)| AnnotationUpdate {
                            tuple: TupleId(u32::from(slot) % slots.max(1)),
                            annotation: anns[ann as usize],
                        })
                        .collect();
                    miner.apply_annotations(&mut rel, updates);
                }
                WorkloadOp::RemoveAnnotations(pairs) => {
                    let slots = rel.slot_count() as u32;
                    let updates: Vec<AnnotationUpdate> = pairs
                        .iter()
                        .map(|&(slot, ann)| AnnotationUpdate {
                            tuple: TupleId(u32::from(slot) % slots.max(1)),
                            annotation: anns[ann as usize],
                        })
                        .collect();
                    miner.remove_annotations(&mut rel, &updates);
                }
                WorkloadOp::DeleteTuples(slots_raw) => {
                    let slots = rel.slot_count() as u32;
                    let victims: Vec<TupleId> = slots_raw
                        .iter()
                        .map(|&s| TupleId(u32::from(s) % slots.max(1)))
                        .collect();
                    miner.delete_tuples(&mut rel, &victims);
                }
            }
            rel.check_consistency().map_err(TestCaseError::fail)?;
            let fresh = mine_rules(&rel, &Thresholds::new(alpha, beta));
            prop_assert!(
                miner.rules().identical_to(&fresh),
                "incremental diverged: {} maintained vs {} fresh rules",
                miner.rules().len(),
                fresh.len()
            );
            pinned.push((rel.clone(), fresh));
        }
        // Persistence: every pinned snapshot is still exactly the relation
        // it was cloned from — same epoch-frozen contents, still
        // internally consistent, and re-mining it from scratch still
        // yields the rule set recorded at pin time.
        for (round, (snap, rules_then)) in pinned.iter().enumerate() {
            snap.check_consistency().map_err(TestCaseError::fail)?;
            let remined = mine_rules(snap, &Thresholds::new(alpha, beta));
            prop_assert!(
                remined.identical_to(rules_then),
                "snapshot pinned at round {} drifted: {} rules then, {} now",
                round,
                rules_then.len(),
                remined.len()
            );
        }
    }
}
