//! Property-based tests for the storage substrate: model-checked bitsets,
//! merge-walk membership, index/tuple/liveness consistency under random
//! mutation sequences, and text-format round-trips.

use std::collections::BTreeSet;

use anno_store::{
    dataset_to_string, parse_dataset, AnnotatedRelation, BitSet, Item, ItemKind, SegmentStore,
    Tuple, TupleId, VOCAB_CHUNK_CAP,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// BitSet vs BTreeSet model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BitOp {
    Insert(u32),
    Remove(u32),
    Contains(u32),
}

fn arb_bitop() -> impl Strategy<Value = BitOp> {
    prop_oneof![
        (0u32..512).prop_map(BitOp::Insert),
        (0u32..512).prop_map(BitOp::Remove),
        (0u32..512).prop_map(BitOp::Contains),
    ]
}

proptest! {
    #[test]
    fn bitset_behaves_like_btreeset(ops in proptest::collection::vec(arb_bitop(), 0..200)) {
        let mut bits = BitSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for op in ops {
            match op {
                BitOp::Insert(i) => prop_assert_eq!(bits.insert(i), model.insert(i)),
                BitOp::Remove(i) => prop_assert_eq!(bits.remove(i), model.remove(&i)),
                BitOp::Contains(i) => prop_assert_eq!(bits.contains(i), model.contains(&i)),
            }
            prop_assert_eq!(bits.len(), model.len());
        }
        prop_assert_eq!(bits.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn bitset_set_algebra_matches_model(
        a in proptest::collection::btree_set(0u32..256, 0..64),
        b in proptest::collection::btree_set(0u32..256, 0..64),
    ) {
        let sa: BitSet = a.iter().copied().collect();
        let sb: BitSet = b.iter().copied().collect();
        prop_assert_eq!(sa.intersection_count(&sb), a.intersection(&b).count());
        prop_assert_eq!(
            sa.intersection(&sb).iter().collect::<Vec<_>>(),
            a.intersection(&b).copied().collect::<Vec<_>>()
        );
        let mut su = sa.clone();
        su.union_with(&sb);
        prop_assert_eq!(
            su.iter().collect::<Vec<_>>(),
            a.union(&b).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
    }
}

// ---------------------------------------------------------------------
// Tuple membership vs naive model.
// ---------------------------------------------------------------------

fn arb_items(max: u32, len: usize) -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec(
        prop_oneof![
            (0..max).prop_map(Item::data),
            (0..max / 2).prop_map(Item::annotation),
        ],
        0..len,
    )
}

proptest! {
    #[test]
    fn contains_all_matches_naive_subset(
        tuple_items in arb_items(40, 12),
        pattern_items in arb_items(40, 6),
    ) {
        let tuple = Tuple::from_items(tuple_items);
        let mut pattern = pattern_items;
        pattern.sort_unstable();
        pattern.dedup();
        let naive = pattern.iter().all(|i| tuple.items().contains(i));
        prop_assert_eq!(tuple.contains_all(&pattern), naive);
    }

    #[test]
    fn tuple_partition_is_total_and_disjoint(items in arb_items(40, 12)) {
        let tuple = Tuple::from_items(items);
        prop_assert_eq!(tuple.data().len() + tuple.annotations().len(), tuple.items().len());
        prop_assert!(tuple.data().iter().all(|i| i.is_data()));
        prop_assert!(tuple.annotations().iter().all(|i| i.is_annotation_like()));
    }
}

// ---------------------------------------------------------------------
// Relation mutations keep every invariant.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RelOp {
    Insert { data: Vec<u8>, anns: Vec<u8> },
    AddAnn { slot: u8, ann: u8 },
    RemoveAnn { slot: u8, ann: u8 },
    Delete { slot: u8 },
}

fn arb_relop() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        (
            proptest::collection::vec(0u8..20, 1..4),
            proptest::collection::vec(0u8..6, 0..3),
        )
            .prop_map(|(data, anns)| RelOp::Insert { data, anns }),
        (any::<u8>(), 0u8..6).prop_map(|(slot, ann)| RelOp::AddAnn { slot, ann }),
        (any::<u8>(), 0u8..6).prop_map(|(slot, ann)| RelOp::RemoveAnn { slot, ann }),
        any::<u8>().prop_map(|slot| RelOp::Delete { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn relation_invariants_hold_under_random_mutations(
        ops in proptest::collection::vec(arb_relop(), 0..60),
    ) {
        let mut rel = AnnotatedRelation::new("prop");
        // Pre-intern the vocabulary.
        let data: Vec<Item> = (0..20).map(|i| rel.vocab_mut().data(&format!("{i}"))).collect();
        let anns: Vec<Item> =
            (0..6).map(|i| rel.vocab_mut().annotation(&format!("A{i}"))).collect();
        for op in ops {
            match op {
                RelOp::Insert { data: d, anns: a } => {
                    rel.insert(Tuple::new(
                        d.into_iter().map(|i| data[i as usize]),
                        a.into_iter().map(|i| anns[i as usize]),
                    ));
                }
                RelOp::AddAnn { slot, ann } => {
                    if rel.slot_count() > 0 {
                        let tid = TupleId(u32::from(slot) % rel.slot_count() as u32);
                        rel.add_annotation(tid, anns[ann as usize]);
                    }
                }
                RelOp::RemoveAnn { slot, ann } => {
                    if rel.slot_count() > 0 {
                        let tid = TupleId(u32::from(slot) % rel.slot_count() as u32);
                        rel.remove_annotation(tid, anns[ann as usize]);
                    }
                }
                RelOp::Delete { slot } => {
                    if rel.slot_count() > 0 {
                        let tid = TupleId(u32::from(slot) % rel.slot_count() as u32);
                        rel.delete_tuple(tid);
                    }
                }
            }
            rel.check_consistency().map_err(TestCaseError::fail)?;
        }
        // Index frequencies equal brute-force scans.
        for &a in &anns {
            let scanned = rel.iter().filter(|(_, t)| t.contains(a)).count();
            prop_assert_eq!(rel.index().frequency(a), scanned);
        }
        // co_occurrence equals brute force for one pair.
        let scanned = rel
            .iter()
            .filter(|(_, t)| t.contains(anns[0]) && t.contains(anns[1]))
            .count();
        prop_assert_eq!(rel.index().co_occurrence(&[anns[0], anns[1]]), scanned);
    }

    #[test]
    fn datasets_roundtrip_through_fig4_text(
        tuples in proptest::collection::vec(
            (
                proptest::collection::btree_set(0u32..30, 1..5),
                proptest::collection::btree_set(0u32..5, 0..3),
            ),
            1..20,
        ),
    ) {
        let mut rel = AnnotatedRelation::new("r");
        for (data, anns) in &tuples {
            let d: Vec<Item> = data.iter().map(|i| rel.vocab_mut().data(&i.to_string())).collect();
            let a: Vec<Item> =
                anns.iter().map(|i| rel.vocab_mut().annotation(&format!("Annot_{i}"))).collect();
            rel.insert(Tuple::new(d, a));
        }
        let text = dataset_to_string(&rel);
        let rel2 = parse_dataset("r", &text).unwrap();
        prop_assert_eq!(rel.len(), rel2.len());
        let text2 = dataset_to_string(&rel2);
        prop_assert_eq!(text, text2, "second round-trip must be a fixpoint");
    }
}

// ---------------------------------------------------------------------
// Vocabulary structural sharing: annotate-only drains never unshare the
// interner; insert-heavy drains share every non-tail arena chunk.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn vocab_sharing_is_chunk_delta_proportional(
        existing in 1usize..700,
        fresh in 1usize..300,
        annotate_rounds in 1usize..4,
    ) {
        // Pre-drain state: `existing` annotation names plus a handful of
        // data values, enough to cross chunk boundaries either way.
        let mut rel = AnnotatedRelation::new("vocab-prop");
        let data: Vec<Item> = (0..40)
            .map(|i| rel.vocab_mut().data(&i.to_string()))
            .collect();
        let anns: Vec<Item> = (0..existing)
            .map(|i| rel.vocab_mut().annotation(&format!("Ann_{i}")))
            .collect();
        for i in 0..60u32 {
            rel.insert(Tuple::new([data[(i as usize) % data.len()]], []));
        }
        let snap = rel.clone();
        prop_assert!(rel.shares_vocab_with(&snap));
        prop_assert_eq!(rel.vocab_shared_chunks_with(&snap), rel.vocab_chunk_count());

        // Annotate-only drains: every name already interned, resolved
        // read-only — the vocabulary must never unshare, chunk or whole.
        for round in 0..annotate_rounds {
            let batch: Vec<_> = (0..20u32)
                .map(|i| anno_store::AnnotationUpdate {
                    tuple: TupleId((i * 3 + round as u32) % 60),
                    annotation: anns[(i as usize * 7 + round) % anns.len()],
                })
                .collect();
            rel.apply_annotation_batch(batch);
        }
        prop_assert!(
            rel.shares_vocab_with(&snap),
            "annotate-only drains must not unshare the vocabulary"
        );

        // Insert-heavy drain: `fresh` names the interner has never seen.
        let pre_ann_count = snap.vocab().count(ItemKind::Annotation);
        let pre_ann_chunks = snap.vocab().chunk_count(ItemKind::Annotation);
        let pre_data_chunks = snap.vocab().chunk_count(ItemKind::Data);
        for i in 0..fresh {
            rel.vocab_mut().annotation(&format!("Fresh_{i}"));
        }
        // The whole-structure meter goes false (new names exist) …
        prop_assert!(!rel.shares_vocab_with(&snap));
        // … but chunk-level sharing is exact: the data namespace (no new
        // names) keeps everything, and the annotation namespace loses at
        // most its partial tail chunk.
        let tail_was_partial = pre_ann_count % VOCAB_CHUNK_CAP != 0;
        let expected_ann_shared = pre_ann_chunks - usize::from(tail_was_partial);
        prop_assert_eq!(
            rel.vocab().shared_chunks_with_kind(ItemKind::Data, snap.vocab()),
            pre_data_chunks,
            "untouched namespace must stay fully shared"
        );
        prop_assert_eq!(
            rel.vocab().shared_chunks_with_kind(ItemKind::Annotation, snap.vocab()),
            expected_ann_shared,
            "insert-heavy drain must share all non-tail chunks"
        );
        // Every pre-drain item still resolves identically in both views,
        // and the snapshot never sees the fresh names.
        for &a in anns.iter().step_by(13) {
            prop_assert_eq!(rel.vocab().name(a), snap.vocab().name(a));
        }
        prop_assert!(snap.vocab().get(ItemKind::Annotation, "Fresh_0").is_none());
        // Copied bytes are delta-scale: strictly less than half the full
        // interner (the monolithic copy-on-write cost). Only meaningful
        // once the arena spans full chunks — a single-partial-chunk
        // vocabulary legitimately copies its whole (tiny) arena.
        if existing >= 2 * VOCAB_CHUNK_CAP && fresh * 4 < existing {
            let copied = rel.vocab().unshared_bytes_with(snap.vocab());
            prop_assert!(
                copied * 2 < rel.vocab().approx_heap_bytes(),
                "copied {} of {} bytes",
                copied,
                rel.vocab().approx_heap_bytes()
            );
        }
    }
}

// ---------------------------------------------------------------------
// SegmentStore vs a flat model, with persistent snapshots.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum StoreOp {
    /// Push `n` fresh tuples (bulk, so segment boundaries get crossed).
    PushMany(u16),
    Delete(u16),
    Annotate {
        slot: u16,
        ann: u8,
    },
    /// Clone the store and remember the expected state forever.
    Snapshot,
}

fn arb_storeop() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (1u16..300).prop_map(StoreOp::PushMany),
        any::<u16>().prop_map(StoreOp::Delete),
        (any::<u16>(), 0u8..4).prop_map(|(slot, ann)| StoreOp::Annotate { slot, ann }),
        Just(StoreOp::Snapshot),
    ]
}

/// The model: one entry per slot, `None` once tombstoned.
type StoreModel = Vec<Option<Tuple>>;

fn assert_store_matches(store: &SegmentStore, model: &StoreModel) -> Result<(), TestCaseError> {
    store.check().map_err(TestCaseError::fail)?;
    prop_assert_eq!(store.slot_count(), model.len());
    prop_assert_eq!(
        store.live_count(),
        model.iter().filter(|t| t.is_some()).count()
    );
    for (slot, expect) in model.iter().enumerate() {
        let slot = slot as u32;
        prop_assert_eq!(store.get(slot), expect.as_ref(), "slot {}", slot);
        prop_assert_eq!(store.is_live(slot), expect.is_some());
    }
    let live: Vec<(u32, &Tuple)> = store.iter_live().collect();
    let expected: Vec<(u32, &Tuple)> = model
        .iter()
        .enumerate()
        .filter_map(|(slot, t)| t.as_ref().map(|t| (slot as u32, t)))
        .collect();
    prop_assert_eq!(live, expected);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn segment_store_matches_flat_model_and_snapshots_are_persistent(
        ops in proptest::collection::vec(arb_storeop(), 1..40),
    ) {
        let mut store = SegmentStore::new();
        let mut model: StoreModel = Vec::new();
        let mut snapshots: Vec<(SegmentStore, StoreModel)> = Vec::new();
        let mut next_value = 0u32;
        for op in ops {
            match op {
                StoreOp::PushMany(n) => {
                    for _ in 0..n {
                        let t = Tuple::from_items(vec![Item::data(next_value)]);
                        next_value += 1;
                        let slot = store.push(t.clone());
                        prop_assert_eq!(slot as usize, model.len());
                        model.push(Some(t));
                    }
                }
                StoreOp::Delete(raw) => {
                    let slot = match model.len() {
                        0 => u32::from(raw),
                        n => u32::from(raw) % (n as u32 + 8), // sometimes out of range
                    };
                    let expect = model
                        .get_mut(slot as usize)
                        .map(|e| e.take().is_some())
                        .unwrap_or(false);
                    prop_assert_eq!(store.delete(slot), expect);
                }
                StoreOp::Annotate { slot, ann } => {
                    let slot = u32::from(slot) % (model.len().max(1) as u32 + 4);
                    let ann = Item::annotation(u32::from(ann));
                    let expect = match model.get_mut(slot as usize) {
                        Some(Some(t)) => {
                            let mut items = t.items().to_vec();
                            items.push(ann);
                            *t = Tuple::from_items(items);
                            true
                        }
                        _ => false,
                    };
                    // In-place rewrite through the copy-on-write hook;
                    // only live slots are touchable.
                    let touched = store
                        .update(slot, |t| {
                            let mut items = t.items().to_vec();
                            items.push(ann);
                            *t = Tuple::from_items(items);
                        })
                        .is_some();
                    prop_assert_eq!(touched, expect);
                }
                StoreOp::Snapshot => {
                    snapshots.push((store.clone(), model.clone()));
                    // A fresh clone shares its entire spine.
                    let (snap, _) = snapshots.last().unwrap();
                    prop_assert_eq!(
                        store.shared_segments_with(snap),
                        store.segments().len()
                    );
                }
            }
            assert_store_matches(&store, &model)?;
        }
        // Persistence: every snapshot still matches the state it was taken
        // at, no matter what happened to the live store afterwards.
        for (snap, snap_model) in &snapshots {
            assert_store_matches(snap, snap_model)?;
        }
    }
}
