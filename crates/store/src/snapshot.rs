//! Exact database snapshots.
//!
//! The paper's Fig. 4 text format is lossy for a *live* system: it drops
//! tuple-id stability (tombstones), the label namespace, and interning
//! order. This module defines a complete line-oriented snapshot format so
//! an annotated database can be persisted and restored byte-exactly —
//! one half of the paper's "integrate into an actual DBMS" future work
//! (the other half, miner-state checkpoints, lives in `anno-mine`).
//!
//! ```text
//! annodb-snapshot v1
//! name <escaped>
//! epoch <mutation-counter>         # optional for back-compat reading
//! vocab <d|a|l> <escaped-name>     # one per interned name, intern order
//! slots <total-slot-count>
//! tuple <tid> <raw-item> ...       # live tuples only, ascending tid
//! end
//! ```
//!
//! The mutation epoch is persisted explicitly: restoring replays inserts
//! and tombstone deletes, which would otherwise fabricate an epoch from
//! the reconstruction order — and serving layers key snapshot staleness
//! off that counter, so it must survive a save/load cycle exactly.
//!
//! Names are percent-escaped so they may contain whitespace and `#`.

use std::io::{self, BufRead, Write};

use crate::item::{Item, ItemKind};
use crate::relation::AnnotatedRelation;
use crate::tuple::{Tuple, TupleId};

/// Percent-escape a name for single-token storage.
pub fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'%' | b' ' | b'\t' | b'\n' | b'\r' | b'#' => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

/// Inverse of [`escape_name`].
pub fn unescape_name(escaped: &str) -> Result<String, String> {
    let bytes = escaped.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {escaped:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
            out.push(u8::from_str_radix(hex, 16).map_err(|e| e.to_string())?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|e| e.to_string())
}

fn kind_tag(kind: ItemKind) -> char {
    match kind {
        ItemKind::Data => 'd',
        ItemKind::Annotation => 'a',
        ItemKind::Label => 'l',
    }
}

fn tag_kind(tag: &str) -> Result<ItemKind, String> {
    match tag {
        "d" => Ok(ItemKind::Data),
        "a" => Ok(ItemKind::Annotation),
        "l" => Ok(ItemKind::Label),
        other => Err(format!("unknown vocab tag {other:?}")),
    }
}

/// Write a complete snapshot of `rel`.
pub fn write_snapshot<W: Write>(rel: &AnnotatedRelation, writer: &mut W) -> io::Result<()> {
    writeln!(writer, "annodb-snapshot v1")?;
    writeln!(writer, "name {}", escape_name(rel.name()))?;
    writeln!(writer, "epoch {}", rel.epoch())?;
    for kind in ItemKind::ALL {
        for item in rel.vocab().items(kind) {
            writeln!(
                writer,
                "vocab {} {}",
                kind_tag(kind),
                escape_name(rel.vocab().name(item))
            )?;
        }
    }
    writeln!(writer, "slots {}", rel.slot_count())?;
    for (tid, tuple) in rel.iter() {
        write!(writer, "tuple {}", tid.0)?;
        for item in tuple.items() {
            write!(writer, " {}", item.raw())?;
        }
        writeln!(writer)?;
    }
    writeln!(writer, "end")
}

/// Render a snapshot to a string.
pub fn snapshot_to_string(rel: &AnnotatedRelation) -> String {
    let mut buf = Vec::new();
    write_snapshot(rel, &mut buf).expect("writing to Vec cannot fail"); // anno-lint: allow(panic-path) -- io::Write on Vec<u8> is infallible
                                                                        // anno-lint: allow(panic-path) -- the writer emits only ASCII framing and already-valid UTF-8 names
    String::from_utf8(buf).expect("snapshot text is UTF-8")
}

/// Restore a relation from a snapshot, preserving tuple ids (tombstoned
/// slots are reconstructed as deleted).
pub fn read_snapshot<R: BufRead>(reader: R) -> Result<AnnotatedRelation, String> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or("empty snapshot")?
        .map_err(|e| e.to_string())?;
    if header.trim() != "annodb-snapshot v1" {
        return Err(format!("unsupported snapshot header {header:?}"));
    }
    let mut rel = AnnotatedRelation::new("");
    let mut epoch: Option<u64> = None;
    let mut slots: Option<usize> = None;
    let mut live: Vec<(TupleId, Vec<Item>)> = Vec::new();
    let mut saw_end = false;
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 2);
        let mut parts = line.split(' ');
        match parts.next() {
            Some("name") => {
                let name = unescape_name(parts.next().unwrap_or("")).map_err(&err)?;
                rel = AnnotatedRelation::new(name);
            }
            Some("epoch") => {
                let e: u64 = parts
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|e| err(format!("bad epoch: {e}")))?;
                epoch = Some(e);
            }
            Some("vocab") => {
                let kind = tag_kind(parts.next().unwrap_or("")).map_err(&err)?;
                let name = unescape_name(parts.next().unwrap_or("")).map_err(&err)?;
                rel.vocab_mut().intern(kind, &name);
            }
            Some("slots") => {
                let n: usize = parts
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|e| err(format!("bad slot count: {e}")))?;
                slots = Some(n);
            }
            Some("tuple") => {
                let tid: u32 = parts
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|e| err(format!("bad tuple id: {e}")))?;
                let mut items = Vec::new();
                for tok in parts {
                    let raw: u32 = tok.parse().map_err(|e| err(format!("bad item: {e}")))?;
                    items.push(Item::from_raw(raw));
                }
                live.push((TupleId(tid), items));
            }
            Some("end") => {
                saw_end = true;
                break;
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }
    if !saw_end {
        return Err("snapshot truncated: missing 'end'".into());
    }
    let slots = slots.ok_or("snapshot missing 'slots'")?;

    // Rebuild slot-exactly: live tuples at their ids, tombstones elsewhere.
    live.sort_by_key(|&(tid, _)| tid);
    let mut by_tid = live.into_iter().peekable();
    for slot in 0..slots {
        match by_tid.peek() {
            Some((tid, _)) if tid.0 as usize == slot => {
                // anno-lint: allow(panic-path) -- peek() returned Some for this iteration's match arm
                let (_, items) = by_tid.next().expect("peeked");
                rel.insert(Tuple::from_items(items));
            }
            _ => {
                let tid = rel.insert(Tuple::from_items(Vec::new()));
                rel.delete_tuple(tid);
            }
        }
    }
    if let Some((tid, _)) = by_tid.next() {
        return Err(format!("tuple id {tid} out of declared slot range"));
    }
    // Reconstruction replayed inserts/deletes, fabricating an epoch;
    // restore the persisted one (pre-epoch v1 files keep the replay value,
    // which is at least monotone in the relation's contents).
    if let Some(e) = epoch {
        rel.set_epoch(e);
    }
    Ok(rel)
}

/// Restore from a string (see [`read_snapshot`]).
pub fn snapshot_from_string(text: &str) -> Result<AnnotatedRelation, String> {
    read_snapshot(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnnotatedRelation {
        let mut rel = AnnotatedRelation::new("weird name # with % tricks");
        let x = rel.vocab_mut().data("28");
        let spaced = rel.vocab_mut().annotation("looks wrong to me");
        let label = rel.vocab_mut().label("Invalidation");
        rel.insert(Tuple::new([x], [spaced, label]));
        let dead = rel.insert(Tuple::new([x], []));
        rel.insert(Tuple::new([x], [spaced]));
        rel.delete_tuple(dead);
        rel
    }

    #[test]
    fn escape_roundtrips_hostile_names() {
        for name in ["plain", "with space", "100% #done\ttab", "%", ""] {
            assert_eq!(unescape_name(&escape_name(name)).unwrap(), name);
        }
    }

    #[test]
    fn unescape_rejects_truncated_escapes() {
        assert!(unescape_name("abc%2").is_err());
        assert!(unescape_name("abc%zz").is_err());
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let rel = sample();
        let text = snapshot_to_string(&rel);
        let restored = snapshot_from_string(&text).unwrap();
        assert_eq!(restored.name(), rel.name());
        assert_eq!(
            restored.epoch(),
            rel.epoch(),
            "mutation epoch must survive persistence exactly"
        );
        assert_eq!(restored.len(), rel.len());
        assert_eq!(restored.slot_count(), rel.slot_count());
        for slot in 0..rel.slot_count() as u32 {
            let tid = TupleId(slot);
            match (rel.tuple(tid), restored.tuple(tid)) {
                (Some(a), Some(b)) => assert_eq!(a.items(), b.items(), "tuple {tid}"),
                (None, None) => {}
                _ => panic!("liveness mismatch at {tid}"),
            }
        }
        // Vocabulary preserved including namespaces and spaced names.
        assert_eq!(
            restored
                .vocab()
                .get(ItemKind::Annotation, "looks wrong to me"),
            rel.vocab().get(ItemKind::Annotation, "looks wrong to me"),
        );
        assert_eq!(
            restored.vocab().get(ItemKind::Label, "Invalidation"),
            rel.vocab().get(ItemKind::Label, "Invalidation"),
        );
        restored.check_consistency().unwrap();
        // Second round-trip is a fixpoint.
        assert_eq!(snapshot_to_string(&restored), text);
    }

    #[test]
    fn snapshot_preserves_index_queries() {
        let rel = sample();
        let restored = snapshot_from_string(&snapshot_to_string(&rel)).unwrap();
        let ann = rel
            .vocab()
            .get(ItemKind::Annotation, "looks wrong to me")
            .unwrap();
        assert_eq!(restored.index().frequency(ann), rel.index().frequency(ann));
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(snapshot_from_string("").is_err());
        assert!(snapshot_from_string("wrong header\nend\n").is_err());
        assert!(
            snapshot_from_string("annodb-snapshot v1\nslots 0\n").is_err(),
            "missing end"
        );
        assert!(
            snapshot_from_string("annodb-snapshot v1\nbogus x\nend\n").is_err(),
            "unknown directive"
        );
        assert!(
            snapshot_from_string("annodb-snapshot v1\nslots 1\ntuple 5 0\nend\n").is_err(),
            "tuple beyond slots"
        );
    }

    #[test]
    fn empty_relation_roundtrips() {
        let rel = AnnotatedRelation::new("empty");
        let restored = snapshot_from_string(&snapshot_to_string(&rel)).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(restored.slot_count(), 0);
        assert_eq!(restored.epoch(), 0);
    }

    /// A snapshot file written by the pre-persistent-interner code
    /// (monolithic `Vec<String>` + hash-map `Vocabulary`). The format
    /// carries names in intern order and raw item ids in tuples; the
    /// chunked interner must re-intern to *identical* ids — and therefore
    /// identical chunk boundaries — or WAL replay (which re-runs the same
    /// interning sequence) would rebind every item after a restart.
    const PRE_INTERNER_FIXTURE: &str = "\
annodb-snapshot v1
name fixture
epoch 3
vocab d 28
vocab d 85
vocab a Annot_1
vocab a looks%20wrong
vocab l Invalidation
slots 3
tuple 0 0 1 1073741824
tuple 2 1 1073741825 2147483648
end
";

    #[test]
    fn pre_interner_fixture_reinterns_to_identical_ids() {
        let rel = snapshot_from_string(PRE_INTERNER_FIXTURE).unwrap();
        // Raw ids are the monolithic interner's: dense per namespace in
        // file order, tag in the top bits.
        assert_eq!(rel.vocab().get(ItemKind::Data, "28").unwrap().raw(), 0);
        assert_eq!(rel.vocab().get(ItemKind::Data, "85").unwrap().raw(), 1);
        assert_eq!(
            rel.vocab()
                .get(ItemKind::Annotation, "Annot_1")
                .unwrap()
                .raw(),
            1 << 30
        );
        assert_eq!(
            rel.vocab()
                .get(ItemKind::Annotation, "looks wrong")
                .unwrap()
                .raw(),
            (1 << 30) | 1
        );
        assert_eq!(
            rel.vocab()
                .get(ItemKind::Label, "Invalidation")
                .unwrap()
                .raw(),
            2 << 30
        );
        assert_eq!(rel.epoch(), 3);
        assert_eq!(rel.slot_count(), 3);
        assert!(rel.tuple(TupleId(1)).is_none(), "slot 1 is a tombstone");
        // Re-serialising is byte-identical: intern order, ids, and (with
        // them) chunk boundaries are all deterministic.
        assert_eq!(snapshot_to_string(&rel), PRE_INTERNER_FIXTURE);
        // Interning continues densely after the reload, exactly where the
        // pre-change interner would have.
        let mut rel = rel;
        assert_eq!(rel.vocab_mut().data("fresh").raw(), 2);
    }

    #[test]
    fn chunk_boundaries_roundtrip_across_many_chunks() {
        use crate::vocab::VOCAB_CHUNK_CAP;
        let mut rel = AnnotatedRelation::new("chunky");
        // Enough names to span several arena chunks in two namespaces,
        // interleaved so intern order is not namespace order.
        let n = VOCAB_CHUNK_CAP * 2 + 37;
        for i in 0..n {
            let d = rel.vocab_mut().data(&format!("{i}"));
            let a = rel.vocab_mut().annotation(&format!("Ann_{i}"));
            rel.insert(Tuple::new([d], [a]));
        }
        let text = snapshot_to_string(&rel);
        let restored = snapshot_from_string(&text).unwrap();
        for kind in ItemKind::ALL {
            assert_eq!(restored.vocab().count(kind), rel.vocab().count(kind));
            assert_eq!(
                restored.vocab().chunk_count(kind),
                rel.vocab().chunk_count(kind),
                "chunk boundaries must be reproduced for {kind:?}"
            );
            for item in rel.vocab().items(kind) {
                assert_eq!(restored.vocab().name(item), rel.vocab().name(item));
            }
        }
        // Fixpoint: a second round-trip changes nothing.
        assert_eq!(snapshot_to_string(&restored), text);
    }

    #[test]
    fn pre_epoch_snapshots_still_load() {
        // A v1 file written before the epoch directive existed.
        let restored =
            snapshot_from_string("annodb-snapshot v1\nname r\nslots 1\ntuple 0 0\nend\n").unwrap();
        assert_eq!(restored.len(), 1);
        assert!(snapshot_from_string("annodb-snapshot v1\nepoch x\nend\n").is_err());
    }
}
