//! Annotated-relation storage for the `annomine` workspace.
//!
//! This crate is the database substrate beneath the association-rule miner
//! (`anno-mine`). It implements everything the paper's system needs from
//! its storage layer, plus the workload tooling the evaluation requires:
//!
//! * [`item`] — interned [`Item`](item::Item)s: data values, raw
//!   annotations, and generalization labels in one tagged 32-bit space;
//! * [`vocab`] — the persistent, structurally shared
//!   [`Vocabulary`](vocab::Vocabulary): an `Arc`-chunked append-only name
//!   arena plus a hash-array-mapped index, so cloning the interner is
//!   O(#chunks) and interning fresh names copies only the tail chunk and
//!   the touched index path — never the whole table;
//! * [`tuple`] / [`relation`] — annotated tuples (Definition 4.1) and the
//!   [`AnnotatedRelation`](relation::AnnotatedRelation) with liveness
//!   tracking and consistent mutation under the paper's three evolution
//!   cases (plus deletion, the paper's future-work item);
//! * [`segment`] — the persistent, structurally shared tuple store
//!   beneath the relation: `Arc`-shared fixed-capacity segments make
//!   `AnnotatedRelation::clone` an O(#segments) snapshot and bound every
//!   copy-on-write to one segment;
//! * [`index`] — the annotation inverted index of §4.3, backed by [`bitset`];
//! * [`generalize`] — concept taxonomies and the extended annotated
//!   database of §4.1 (Figs. 8–10), including multi-level hierarchies;
//! * [`textio`] — the paper's text formats (Fig. 4 datasets, Fig. 14
//!   annotation batches) — and [`snapshot`], the exact persistence format
//!   (tombstones, labels, and interning order preserved);
//! * [`generate`] — reproducible synthetic workloads with planted ground
//!   truth, standing in for the paper's unpublished ≈8000-tuple dataset;
//! * [`algebra`] — provenance-propagating relational algebra over any
//!   semiring from `anno-semiring`, bridging annotated relations into the
//!   Green–Karvounarakis–Tannen framework;
//! * [`fxhash`] — the integer-keyed hash maps used throughout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod bitset;
pub mod fxhash;
pub mod generalize;
pub mod generate;
pub mod index;
pub mod item;
pub mod relation;
pub mod segment;
pub mod snapshot;
pub mod textio;
pub mod tuple;
pub mod vocab;

pub use algebra::KRelation;
pub use bitset::BitSet;
pub use generalize::{
    keyword_rule, parse_rules, taxonomy_from_rules, GeneralizationRule, Taxonomy,
};
pub use generate::{
    generate, hide_annotations, random_annotated_tuples, random_annotation_batch,
    random_unannotated_tuples, GeneratorConfig, PlantedRule, SyntheticDataset,
};
pub use index::AnnotationIndex;
pub use item::{Item, ItemKind};
pub use relation::{AnnotatedRelation, AnnotationDelta, AnnotationUpdate};
pub use segment::{Segment, SegmentStore, SEGMENT_BITS, SEGMENT_CAP};
pub use snapshot::{read_snapshot, snapshot_from_string, snapshot_to_string, write_snapshot};
pub use textio::{
    dataset_to_string, format_annotation_batch, format_tuple, line_has_items,
    parse_annotation_batch, parse_dataset, parse_tuple_line, read_dataset, token_kind,
    write_dataset, ParseError,
};
pub use tuple::{Tuple, TupleId};
pub use vocab::{Vocabulary, VOCAB_CHUNK_BITS, VOCAB_CHUNK_CAP};
