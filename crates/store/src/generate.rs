//! Synthetic annotated-database workloads.
//!
//! The paper evaluates on a private dataset of "approximately 8000 entries"
//! (Fig. 4 shows its shape: a handful of data-value ids plus `Annot_k`
//! tokens per tuple). The dataset itself was never published, so we generate
//! statistically comparable ones: planted frequent data patterns, planted
//! `pattern ⇒ annotation` and `annotation ⇒ annotation` implications with
//! configurable confidence, plus uniform noise. Every evaluated quantity in
//! the paper (runtime ratios, rule recovery, incremental-vs-batch
//! equivalence) depends only on transaction shape, item frequencies, and the
//! planted correlation structure — all controlled here, all reproducible
//! from a fixed seed.
//!
//! The generator also produces the *ground truth* of planted rules so the
//! exploitation experiments (§5) can score recommendation precision/recall.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::item::Item;
use crate::relation::{AnnotatedRelation, AnnotationUpdate};
use crate::tuple::{Tuple, TupleId};

/// Parameters of the synthetic workload.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of tuples (the paper's DB is ≈ 8000).
    pub tuples: usize,
    /// Distinct data values to draw from.
    pub data_universe: u32,
    /// Data values per tuple, before pattern injection.
    pub tuple_width: usize,
    /// Number of planted frequent data patterns.
    pub pattern_count: usize,
    /// Items per planted pattern.
    pub pattern_width: usize,
    /// Probability that a tuple embeds a given planted pattern.
    pub pattern_prob: f64,
    /// Planted data-to-annotation rules (each consumes one pattern,
    /// cycling if more rules than patterns).
    pub d2a_rules: usize,
    /// Planted annotation-to-annotation rules (chained off d2a annotations).
    pub a2a_rules: usize,
    /// Confidence with which a planted implication fires.
    pub rule_confidence: f64,
    /// Distinct noise annotations.
    pub noise_annotations: u32,
    /// Probability of each noise annotation appearing on a tuple.
    pub noise_prob: f64,
    /// RNG seed; equal configs with equal seeds generate equal datasets.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            tuples: 2000,
            data_universe: 200,
            tuple_width: 6,
            pattern_count: 8,
            pattern_width: 2,
            pattern_prob: 0.45,
            d2a_rules: 6,
            a2a_rules: 3,
            rule_confidence: 0.9,
            noise_annotations: 10,
            noise_prob: 0.02,
            seed: 0xA0_70_7E,
        }
    }
}

impl GeneratorConfig {
    /// A configuration sized like the paper's evaluation database
    /// ("approximately 8000 entries", §4.3 Results).
    pub fn paper_scale(seed: u64) -> Self {
        GeneratorConfig {
            tuples: 8000,
            data_universe: 400,
            tuple_width: 8,
            pattern_count: 12,
            pattern_width: 2,
            pattern_prob: 0.45,
            d2a_rules: 8,
            a2a_rules: 4,
            rule_confidence: 0.9,
            noise_annotations: 16,
            noise_prob: 0.02,
            seed,
        }
    }

    /// A small configuration for unit tests (fast to mine exhaustively).
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            tuples: 200,
            data_universe: 40,
            tuple_width: 4,
            pattern_count: 3,
            pattern_width: 2,
            pattern_prob: 0.5,
            d2a_rules: 2,
            a2a_rules: 1,
            rule_confidence: 0.95,
            noise_annotations: 4,
            noise_prob: 0.02,
            seed,
        }
    }
}

/// A rule planted by the generator — the ground truth for evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedRule {
    /// Sorted LHS items (data values for d2a rules, annotations for a2a).
    pub lhs: Vec<Item>,
    /// The implied annotation.
    pub rhs: Item,
    /// The confidence the implication was planted with.
    pub confidence: f64,
}

/// A generated workload: the relation plus its planted ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The generated annotated relation.
    pub relation: AnnotatedRelation,
    /// Rules that were planted (d2a first, then a2a).
    pub planted: Vec<PlantedRule>,
}

/// Generate a synthetic annotated database from `config`.
pub fn generate(config: &GeneratorConfig) -> SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rel = AnnotatedRelation::new("synthetic");

    // Interned universes. Data values are named after their index so the
    // Fig. 4 text format round-trips them as numerics.
    let data_items: Vec<Item> = (0..config.data_universe)
        .map(|i| rel.vocab_mut().data(&i.to_string()))
        .collect();
    assert!(
        (config.pattern_width as u32) * (config.pattern_count as u32) <= config.data_universe,
        "data universe too small for the requested patterns"
    );

    // Planted patterns use disjoint reserved values so their frequency is
    // controlled purely by pattern_prob.
    let patterns: Vec<Vec<Item>> = (0..config.pattern_count)
        .map(|p| {
            let start = p * config.pattern_width;
            data_items[start..start + config.pattern_width].to_vec()
        })
        .collect();

    let d2a_anns: Vec<Item> = (0..config.d2a_rules)
        .map(|i| rel.vocab_mut().annotation(&format!("Annot_{}", i + 1)))
        .collect();
    let a2a_anns: Vec<Item> = (0..config.a2a_rules)
        .map(|i| {
            rel.vocab_mut()
                .annotation(&format!("Annot_{}", config.d2a_rules + i + 1))
        })
        .collect();
    let noise_anns: Vec<Item> = (0..config.noise_annotations)
        .map(|i| rel.vocab_mut().annotation(&format!("Noise_{i}")))
        .collect();

    let free_values = &data_items[config.pattern_count * config.pattern_width..];
    let mut planted = Vec::new();
    for (i, ann) in d2a_anns.iter().enumerate() {
        planted.push(PlantedRule {
            lhs: patterns[i % patterns.len()].clone(),
            rhs: *ann,
            confidence: config.rule_confidence,
        });
    }
    for (i, ann) in a2a_anns.iter().enumerate() {
        planted.push(PlantedRule {
            lhs: vec![d2a_anns[i % d2a_anns.len()]],
            rhs: *ann,
            confidence: config.rule_confidence,
        });
    }

    for _ in 0..config.tuples {
        let mut data: Vec<Item> = Vec::with_capacity(config.tuple_width + 2);
        let mut anns: Vec<Item> = Vec::new();

        // Background filler values (uniform over the non-reserved range).
        if !free_values.is_empty() {
            for _ in 0..config.tuple_width {
                data.push(*free_values.choose(&mut rng).expect("non-empty"));
            }
        }

        // Pattern injection and the d2a implications hanging off them.
        for (p, pattern) in patterns.iter().enumerate() {
            if rng.gen_bool(config.pattern_prob) {
                data.extend_from_slice(pattern);
                for (r, rule) in planted[..d2a_anns.len()].iter().enumerate() {
                    if r % patterns.len() == p && rng.gen_bool(rule.confidence) {
                        anns.push(rule.rhs);
                    }
                }
            }
        }

        // a2a implications chain off the annotations present so far.
        for rule in &planted[d2a_anns.len()..] {
            if anns.contains(&rule.lhs[0]) && rng.gen_bool(rule.confidence) {
                anns.push(rule.rhs);
            }
        }

        // Uniform annotation noise.
        for &noise in &noise_anns {
            if rng.gen_bool(config.noise_prob) {
                anns.push(noise);
            }
        }

        rel.insert(Tuple::new(data, anns));
    }

    for rule in &mut planted {
        rule.lhs.sort_unstable();
    }

    SyntheticDataset {
        relation: rel,
        planted,
    }
}

/// Build a random Case-3 annotation batch: `size` additions of existing
/// annotations to tuples that do not yet carry them.
///
/// Returns fewer than `size` updates only if the relation is saturated.
pub fn random_annotation_batch(
    rel: &AnnotatedRelation,
    rng: &mut StdRng,
    size: usize,
) -> Vec<AnnotationUpdate> {
    let anns: Vec<Item> = rel.index().annotations().collect();
    let mut out = Vec::with_capacity(size);
    if anns.is_empty() || rel.is_empty() {
        return out;
    }
    let slots = rel.slot_count() as u32;
    let mut attempts = 0usize;
    while out.len() < size && attempts < size * 50 {
        attempts += 1;
        let tid = TupleId(rng.gen_range(0..slots));
        let ann = anns[rng.gen_range(0..anns.len())];
        let fresh = rel.tuple(tid).is_some_and(|t| !t.contains(ann));
        if fresh
            && !out
                .iter()
                .any(|u: &AnnotationUpdate| u.tuple == tid && u.annotation == ann)
        {
            out.push(AnnotationUpdate {
                tuple: tid,
                annotation: ann,
            });
        }
    }
    out
}

/// Build a batch of random annotated tuples (Case 1) shaped like `rel`'s
/// existing tuples.
pub fn random_annotated_tuples(
    rel: &mut AnnotatedRelation,
    rng: &mut StdRng,
    count: usize,
    width: usize,
) -> Vec<Tuple> {
    let data: Vec<Item> = rel.vocab().items(crate::item::ItemKind::Data).collect();
    let anns: Vec<Item> = rel
        .vocab()
        .items(crate::item::ItemKind::Annotation)
        .collect();
    (0..count)
        .map(|_| {
            let d: Vec<Item> = (0..width)
                .map(|_| data[rng.gen_range(0..data.len())])
                .collect();
            let ann_count = rng.gen_range(1..=2);
            let a: Vec<Item> = (0..ann_count)
                .map(|_| anns[rng.gen_range(0..anns.len())])
                .collect();
            Tuple::new(d, a)
        })
        .collect()
}

/// Build a batch of random un-annotated tuples (Case 2).
pub fn random_unannotated_tuples(
    rel: &mut AnnotatedRelation,
    rng: &mut StdRng,
    count: usize,
    width: usize,
) -> Vec<Tuple> {
    let data: Vec<Item> = rel.vocab().items(crate::item::ItemKind::Data).collect();
    (0..count)
        .map(|_| {
            let d = (0..width).map(|_| data[rng.gen_range(0..data.len())]);
            Tuple::new(d, [])
        })
        .collect()
}

/// Hide a random fraction of annotation occurrences, returning the modified
/// relation and the hidden ground truth — the §5 exploitation benchmark's
/// input (predict the hidden annotations, score against truth).
pub fn hide_annotations(
    rel: &AnnotatedRelation,
    rng: &mut StdRng,
    fraction: f64,
) -> (AnnotatedRelation, Vec<AnnotationUpdate>) {
    assert!((0.0..=1.0).contains(&fraction));
    let mut out = rel.clone();
    let mut hidden = Vec::new();
    let occurrences: Vec<(TupleId, Item)> = rel
        .iter()
        .flat_map(|(tid, t)| t.annotations().iter().map(move |&a| (tid, a)))
        .collect();
    for (tid, ann) in occurrences {
        if rng.gen_bool(fraction) {
            out.remove_annotation(tid, ann);
            hidden.push(AnnotationUpdate {
                tuple: tid,
                annotation: ann,
            });
        }
    }
    (out, hidden)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::tiny(7);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.relation.len(), b.relation.len());
        let ta = crate::textio::dataset_to_string(&a.relation);
        let tb = crate::textio::dataset_to_string(&b.relation);
        assert_eq!(ta, tb);
        let c = generate(&GeneratorConfig::tiny(8));
        assert_ne!(ta, crate::textio::dataset_to_string(&c.relation));
    }

    #[test]
    fn planted_rules_have_high_empirical_confidence() {
        let ds = generate(&GeneratorConfig::tiny(42));
        for rule in &ds.planted {
            let mut lhs_count = 0usize;
            let mut both = 0usize;
            for (_, t) in ds.relation.iter() {
                if t.contains_all(&rule.lhs) {
                    lhs_count += 1;
                    if t.contains(rule.rhs) {
                        both += 1;
                    }
                }
            }
            assert!(lhs_count > 0, "planted LHS never occurs");
            let conf = both as f64 / lhs_count as f64;
            assert!(
                conf > rule.confidence - 0.15,
                "planted rule confidence {conf} too far below {}",
                rule.confidence
            );
        }
    }

    #[test]
    fn paper_scale_config_matches_reported_size() {
        let cfg = GeneratorConfig::paper_scale(1);
        assert_eq!(cfg.tuples, 8000);
    }

    #[test]
    fn annotation_batches_only_touch_fresh_pairs() {
        let ds = generate(&GeneratorConfig::tiny(3));
        let mut rng = StdRng::seed_from_u64(99);
        let batch = random_annotation_batch(&ds.relation, &mut rng, 50);
        assert!(!batch.is_empty());
        for u in &batch {
            let t = ds.relation.tuple(u.tuple).unwrap();
            assert!(
                !t.contains(u.annotation),
                "batch re-adds existing annotation"
            );
        }
        // No duplicate (tuple, annotation) pairs inside the batch.
        let mut seen = std::collections::BTreeSet::new();
        for u in &batch {
            assert!(seen.insert((u.tuple, u.annotation)));
        }
    }

    #[test]
    fn tuple_batches_have_requested_shape() {
        let ds = generate(&GeneratorConfig::tiny(5));
        let mut rel = ds.relation;
        let mut rng = StdRng::seed_from_u64(1);
        let annotated = random_annotated_tuples(&mut rel, &mut rng, 10, 4);
        assert_eq!(annotated.len(), 10);
        assert!(annotated.iter().all(|t| !t.is_unannotated()));
        let plain = random_unannotated_tuples(&mut rel, &mut rng, 10, 4);
        assert!(plain.iter().all(Tuple::is_unannotated));
    }

    #[test]
    fn hide_annotations_returns_exact_complement() {
        let ds = generate(&GeneratorConfig::tiny(11));
        let mut rng = StdRng::seed_from_u64(2);
        let total: usize = ds.relation.iter().map(|(_, t)| t.annotations().len()).sum();
        let (hidden_rel, hidden) = hide_annotations(&ds.relation, &mut rng, 0.3);
        let remaining: usize = hidden_rel.iter().map(|(_, t)| t.annotations().len()).sum();
        assert_eq!(remaining + hidden.len(), total);
        for u in &hidden {
            assert!(!hidden_rel.tuple(u.tuple).unwrap().contains(u.annotation));
            assert!(ds.relation.tuple(u.tuple).unwrap().contains(u.annotation));
        }
        hidden_rel.check_consistency().unwrap();
    }
}
