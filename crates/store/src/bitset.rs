//! A growable fixed-block bitset for tuple-id postings.
//!
//! The annotation inverted index (paper §4.3: "the system indexes the
//! annotations such that given a query annotation, we can efficiently find
//! all data tuples having this annotation") stores one of these per
//! annotation. Tuple ids are dense, so an uncompressed `u64`-block bitmap
//! beats tree sets by a wide margin for both membership tests and
//! intersections; the `index` bench quantifies the win over full scans.

/// A dynamically-growing bitset over `u32` indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    /// Number of set bits; maintained incrementally so `len` is O(1).
    ones: usize,
}

impl BitSet {
    /// An empty bitset.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// An empty bitset with capacity for indices `< capacity` without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            blocks: Vec::with_capacity(capacity.div_ceil(64)),
            ones: 0,
        }
    }

    /// Set bit `i`. Returns `true` if the bit was newly set.
    pub fn insert(&mut self, i: u32) -> bool {
        let (block, mask) = (i as usize / 64, 1u64 << (i % 64));
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let newly = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        self.ones += usize::from(newly);
        newly
    }

    /// Clear bit `i`. Returns `true` if the bit was previously set.
    pub fn remove(&mut self, i: u32) -> bool {
        let (block, mask) = (i as usize / 64, 1u64 << (i % 64));
        match self.blocks.get_mut(block) {
            Some(b) if *b & mask != 0 => {
                *b &= !mask;
                self.ones -= 1;
                true
            }
            _ => false,
        }
    }

    /// `true` iff bit `i` is set.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.blocks
            .get(i as usize / 64)
            .is_some_and(|b| b & (1 << (i % 64)) != 0)
    }

    /// Number of set bits (O(1)).
    pub fn len(&self) -> usize {
        self.ones
    }

    /// `true` iff no bits are set.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Iterate over set bits in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// `self ∩ other` cardinality, without materialising the intersection.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        let mut ones = 0usize;
        for (a, b) in self
            .blocks
            .iter_mut()
            .zip(other.blocks.iter().chain(std::iter::repeat(&0)))
        {
            *a |= b;
            ones += a.count_ones() as usize;
        }
        self.ones = ones;
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        let mut ones = 0usize;
        for (i, a) in self.blocks.iter_mut().enumerate() {
            *a &= other.blocks.get(i).copied().unwrap_or(0);
            ones += a.count_ones() as usize;
        }
        self.ones = ones;
    }

    /// A new bitset holding `self ∩ other`.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let blocks: Vec<u64> = self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| a & b)
            .collect();
        let ones = blocks.iter().map(|b| b.count_ones() as usize).sum();
        BitSet { blocks, ones }
    }

    /// `true` iff every bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .enumerate()
            .all(|(i, a)| a & !other.blocks.get(i).copied().unwrap_or(0) == 0)
    }
}

impl FromIterator<u32> for BitSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

/// Iterator over set bits; see [`BitSet::iter`].
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.block_idx as u32 * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn crosses_block_boundaries() {
        let mut s = BitSet::new();
        for i in [0u32, 63, 64, 127, 128, 1000] {
            s.insert(i);
        }
        assert_eq!(s.len(), 6);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 1000]
        );
    }

    #[test]
    fn intersection_count_matches_materialised() {
        let a: BitSet = [1u32, 2, 3, 64, 65].into_iter().collect();
        let b: BitSet = [2u32, 3, 4, 65, 128].into_iter().collect();
        assert_eq!(a.intersection_count(&b), 3);
        assert_eq!(
            a.intersection(&b).iter().collect::<Vec<_>>(),
            vec![2, 3, 65]
        );
    }

    #[test]
    fn union_and_intersect_in_place() {
        let mut a: BitSet = [1u32, 2].into_iter().collect();
        let b: BitSet = [2u32, 300].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 300]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 300]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn union_with_shorter_other_keeps_tail() {
        let mut a: BitSet = [300u32].into_iter().collect();
        let b: BitSet = [1u32].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 300]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn subset_checks() {
        let a: BitSet = [1u32, 2].into_iter().collect();
        let b: BitSet = [1u32, 2, 3].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(BitSet::new().is_subset(&a));
        // Longer block vector with only low bits set is still a subset.
        let mut c = BitSet::new();
        c.insert(200);
        c.remove(200);
        c.insert(1);
        assert!(c.is_subset(&a));
    }

    #[test]
    fn len_is_maintained_incrementally() {
        let mut s = BitSet::new();
        for i in 0..100 {
            s.insert(i);
        }
        for i in (0..100).step_by(2) {
            s.remove(i);
        }
        assert_eq!(s.len(), 50);
        assert_eq!(s.iter().count(), 50);
    }
}
