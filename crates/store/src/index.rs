//! The annotation inverted index.
//!
//! Paper §4.3: discovering new rules after an annotation batch "requires
//! access to all data tuples that have the annotation … to efficiently
//! support the latter case, the system indexes the annotations such that
//! given a query annotation, we can efficiently find all data tuples having
//! this annotation."
//!
//! The index maps each annotation-like [`Item`] to the [`BitSet`] of tuple
//! ids carrying it, and is maintained incrementally by
//! [`AnnotatedRelation`](crate::relation::AnnotatedRelation) on every
//! mutation.

use crate::bitset::BitSet;
use crate::fxhash::FxHashMap;
use crate::item::Item;
use crate::tuple::TupleId;

/// Inverted index: annotation → posting bitset of tuple ids.
#[derive(Debug, Clone, Default)]
pub struct AnnotationIndex {
    postings: FxHashMap<Item, BitSet>,
}

impl AnnotationIndex {
    /// An empty index.
    pub fn new() -> Self {
        AnnotationIndex::default()
    }

    /// Record that tuple `tid` carries `ann`.
    pub fn insert(&mut self, tid: TupleId, ann: Item) {
        debug_assert!(ann.is_annotation_like());
        self.postings.entry(ann).or_default().insert(tid.0);
    }

    /// Record that tuple `tid` no longer carries `ann`.
    pub fn remove(&mut self, tid: TupleId, ann: Item) {
        if let Some(bits) = self.postings.get_mut(&ann) {
            bits.remove(tid.0);
            if bits.is_empty() {
                self.postings.remove(&ann);
            }
        }
    }

    /// The posting bitset for `ann`, if any tuple carries it.
    pub fn postings(&self, ann: Item) -> Option<&BitSet> {
        self.postings.get(&ann)
    }

    /// Number of live tuples carrying `ann` — the paper's per-annotation
    /// frequency table (Fig. 13 Step 1 checks "the annotation must be a
    /// frequent annotation by itself" against this).
    pub fn frequency(&self, ann: Item) -> usize {
        self.postings.get(&ann).map_or(0, BitSet::len)
    }

    /// Iterate the tuple ids carrying `ann` in increasing order.
    pub fn tuples_with(&self, ann: Item) -> impl Iterator<Item = TupleId> + '_ {
        self.postings
            .get(&ann)
            .into_iter()
            .flat_map(|bits| bits.iter().map(TupleId))
    }

    /// Number of tuples carrying **all** of the (sorted or not) annotations,
    /// via posting intersection.
    pub fn co_occurrence(&self, anns: &[Item]) -> usize {
        let Some((first, rest)) = anns.split_first() else {
            return 0;
        };
        let Some(first_bits) = self.postings.get(first) else {
            return 0;
        };
        match rest.len() {
            0 => first_bits.len(),
            1 => match self.postings.get(&rest[0]) {
                Some(b) => first_bits.intersection_count(b),
                None => 0,
            },
            _ => {
                let mut acc = first_bits.clone();
                for ann in rest {
                    match self.postings.get(ann) {
                        Some(b) => acc.intersect_with(b),
                        None => return 0,
                    }
                    if acc.is_empty() {
                        return 0;
                    }
                }
                acc.len()
            }
        }
    }

    /// All indexed annotations (arbitrary order).
    pub fn annotations(&self) -> impl Iterator<Item = Item> + '_ {
        self.postings.keys().copied()
    }

    /// Total number of distinct indexed annotations.
    pub fn distinct_annotations(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(i: u32) -> Item {
        Item::annotation(i)
    }

    #[test]
    fn insert_and_query() {
        let mut idx = AnnotationIndex::new();
        idx.insert(TupleId(0), ann(1));
        idx.insert(TupleId(5), ann(1));
        idx.insert(TupleId(5), ann(2));
        assert_eq!(idx.frequency(ann(1)), 2);
        assert_eq!(idx.frequency(ann(2)), 1);
        assert_eq!(idx.frequency(ann(3)), 0);
        assert_eq!(
            idx.tuples_with(ann(1)).collect::<Vec<_>>(),
            vec![TupleId(0), TupleId(5)]
        );
    }

    #[test]
    fn remove_cleans_up_empty_postings() {
        let mut idx = AnnotationIndex::new();
        idx.insert(TupleId(0), ann(1));
        idx.remove(TupleId(0), ann(1));
        assert_eq!(idx.frequency(ann(1)), 0);
        assert_eq!(idx.distinct_annotations(), 0);
        // Removing again is a no-op.
        idx.remove(TupleId(0), ann(1));
    }

    #[test]
    fn co_occurrence_intersects_postings() {
        let mut idx = AnnotationIndex::new();
        for tid in [0u32, 1, 2, 3] {
            idx.insert(TupleId(tid), ann(1));
        }
        for tid in [1u32, 3, 4] {
            idx.insert(TupleId(tid), ann(2));
        }
        for tid in [3u32, 4] {
            idx.insert(TupleId(tid), ann(3));
        }
        assert_eq!(idx.co_occurrence(&[ann(1)]), 4);
        assert_eq!(idx.co_occurrence(&[ann(1), ann(2)]), 2);
        assert_eq!(idx.co_occurrence(&[ann(1), ann(2), ann(3)]), 1);
        assert_eq!(idx.co_occurrence(&[ann(1), ann(9)]), 0);
        assert_eq!(idx.co_occurrence(&[]), 0);
    }

    #[test]
    fn labels_are_indexable() {
        let mut idx = AnnotationIndex::new();
        idx.insert(TupleId(7), Item::label(0));
        assert_eq!(idx.frequency(Item::label(0)), 1);
    }
}
