//! The annotation inverted index.
//!
//! Paper §4.3: discovering new rules after an annotation batch "requires
//! access to all data tuples that have the annotation … to efficiently
//! support the latter case, the system indexes the annotations such that
//! given a query annotation, we can efficiently find all data tuples having
//! this annotation."
//!
//! The index maps each annotation-like [`Item`] to the [`BitSet`] of tuple
//! ids carrying it, and is maintained incrementally by
//! [`AnnotatedRelation`](crate::relation::AnnotatedRelation) on every
//! mutation.
//!
//! Postings ride behind `Arc`s: cloning the index (part of the relation's
//! snapshot-by-clone contract) is O(#annotations) pointer copies, and a
//! mutation copy-on-writes only the touched annotation's bitset — a flat
//! word-array memcpy, never a per-tuple deep clone.

use std::sync::Arc;

use crate::bitset::BitSet;
use crate::fxhash::FxHashMap;
use crate::item::Item;
use crate::tuple::TupleId;

/// Inverted index: annotation → posting bitset of tuple ids.
#[derive(Debug, Clone, Default)]
pub struct AnnotationIndex {
    postings: FxHashMap<Item, Arc<BitSet>>,
}

impl AnnotationIndex {
    /// An empty index.
    pub fn new() -> Self {
        AnnotationIndex::default()
    }

    /// Record that tuple `tid` carries `ann`.
    pub fn insert(&mut self, tid: TupleId, ann: Item) {
        debug_assert!(ann.is_annotation_like());
        Arc::make_mut(self.postings.entry(ann).or_default()).insert(tid.0);
    }

    /// Record that tuple `tid` no longer carries `ann`.
    pub fn remove(&mut self, tid: TupleId, ann: Item) {
        if let Some(bits) = self.postings.get_mut(&ann) {
            // Shared-read precheck: removing an absent id must not
            // copy-on-write a posting a snapshot still shares.
            if !bits.contains(tid.0) {
                return;
            }
            Arc::make_mut(bits).remove(tid.0);
            if bits.is_empty() {
                self.postings.remove(&ann);
            }
        }
    }

    /// The posting bitset for `ann`, if any tuple carries it.
    pub fn postings(&self, ann: Item) -> Option<&BitSet> {
        self.postings.get(&ann).map(Arc::as_ref)
    }

    /// How many postings `self` and `other` share physically (same `Arc`)
    /// — the index-side structural-sharing meter, mirroring
    /// [`SegmentStore::shared_segments_with`].
    ///
    /// [`SegmentStore::shared_segments_with`]: crate::segment::SegmentStore::shared_segments_with
    pub fn shared_postings_with(&self, other: &AnnotationIndex) -> usize {
        self.postings
            .iter()
            .filter(|(ann, bits)| {
                other
                    .postings
                    .get(ann)
                    .is_some_and(|b| Arc::ptr_eq(bits, b))
            })
            .count()
    }

    /// Number of live tuples carrying `ann` — the paper's per-annotation
    /// frequency table (Fig. 13 Step 1 checks "the annotation must be a
    /// frequent annotation by itself" against this).
    pub fn frequency(&self, ann: Item) -> usize {
        self.postings.get(&ann).map_or(0, |b| b.len())
    }

    /// Iterate the tuple ids carrying `ann` in increasing order.
    pub fn tuples_with(&self, ann: Item) -> impl Iterator<Item = TupleId> + '_ {
        self.postings
            .get(&ann)
            .into_iter()
            .flat_map(|bits| bits.iter().map(TupleId))
    }

    /// Number of tuples carrying **all** of the (sorted or not) annotations,
    /// via posting intersection.
    pub fn co_occurrence(&self, anns: &[Item]) -> usize {
        let Some((first, rest)) = anns.split_first() else {
            return 0;
        };
        let Some(first_bits) = self.postings.get(first) else {
            return 0;
        };
        match rest.len() {
            0 => first_bits.len(),
            1 => match self.postings.get(&rest[0]) {
                Some(b) => first_bits.intersection_count(b),
                None => 0,
            },
            _ => {
                let mut acc = BitSet::clone(first_bits);
                for ann in rest {
                    match self.postings.get(ann) {
                        Some(b) => acc.intersect_with(b),
                        None => return 0,
                    }
                    if acc.is_empty() {
                        return 0;
                    }
                }
                acc.len()
            }
        }
    }

    /// All indexed annotations (arbitrary order).
    pub fn annotations(&self) -> impl Iterator<Item = Item> + '_ {
        self.postings.keys().copied()
    }

    /// Total number of distinct indexed annotations.
    pub fn distinct_annotations(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(i: u32) -> Item {
        Item::annotation(i)
    }

    #[test]
    fn insert_and_query() {
        let mut idx = AnnotationIndex::new();
        idx.insert(TupleId(0), ann(1));
        idx.insert(TupleId(5), ann(1));
        idx.insert(TupleId(5), ann(2));
        assert_eq!(idx.frequency(ann(1)), 2);
        assert_eq!(idx.frequency(ann(2)), 1);
        assert_eq!(idx.frequency(ann(3)), 0);
        assert_eq!(
            idx.tuples_with(ann(1)).collect::<Vec<_>>(),
            vec![TupleId(0), TupleId(5)]
        );
    }

    #[test]
    fn remove_cleans_up_empty_postings() {
        let mut idx = AnnotationIndex::new();
        idx.insert(TupleId(0), ann(1));
        idx.remove(TupleId(0), ann(1));
        assert_eq!(idx.frequency(ann(1)), 0);
        assert_eq!(idx.distinct_annotations(), 0);
        // Removing again is a no-op.
        idx.remove(TupleId(0), ann(1));
    }

    #[test]
    fn co_occurrence_intersects_postings() {
        let mut idx = AnnotationIndex::new();
        for tid in [0u32, 1, 2, 3] {
            idx.insert(TupleId(tid), ann(1));
        }
        for tid in [1u32, 3, 4] {
            idx.insert(TupleId(tid), ann(2));
        }
        for tid in [3u32, 4] {
            idx.insert(TupleId(tid), ann(3));
        }
        assert_eq!(idx.co_occurrence(&[ann(1)]), 4);
        assert_eq!(idx.co_occurrence(&[ann(1), ann(2)]), 2);
        assert_eq!(idx.co_occurrence(&[ann(1), ann(2), ann(3)]), 1);
        assert_eq!(idx.co_occurrence(&[ann(1), ann(9)]), 0);
        assert_eq!(idx.co_occurrence(&[]), 0);
    }

    #[test]
    fn clone_shares_postings_until_written() {
        let mut idx = AnnotationIndex::new();
        idx.insert(TupleId(0), ann(1));
        idx.insert(TupleId(1), ann(2));
        let snap = idx.clone();
        assert_eq!(idx.shared_postings_with(&snap), 2);

        // No-op removals must not unshare.
        idx.remove(TupleId(9), ann(1));
        idx.remove(TupleId(0), ann(7));
        assert_eq!(idx.shared_postings_with(&snap), 2);

        // A real mutation unshares exactly the touched posting, and the
        // snapshot keeps its view.
        idx.insert(TupleId(5), ann(1));
        assert_eq!(idx.shared_postings_with(&snap), 1);
        assert_eq!(idx.frequency(ann(1)), 2);
        assert_eq!(snap.frequency(ann(1)), 1);
    }

    #[test]
    fn labels_are_indexable() {
        let mut idx = AnnotationIndex::new();
        idx.insert(TupleId(7), Item::label(0));
        assert_eq!(idx.frequency(Item::label(0)), 1);
    }
}
