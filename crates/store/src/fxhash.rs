//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The default `std` hasher (SipHash 1-3) is DoS-resistant but slow for the
//! 4-byte keys that dominate this workspace (interned items, tuple ids).
//! This is the well-known `FxHasher` multiply-rotate scheme used by rustc,
//! reimplemented here (~40 lines) to keep the dependency set to the approved
//! offline list. Inputs are never attacker-controlled: they are internal
//! dense ids.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher; specialised for small integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_values() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn hasher_is_deterministic() {
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_stream_and_tail_handling() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());

        let mut c = FxHasher::default();
        c.write(&[9, 8, 7]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn distinct_small_keys_spread() {
        // Sanity: no catastrophic collisions on a dense range.
        let mut seen = FxHashSet::default();
        for n in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(n);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
