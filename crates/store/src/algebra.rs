//! Provenance-propagating relational algebra.
//!
//! A [`KRelation`] is a relation whose tuples are annotated with values from
//! an arbitrary semiring `K`; the positive relational-algebra operators
//! combine annotations the Green–Karvounarakis–Tannen way:
//!
//! * [`KRelation::select`] keeps annotations unchanged;
//! * [`KRelation::project`] merges duplicate result tuples with `+`;
//! * [`KRelation::union`] merges with `+`;
//! * [`KRelation::join`] combines matching pairs with `·`.
//!
//! The bridge [`KRelation::from_annotated`] turns an
//! [`AnnotatedRelation`](crate::relation::AnnotatedRelation) into a
//! `KRelation` by valuating each tuple's annotation lineage, which is what
//! lets the mining layer's databases participate in principled provenance
//! queries (see the `provenance_tracking` example).

use anno_semiring::{eval_lineage, Monus, Semiring, Var};

use crate::fxhash::FxHashMap;
use crate::item::Item;
use crate::relation::AnnotatedRelation;

/// A `K`-annotated relation: fixed arity rows of data items, each carrying
/// an annotation from the semiring `K`.
#[derive(Debug, Clone, PartialEq)]
pub struct KRelation<K: Semiring> {
    arity: usize,
    rows: Vec<(Box<[Item]>, K)>,
}

impl<K: Semiring> KRelation<K> {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        KRelation {
            arity,
            rows: Vec::new(),
        }
    }

    /// The number of attributes per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of stored rows (after normalisation: distinct tuples).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add a row. Panics if the arity differs. Zero-annotated rows are
    /// dropped (they are absent by definition).
    pub fn push(&mut self, row: Vec<Item>, annotation: K) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        if !annotation.is_zero() {
            self.rows.push((row.into_boxed_slice(), annotation));
        }
    }

    /// Iterate `(row, annotation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Item], &K)> + '_ {
        self.rows.iter().map(|(r, k)| (&**r, k))
    }

    /// The annotation of an exact row, or `K::zero()` if absent.
    pub fn annotation_of(&self, row: &[Item]) -> K {
        self.rows
            .iter()
            .filter(|(r, _)| &**r == row)
            .fold(K::zero(), |acc, (_, k)| acc.plus(k))
    }

    /// Merge duplicate rows with `+` and drop zero-annotated rows; row order
    /// is normalised to first-occurrence order.
    pub fn normalize(&mut self) {
        let mut order: Vec<Box<[Item]>> = Vec::with_capacity(self.rows.len());
        let mut merged: FxHashMap<Box<[Item]>, K> = FxHashMap::default();
        for (row, k) in self.rows.drain(..) {
            match merged.get_mut(&row) {
                Some(acc) => *acc = acc.plus(&k),
                None => {
                    merged.insert(row.clone(), k);
                    order.push(row);
                }
            }
        }
        self.rows = order
            .into_iter()
            .filter_map(|row| {
                let k = merged.remove(&row).expect("row recorded");
                (!k.is_zero()).then_some((row, k))
            })
            .collect();
    }

    /// Selection σ: keep rows satisfying `pred`; annotations unchanged.
    pub fn select(&self, pred: impl Fn(&[Item]) -> bool) -> KRelation<K> {
        KRelation {
            arity: self.arity,
            rows: self.rows.iter().filter(|(r, _)| pred(r)).cloned().collect(),
        }
    }

    /// Projection π: keep the attributes at `cols` (in the given order);
    /// merge collapsing tuples with `+`.
    pub fn project(&self, cols: &[usize]) -> KRelation<K> {
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "projection out of range"
        );
        let mut out = KRelation::new(cols.len());
        for (row, k) in &self.rows {
            let proj: Vec<Item> = cols.iter().map(|&c| row[c]).collect();
            out.push(proj, k.clone());
        }
        out.normalize();
        out
    }

    /// Union ∪ (same arity): annotations of shared tuples merge with `+`.
    pub fn union(&self, other: &KRelation<K>) -> KRelation<K> {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        let mut out = self.clone();
        out.rows.extend(other.rows.iter().cloned());
        out.normalize();
        out
    }

    /// Natural join on explicit column pairs: rows agreeing on every
    /// `(left_col, right_col)` pair combine with `·`; the result carries all
    /// left attributes followed by the right attributes not used as join
    /// keys.
    pub fn join(&self, other: &KRelation<K>, on: &[(usize, usize)]) -> KRelation<K> {
        assert!(on.iter().all(|&(l, r)| l < self.arity && r < other.arity));
        let right_keep: Vec<usize> = (0..other.arity)
            .filter(|c| !on.iter().any(|&(_, r)| r == *c))
            .collect();
        let mut out = KRelation::new(self.arity + right_keep.len());

        // Hash the smaller side on the join key.
        let mut table: FxHashMap<Vec<Item>, Vec<usize>> = FxHashMap::default();
        for (i, (row, _)) in other.rows.iter().enumerate() {
            let key: Vec<Item> = on.iter().map(|&(_, r)| row[r]).collect();
            table.entry(key).or_default().push(i);
        }
        for (lrow, lk) in &self.rows {
            let key: Vec<Item> = on.iter().map(|&(l, _)| lrow[l]).collect();
            let Some(matches) = table.get(&key) else {
                continue;
            };
            for &ri in matches {
                let (rrow, rk) = &other.rows[ri];
                let mut row: Vec<Item> = lrow.to_vec();
                row.extend(right_keep.iter().map(|&c| rrow[c]));
                out.push(row, lk.times(rk));
            }
        }
        out.normalize();
        out
    }

    /// Relational difference over an m-semiring (a semiring with monus):
    /// each row of `self` keeps `self(t) ∸ other(t)`, and rows whose
    /// difference is zero disappear. Under `Bool2` this is set difference;
    /// under `Natural` it is bag difference (`EXCEPT ALL`).
    pub fn difference(&self, other: &KRelation<K>) -> KRelation<K>
    where
        K: Monus,
    {
        assert_eq!(self.arity, other.arity, "difference arity mismatch");
        let mut out = KRelation::new(self.arity);
        for (row, k) in &self.rows {
            let theirs = other.annotation_of(row);
            out.push(row.to_vec(), k.monus(&theirs));
        }
        out.normalize();
        out
    }

    /// Apply a semiring homomorphism to every annotation.
    ///
    /// Because homomorphisms commute with `+` and `·`, mapping annotations
    /// commutes with every operator above — the algebraic fact behind
    /// "generalize then query ≡ query then generalize".
    pub fn map_annotations<L: Semiring>(&self, h: &impl Fn(&K) -> L) -> KRelation<L> {
        let mut out = KRelation::new(self.arity);
        for (row, k) in &self.rows {
            out.push(row.to_vec(), h(k));
        }
        out.normalize();
        out
    }
}

impl<K: Semiring> KRelation<K> {
    /// Annotate the data part of every live tuple of `rel` by valuating its
    /// annotation lineage into `K`.
    ///
    /// Tuples have varying widths in an annotated relation; `arity` selects
    /// how many leading data values to keep (shorter tuples are skipped), so
    /// the result is a proper fixed-arity relation.
    pub fn from_annotated(
        rel: &AnnotatedRelation,
        arity: usize,
        valuation: &impl Fn(Var) -> K,
    ) -> KRelation<K> {
        let mut out = KRelation::new(arity);
        for (_, tuple) in rel.iter() {
            let data = tuple.data();
            if data.len() < arity {
                continue;
            }
            let k = eval_lineage(&tuple.lineage(), valuation);
            out.push(data[..arity].to_vec(), k);
        }
        out.normalize();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_semiring::{Bool2, Natural};

    fn d(i: u32) -> Item {
        Item::data(i)
    }
    fn d_item(i: u32) -> Item {
        Item::data(i)
    }

    fn nat_rel(rows: &[(&[u32], u64)]) -> KRelation<Natural> {
        let arity = rows.first().map_or(0, |(r, _)| r.len());
        let mut rel = KRelation::new(arity);
        for (row, n) in rows {
            rel.push(row.iter().copied().map(d).collect(), Natural(*n));
        }
        rel
    }

    #[test]
    fn push_drops_zero_annotations() {
        let mut rel: KRelation<Natural> = KRelation::new(1);
        rel.push(vec![d(1)], Natural(0));
        assert!(rel.is_empty());
    }

    #[test]
    fn project_merges_with_plus() {
        let rel = nat_rel(&[(&[1, 10], 2), (&[1, 20], 3), (&[2, 10], 5)]);
        let p = rel.project(&[0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.annotation_of(&[d(1)]), Natural(5));
        assert_eq!(p.annotation_of(&[d(2)]), Natural(5));
    }

    #[test]
    fn select_keeps_annotations() {
        let rel = nat_rel(&[(&[1], 2), (&[2], 3)]);
        let s = rel.select(|r| r[0] == d(2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.annotation_of(&[d(2)]), Natural(3));
    }

    #[test]
    fn union_adds_multiplicities() {
        let a = nat_rel(&[(&[1], 2)]);
        let b = nat_rel(&[(&[1], 3), (&[2], 1)]);
        let u = a.union(&b);
        assert_eq!(u.annotation_of(&[d(1)]), Natural(5));
        assert_eq!(u.annotation_of(&[d(2)]), Natural(1));
    }

    #[test]
    fn join_multiplies_multiplicities() {
        // R(a, b) ⋈ S(b, c) on b.
        let r = nat_rel(&[(&[1, 10], 2), (&[2, 20], 1)]);
        let s = nat_rel(&[(&[10, 7], 3), (&[10, 8], 1)]);
        let j = r.join(&s, &[(1, 0)]);
        assert_eq!(j.arity(), 3);
        assert_eq!(j.annotation_of(&[d(1), d(10), d(7)]), Natural(6));
        assert_eq!(j.annotation_of(&[d(1), d(10), d(8)]), Natural(2));
        assert_eq!(j.annotation_of(&[d(2), d(20), d(7)]), Natural(0));
    }

    #[test]
    fn bag_query_matches_hand_count() {
        // π_a(R ⋈ S) under bag semantics.
        let r = nat_rel(&[(&[1, 10], 1), (&[1, 20], 1)]);
        let s = nat_rel(&[(&[10, 5], 2), (&[20, 5], 1)]);
        let q = r.join(&s, &[(1, 0)]).project(&[0]);
        assert_eq!(q.annotation_of(&[d(1)]), Natural(3)); // 1·2 + 1·1
    }

    #[test]
    fn difference_is_bag_except_all_under_naturals() {
        let r = nat_rel(&[(&[1], 5), (&[2], 2)]);
        let s = nat_rel(&[(&[1], 3), (&[2], 4), (&[3], 1)]);
        let d = r.difference(&s);
        assert_eq!(d.annotation_of(&[d_item(1)]), Natural(2));
        assert_eq!(d.annotation_of(&[d_item(2)]), Natural(0));
        assert_eq!(d.len(), 1, "rows with zero difference disappear");
    }

    #[test]
    fn difference_is_set_minus_under_booleans() {
        let to_bool = |n: &Natural| Bool2(n.0 > 0);
        let r = nat_rel(&[(&[1], 1), (&[2], 1)]).map_annotations(&to_bool);
        let s = nat_rel(&[(&[2], 1)]).map_annotations(&to_bool);
        let d = r.difference(&s);
        assert_eq!(d.annotation_of(&[d_item(1)]), Bool2(true));
        assert_eq!(d.annotation_of(&[d_item(2)]), Bool2(false));
    }

    #[test]
    fn map_annotations_commutes_with_project() {
        let rel = nat_rel(&[(&[1, 10], 2), (&[1, 20], 3)]);
        let to_bool = |n: &Natural| Bool2(n.0 > 0);
        let lhs = rel.project(&[0]).map_annotations(&to_bool);
        let rhs = rel.map_annotations(&to_bool).project(&[0]);
        assert_eq!(lhs.annotation_of(&[d(1)]), rhs.annotation_of(&[d(1)]));
    }

    #[test]
    fn from_annotated_valuates_lineage() {
        use crate::tuple::Tuple;
        let mut rel = AnnotatedRelation::new("R");
        let x = rel.vocab_mut().data("1");
        let y = rel.vocab_mut().data("2");
        let a = rel.vocab_mut().annotation("A");
        let b = rel.vocab_mut().annotation("B");
        rel.insert(Tuple::new([x], [a]));
        rel.insert(Tuple::new([x], [a, b]));
        rel.insert(Tuple::new([y], []));

        // Count annotation occurrences as multiplicities: each annotation
        // counts 1, so a tuple's weight is 1 (product over its annotations
        // collapses to 1). Use Bool2 for presence instead.
        let k: KRelation<Bool2> = KRelation::from_annotated(&rel, 1, &|_| Bool2(true));
        assert_eq!(k.annotation_of(&[x]), Bool2(true));
        assert_eq!(k.annotation_of(&[y]), Bool2(true));
        assert_eq!(k.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut rel: KRelation<Natural> = KRelation::new(2);
        rel.push(vec![d(1)], Natural(1));
    }
}
