//! Annotated tuples (paper Definition 4.1).
//!
//! A tuple `r = ⟨x1 … xn, a1 … ak⟩` holds `n` data values and a variable
//! number of annotations. Internally both live in a single sorted,
//! deduplicated `Vec<Item>`; the namespace tag in [`Item`] sorts all data
//! values before all annotation-like items, so the data prefix and
//! annotation suffix are recoverable in O(log n) via partition point.

use crate::item::Item;
use anno_semiring::Lineage;

/// Dense identifier of a tuple within one [`AnnotatedRelation`].
///
/// [`AnnotatedRelation`]: crate::relation::AnnotatedRelation
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub u32);

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An annotated tuple: sorted, deduplicated items (data values first,
/// annotation-like items after).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    items: Vec<Item>,
}

impl Tuple {
    /// Build a tuple from arbitrary (unsorted, possibly duplicated) items.
    pub fn from_items(mut items: Vec<Item>) -> Tuple {
        items.sort_unstable();
        items.dedup();
        Tuple { items }
    }

    /// Build a tuple from separate data values and annotations.
    pub fn new<D, A>(data: D, annotations: A) -> Tuple
    where
        D: IntoIterator<Item = Item>,
        A: IntoIterator<Item = Item>,
    {
        let mut items: Vec<Item> = data.into_iter().collect();
        items.extend(annotations);
        debug_assert!(items.iter().all(|i| i.is_data() || i.is_annotation_like()),);
        Tuple::from_items(items)
    }

    /// All items (the mining *transaction*): sorted and deduplicated.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The data-value prefix.
    pub fn data(&self) -> &[Item] {
        &self.items[..self.annotation_boundary()]
    }

    /// The annotation-like suffix (raw annotations and labels).
    pub fn annotations(&self) -> &[Item] {
        &self.items[self.annotation_boundary()..]
    }

    fn annotation_boundary(&self) -> usize {
        self.items.partition_point(|i| i.is_data())
    }

    /// `true` iff the tuple carries no annotations (an *un-annotated*
    /// tuple, paper §4.3 Case 2).
    pub fn is_unannotated(&self) -> bool {
        self.annotations().is_empty()
    }

    /// Membership test (O(log n)).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// `true` iff every item of the sorted slice `pattern` occurs in this
    /// tuple. `pattern` **must** be sorted; itemsets produced by the miner
    /// always are. Runs as a linear merge-walk.
    pub fn contains_all(&self, pattern: &[Item]) -> bool {
        debug_assert!(
            pattern.windows(2).all(|w| w[0] < w[1]),
            "pattern must be sorted"
        );
        let mut mine = self.items.iter();
        'outer: for want in pattern {
            for have in mine.by_ref() {
                match have.cmp(want) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Add an annotation-like item. Returns `false` (and leaves the tuple
    /// unchanged) if it was already present — "a data tuple can have a given
    /// label at most once" (paper §4.1.1).
    pub(crate) fn add_annotation(&mut self, ann: Item) -> bool {
        assert!(
            ann.is_annotation_like(),
            "cannot annotate with a data value"
        );
        match self.items.binary_search(&ann) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, ann);
                true
            }
        }
    }

    /// Remove an annotation-like item. Returns `false` if absent.
    pub(crate) fn remove_annotation(&mut self, ann: Item) -> bool {
        assert!(
            ann.is_annotation_like(),
            "cannot remove a data value as an annotation"
        );
        match self.items.binary_search(&ann) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The tuple's annotation set viewed as provenance lineage: each
    /// annotation is a base-fact variable.
    pub fn lineage(&self) -> Lineage {
        Lineage::from_vars(self.annotations().iter().map(|a| a.as_var()))
    }
}

impl FromIterator<Item> for Tuple {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        Tuple::from_items(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_semiring::Semiring;

    fn t(data: &[u32], anns: &[u32]) -> Tuple {
        Tuple::new(
            data.iter().map(|&d| Item::data(d)),
            anns.iter().map(|&a| Item::annotation(a)),
        )
    }

    #[test]
    fn items_are_sorted_and_deduplicated() {
        let tup = Tuple::from_items(vec![
            Item::annotation(1),
            Item::data(9),
            Item::data(2),
            Item::data(9),
        ]);
        assert_eq!(
            tup.items(),
            &[Item::data(2), Item::data(9), Item::annotation(1)]
        );
    }

    #[test]
    fn data_and_annotation_partition() {
        let tup = t(&[5, 1], &[2, 0]);
        assert_eq!(tup.data(), &[Item::data(1), Item::data(5)]);
        assert_eq!(
            tup.annotations(),
            &[Item::annotation(0), Item::annotation(2)]
        );
        assert!(!tup.is_unannotated());
        assert!(t(&[1], &[]).is_unannotated());
    }

    #[test]
    fn labels_count_as_annotations() {
        let tup = Tuple::new([Item::data(1)], [Item::label(3)]);
        assert_eq!(tup.annotations(), &[Item::label(3)]);
    }

    #[test]
    fn contains_and_contains_all() {
        let tup = t(&[1, 5, 9], &[2]);
        assert!(tup.contains(Item::data(5)));
        assert!(!tup.contains(Item::data(4)));
        assert!(tup.contains_all(&[Item::data(1), Item::data(9)]));
        assert!(tup.contains_all(&[Item::data(5), Item::annotation(2)]));
        assert!(!tup.contains_all(&[Item::data(1), Item::data(2)]));
        assert!(tup.contains_all(&[]));
    }

    #[test]
    fn add_annotation_is_set_semantics() {
        let mut tup = t(&[1], &[]);
        assert!(tup.add_annotation(Item::annotation(7)));
        assert!(!tup.add_annotation(Item::annotation(7)));
        assert_eq!(tup.annotations().len(), 1);
    }

    #[test]
    fn remove_annotation() {
        let mut tup = t(&[1], &[7]);
        assert!(tup.remove_annotation(Item::annotation(7)));
        assert!(!tup.remove_annotation(Item::annotation(7)));
        assert!(tup.is_unannotated());
    }

    #[test]
    #[should_panic(expected = "cannot annotate")]
    fn data_values_cannot_be_added_as_annotations() {
        let mut tup = t(&[1], &[]);
        tup.add_annotation(Item::data(2));
    }

    #[test]
    fn lineage_reflects_annotations() {
        let tup = t(&[1], &[3, 4]);
        let lin = tup.lineage();
        assert!(lin.contains(Item::annotation(3).as_var()));
        assert!(lin.contains(Item::annotation(4).as_var()));
        assert_eq!(t(&[1], &[]).lineage(), Lineage::one());
    }
}
