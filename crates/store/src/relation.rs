//! The annotated relation: tuple storage plus maintained indexes.
//!
//! [`AnnotatedRelation`] is the concrete realisation of paper Definition 4.1
//! and the object every other layer operates on. It owns the
//! [`Vocabulary`], the tuple store, the liveness bitmap (tuple deletion is
//! the paper's future-work item, implemented here), and the
//! [`AnnotationIndex`], and keeps them consistent under the three evolution
//! cases of §4.3:
//!
//! * **Case 1** — [`AnnotatedRelation::extend`] with annotated tuples;
//! * **Case 2** — [`AnnotatedRelation::extend`] with un-annotated tuples;
//! * **Case 3** — [`AnnotatedRelation::apply_annotation_batch`], which
//!   returns the *effective* [`AnnotationDelta`] (duplicates and dead
//!   targets filtered) that incremental maintenance consumes.

use crate::bitset::BitSet;
use crate::index::AnnotationIndex;
use crate::item::{Item, Vocabulary};
use crate::tuple::{Tuple, TupleId};

/// One annotation addition: attach `annotation` to `tuple`.
///
/// This is the in-memory form of a Fig. 14 batch line (`150: Annot_3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotationUpdate {
    /// The tuple to annotate.
    pub tuple: TupleId,
    /// The annotation-like item to attach.
    pub annotation: Item,
}

/// The effective result of applying an annotation batch: only the updates
/// that actually changed the relation (targets alive, annotation not already
/// present), in application order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnnotationDelta {
    /// The updates that took effect.
    pub added: Vec<AnnotationUpdate>,
}

impl AnnotationDelta {
    /// `true` iff the batch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
    }

    /// Number of effective updates.
    pub fn len(&self) -> usize {
        self.added.len()
    }

    /// The distinct annotations introduced by this delta, sorted.
    pub fn distinct_annotations(&self) -> Vec<Item> {
        let mut anns: Vec<Item> = self.added.iter().map(|u| u.annotation).collect();
        anns.sort_unstable();
        anns.dedup();
        anns
    }

    /// The distinct tuples touched by this delta, sorted.
    pub fn touched_tuples(&self) -> Vec<TupleId> {
        let mut tids: Vec<TupleId> = self.added.iter().map(|u| u.tuple).collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }
}

/// An annotated relation (Definition 4.1) with maintained indexes.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedRelation {
    name: String,
    vocab: Vocabulary,
    tuples: Vec<Tuple>,
    alive: BitSet,
    live_count: usize,
    index: AnnotationIndex,
    epoch: u64,
}

impl AnnotatedRelation {
    /// An empty relation called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AnnotatedRelation {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared access to the vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable access to the vocabulary (for interning while loading).
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// The annotation inverted index.
    pub fn index(&self) -> &AnnotationIndex {
        &self.index
    }

    /// Monotonic mutation counter: bumped once per *effective* change
    /// (tuple inserted or deleted, annotation attached or detached).
    /// Snapshot layers use it to detect staleness without diffing state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of **live** tuples — the `|D|` denominator of every support
    /// computation.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` iff no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total slots ever allocated (live + deleted); tuple ids range over
    /// `0..slot_count`.
    pub fn slot_count(&self) -> usize {
        self.tuples.len()
    }

    /// Insert one tuple, returning its id.
    pub fn insert(&mut self, tuple: Tuple) -> TupleId {
        let tid = TupleId(u32::try_from(self.tuples.len()).expect("relation overflow"));
        for &ann in tuple.annotations() {
            self.index.insert(tid, ann);
        }
        self.alive.insert(tid.0);
        self.live_count += 1;
        self.tuples.push(tuple);
        self.epoch += 1;
        tid
    }

    /// Insert a batch of tuples (Cases 1 and 2 of §4.3), returning the ids
    /// assigned, in order.
    pub fn extend<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) -> Vec<TupleId> {
        tuples.into_iter().map(|t| self.insert(t)).collect()
    }

    /// The tuple with id `tid`, if it exists and is live.
    pub fn tuple(&self, tid: TupleId) -> Option<&Tuple> {
        if self.alive.contains(tid.0) {
            self.tuples.get(tid.0 as usize)
        } else {
            None
        }
    }

    /// `true` iff `tid` refers to a live tuple.
    pub fn is_live(&self, tid: TupleId) -> bool {
        self.alive.contains(tid.0)
    }

    /// Iterate live `(id, tuple)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> + '_ {
        self.alive
            .iter()
            .map(move |i| (TupleId(i), &self.tuples[i as usize]))
    }

    /// Iterate live tuples carrying annotation `ann` (via the index).
    pub fn tuples_with(&self, ann: Item) -> impl Iterator<Item = (TupleId, &Tuple)> + '_ {
        self.index
            .tuples_with(ann)
            .map(move |tid| (tid, &self.tuples[tid.0 as usize]))
    }

    /// Attach `ann` to `tid`. Returns `true` if the relation changed.
    pub fn add_annotation(&mut self, tid: TupleId, ann: Item) -> bool {
        if !self.alive.contains(tid.0) {
            return false;
        }
        let added = self.tuples[tid.0 as usize].add_annotation(ann);
        if added {
            self.index.insert(tid, ann);
            self.epoch += 1;
        }
        added
    }

    /// Apply an annotation batch (Case 3 of §4.3, Fig. 14), returning the
    /// effective delta for incremental rule maintenance.
    pub fn apply_annotation_batch(
        &mut self,
        updates: impl IntoIterator<Item = AnnotationUpdate>,
    ) -> AnnotationDelta {
        let mut delta = AnnotationDelta::default();
        for u in updates {
            if self.add_annotation(u.tuple, u.annotation) {
                delta.added.push(u);
            }
        }
        delta
    }

    /// Detach `ann` from `tid` (the paper's future-work deletion case).
    /// Returns `true` if the relation changed.
    pub fn remove_annotation(&mut self, tid: TupleId, ann: Item) -> bool {
        if !self.alive.contains(tid.0) {
            return false;
        }
        let removed = self.tuples[tid.0 as usize].remove_annotation(ann);
        if removed {
            self.index.remove(tid, ann);
            self.epoch += 1;
        }
        removed
    }

    /// Delete a tuple (tombstone; ids of other tuples are unaffected).
    /// Returns `true` if the tuple was live.
    pub fn delete_tuple(&mut self, tid: TupleId) -> bool {
        if !self.alive.remove(tid.0) {
            return false;
        }
        self.live_count -= 1;
        for &ann in self.tuples[tid.0 as usize].annotations() {
            self.index.remove(tid, ann);
        }
        self.epoch += 1;
        true
    }

    /// Validate internal consistency (index ↔ tuples ↔ liveness). Intended
    /// for tests and debug assertions; O(total items).
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut live = 0usize;
        for (tid, tuple) in self.tuples.iter().enumerate() {
            let tid = TupleId(tid as u32);
            if !self.alive.contains(tid.0) {
                continue;
            }
            live += 1;
            for &ann in tuple.annotations() {
                let posted = self.index.postings(ann).is_some_and(|b| b.contains(tid.0));
                if !posted {
                    return Err(format!("annotation {ann:?} of {tid} missing from index"));
                }
            }
        }
        if live != self.live_count {
            return Err(format!("live_count {} != actual {live}", self.live_count));
        }
        for ann in self.index.annotations() {
            for tid in self.index.tuples_with(ann) {
                let ok = self.tuple(tid).is_some_and(|t| t.contains(ann));
                if !ok {
                    return Err(format!("index points {ann:?} at {tid} which lacks it"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(rel: &mut AnnotatedRelation, data: &[&str], anns: &[&str]) -> Tuple {
        let data: Vec<Item> = data.iter().map(|d| rel.vocab_mut().data(d)).collect();
        let anns: Vec<Item> = anns.iter().map(|a| rel.vocab_mut().annotation(a)).collect();
        Tuple::new(data, anns)
    }

    #[test]
    fn insert_maintains_index_and_count() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1", "2"], &["Annot_1"]);
        let t1 = tup(&mut rel, &["2"], &[]);
        let ids = rel.extend([t0, t1]);
        assert_eq!(ids, vec![TupleId(0), TupleId(1)]);
        assert_eq!(rel.len(), 2);
        let a1 = rel
            .vocab()
            .get(crate::item::ItemKind::Annotation, "Annot_1")
            .unwrap();
        assert_eq!(rel.index().frequency(a1), 1);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn annotation_batch_filters_duplicates_and_dead_targets() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        let t1 = tup(&mut rel, &["2"], &[]);
        rel.extend([t0, t1]);
        let a = rel.vocab_mut().annotation("A");
        let b = rel.vocab_mut().annotation("B");
        rel.delete_tuple(TupleId(1));
        let delta = rel.apply_annotation_batch([
            AnnotationUpdate {
                tuple: TupleId(0),
                annotation: a,
            }, // duplicate
            AnnotationUpdate {
                tuple: TupleId(0),
                annotation: b,
            }, // effective
            AnnotationUpdate {
                tuple: TupleId(1),
                annotation: b,
            }, // dead target
            AnnotationUpdate {
                tuple: TupleId(9),
                annotation: b,
            }, // out of range
        ]);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.added[0].annotation, b);
        assert_eq!(delta.distinct_annotations(), vec![b]);
        assert_eq!(delta.touched_tuples(), vec![TupleId(0)]);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn delete_tuple_tombstones_and_unindexes() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        let t1 = tup(&mut rel, &["2"], &["A"]);
        rel.extend([t0, t1]);
        let a = rel.vocab_mut().annotation("A");
        assert!(rel.delete_tuple(TupleId(0)));
        assert!(!rel.delete_tuple(TupleId(0)));
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.slot_count(), 2);
        assert!(rel.tuple(TupleId(0)).is_none());
        assert!(rel.tuple(TupleId(1)).is_some());
        assert_eq!(rel.index().frequency(a), 1);
        assert_eq!(rel.iter().count(), 1);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn remove_annotation_updates_index() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        rel.insert(t0);
        let a = rel.vocab_mut().annotation("A");
        assert!(rel.remove_annotation(TupleId(0), a));
        assert!(!rel.remove_annotation(TupleId(0), a));
        assert_eq!(rel.index().frequency(a), 0);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn tuples_with_walks_the_index() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        let t1 = tup(&mut rel, &["2"], &[]);
        let t2 = tup(&mut rel, &["3"], &["A"]);
        rel.extend([t0, t1, t2]);
        let a = rel.vocab_mut().annotation("A");
        let hits: Vec<TupleId> = rel.tuples_with(a).map(|(tid, _)| tid).collect();
        assert_eq!(hits, vec![TupleId(0), TupleId(2)]);
    }

    #[test]
    fn epoch_counts_effective_mutations_only() {
        let mut rel = AnnotatedRelation::new("R");
        assert_eq!(rel.epoch(), 0);
        let t0 = tup(&mut rel, &["1"], &["A"]);
        rel.insert(t0); // +1
        let a = rel.vocab_mut().annotation("A");
        let b = rel.vocab_mut().annotation("B");
        assert!(!rel.add_annotation(TupleId(0), a)); // duplicate: no bump
        assert!(rel.add_annotation(TupleId(0), b)); // +1
        assert!(rel.remove_annotation(TupleId(0), b)); // +1
        assert!(!rel.remove_annotation(TupleId(0), b)); // absent: no bump
        assert!(rel.delete_tuple(TupleId(0))); // +1
        assert!(!rel.delete_tuple(TupleId(0))); // dead: no bump
        assert_eq!(rel.epoch(), 4);
    }

    #[test]
    fn consistency_check_catches_corruption() {
        let rel = AnnotatedRelation::new("R");
        assert!(rel.check_consistency().is_ok());
    }
}
