//! The annotated relation: tuple storage plus maintained indexes.
//!
//! [`AnnotatedRelation`] is the concrete realisation of paper Definition 4.1
//! and the object every other layer operates on. It owns the
//! [`Vocabulary`], the persistent [`SegmentStore`] of tuples (liveness is
//! tracked per segment; tuple deletion is the paper's future-work item,
//! implemented here), and the [`AnnotationIndex`], and keeps them
//! consistent under the three evolution cases of §4.3:
//!
//! * **Case 1** — [`AnnotatedRelation::extend`] with annotated tuples;
//! * **Case 2** — [`AnnotatedRelation::extend`] with un-annotated tuples;
//! * **Case 3** — [`AnnotatedRelation::apply_annotation_batch`], which
//!   returns the *effective* [`AnnotationDelta`] (duplicates and dead
//!   targets filtered) that incremental maintenance consumes.
//!
//! # Cloning is snapshotting
//!
//! Every component is structurally shared: tuples live in `Arc` segments,
//! index postings are `Arc` bitsets, and the vocabulary rides behind an
//! `Arc`. `Clone` therefore costs O(#segments + #annotations) pointer
//! copies, not O(|D|), and a clone is a true persistent snapshot — later
//! mutations of the original copy-on-write only the touched segment /
//! posting / vocabulary, never the snapshot's view. This is what lets the
//! serving layer publish a relation per drain without re-copying the
//! database (see `anno-service`).

use crate::index::AnnotationIndex;
use crate::item::Item;
use crate::segment::{Segment, SegmentStore};
use crate::tuple::{Tuple, TupleId};
use crate::vocab::Vocabulary;
use std::sync::Arc;

/// One annotation addition: attach `annotation` to `tuple`.
///
/// This is the in-memory form of a Fig. 14 batch line (`150: Annot_3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotationUpdate {
    /// The tuple to annotate.
    pub tuple: TupleId,
    /// The annotation-like item to attach.
    pub annotation: Item,
}

/// The effective result of applying an annotation batch: only the updates
/// that actually changed the relation (targets alive, annotation not already
/// present), in application order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnnotationDelta {
    /// The updates that took effect.
    pub added: Vec<AnnotationUpdate>,
}

impl AnnotationDelta {
    /// `true` iff the batch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
    }

    /// Number of effective updates.
    pub fn len(&self) -> usize {
        self.added.len()
    }

    /// The distinct annotations introduced by this delta, sorted.
    pub fn distinct_annotations(&self) -> Vec<Item> {
        let mut anns: Vec<Item> = self.added.iter().map(|u| u.annotation).collect();
        anns.sort_unstable();
        anns.dedup();
        anns
    }

    /// The distinct tuples touched by this delta, sorted.
    pub fn touched_tuples(&self) -> Vec<TupleId> {
        let mut tids: Vec<TupleId> = self.added.iter().map(|u| u.tuple).collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }
}

/// An annotated relation (Definition 4.1) with maintained indexes.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedRelation {
    name: String,
    vocab: Arc<Vocabulary>,
    store: SegmentStore,
    index: AnnotationIndex,
    epoch: u64,
}

impl AnnotatedRelation {
    /// An empty relation called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AnnotatedRelation {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared access to the vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable access to the vocabulary (for interning while loading).
    /// Copy-on-write at two granularities: if a snapshot clone shares the
    /// vocabulary, the first call after the clone copies the *structure*
    /// (O(#chunks) `Arc` bumps — the interner is itself persistent), and
    /// interning a fresh name then copies at most the shared tail chunk
    /// plus the touched index path. An annotate-only drain over known
    /// names resolves read-only and never calls this at all.
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        Arc::make_mut(&mut self.vocab)
    }

    /// The annotation inverted index.
    pub fn index(&self) -> &AnnotationIndex {
        &self.index
    }

    /// Monotonic mutation counter: bumped once per *effective* change
    /// (tuple inserted or deleted, annotation attached or detached).
    /// Snapshot layers use it to detect staleness without diffing state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restore a persisted epoch (snapshot reload rebuilds the relation by
    /// replaying inserts/deletes, which would otherwise fabricate one).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Number of **live** tuples — the `|D|` denominator of every support
    /// computation.
    pub fn len(&self) -> usize {
        self.store.live_count()
    }

    /// `true` iff no live tuples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Total slots ever allocated (live + deleted); tuple ids range over
    /// `0..slot_count`.
    pub fn slot_count(&self) -> usize {
        self.store.slot_count()
    }

    /// The segment spine, for segment-at-a-time consumers (the miner's
    /// transaction projection, sharing assertions in tests and benches).
    pub fn segments(&self) -> &[Arc<Segment>] {
        self.store.segments()
    }

    /// How many segments `self` physically shares (same `Arc`) with
    /// `other` — the structural-sharing meter behind the publish-cost
    /// model: a fresh clone shares everything; each mutated segment costs
    /// exactly one.
    pub fn shared_segments_with(&self, other: &AnnotatedRelation) -> usize {
        self.store.shared_segments_with(&other.store)
    }

    /// `true` iff `self` and `other` physically share (same `Arc`) the
    /// vocabulary — i.e. no interning happened between the two since they
    /// diverged. Write paths that resolve existing names read-only keep
    /// this true across drains.
    pub fn shares_vocab_with(&self, other: &AnnotatedRelation) -> bool {
        Arc::ptr_eq(&self.vocab, &other.vocab)
    }

    /// How many vocabulary arena chunks `self` physically shares (same
    /// `Arc`) with `other` — the chunk-level refinement of
    /// [`AnnotatedRelation::shares_vocab_with`]. Even after an
    /// insert-heavy drain unshares the outer vocabulary, every full
    /// (non-tail) chunk of the pre-drain snapshot stays shared; only the
    /// partial tail chunks of the namespaces that interned fresh names
    /// are copied.
    pub fn vocab_shared_chunks_with(&self, other: &AnnotatedRelation) -> usize {
        self.vocab.shared_chunks_with(&other.vocab)
    }

    /// Total vocabulary arena chunks across all namespaces (the
    /// denominator for [`AnnotatedRelation::vocab_shared_chunks_with`]).
    pub fn vocab_chunk_count(&self) -> usize {
        self.vocab.total_chunks()
    }

    /// Insert one tuple, returning its id.
    pub fn insert(&mut self, tuple: Tuple) -> TupleId {
        let slot = u32::try_from(self.store.slot_count()).expect("relation overflow");
        let tid = TupleId(slot);
        for &ann in tuple.annotations() {
            self.index.insert(tid, ann);
        }
        let pushed = self.store.push(tuple);
        debug_assert_eq!(pushed, slot);
        self.epoch += 1;
        tid
    }

    /// Insert a batch of tuples (Cases 1 and 2 of §4.3), returning the ids
    /// assigned, in order.
    pub fn extend<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) -> Vec<TupleId> {
        tuples.into_iter().map(|t| self.insert(t)).collect()
    }

    /// The tuple with id `tid`, if it exists and is live.
    pub fn tuple(&self, tid: TupleId) -> Option<&Tuple> {
        self.store.get(tid.0)
    }

    /// `true` iff `tid` refers to a live tuple.
    pub fn is_live(&self, tid: TupleId) -> bool {
        self.store.is_live(tid.0)
    }

    /// Iterate live `(id, tuple)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> + '_ {
        self.store.iter_live().map(|(slot, t)| (TupleId(slot), t))
    }

    /// Iterate live tuples carrying annotation `ann` (via the index).
    pub fn tuples_with(&self, ann: Item) -> impl Iterator<Item = (TupleId, &Tuple)> + '_ {
        self.index
            .tuples_with(ann)
            .map(move |tid| (tid, self.store.get(tid.0).expect("indexed tuple is live")))
    }

    /// Attach `ann` to `tid`. Returns `true` if the relation changed.
    pub fn add_annotation(&mut self, tid: TupleId, ann: Item) -> bool {
        assert!(
            ann.is_annotation_like(),
            "cannot annotate with a data value"
        );
        // Shared-read precheck so a duplicate never copies the segment.
        match self.store.get(tid.0) {
            None => return false,
            Some(t) if t.contains(ann) => return false,
            Some(_) => {}
        }
        let added = self
            .store
            .update(tid.0, |t| t.add_annotation(ann))
            .expect("liveness just checked");
        debug_assert!(added);
        self.index.insert(tid, ann);
        self.epoch += 1;
        true
    }

    /// Apply an annotation batch (Case 3 of §4.3, Fig. 14), returning the
    /// effective delta for incremental rule maintenance.
    pub fn apply_annotation_batch(
        &mut self,
        updates: impl IntoIterator<Item = AnnotationUpdate>,
    ) -> AnnotationDelta {
        let mut delta = AnnotationDelta::default();
        for u in updates {
            if self.add_annotation(u.tuple, u.annotation) {
                delta.added.push(u);
            }
        }
        delta
    }

    /// Detach `ann` from `tid` (the paper's future-work deletion case).
    /// Returns `true` if the relation changed.
    pub fn remove_annotation(&mut self, tid: TupleId, ann: Item) -> bool {
        assert!(
            ann.is_annotation_like(),
            "cannot remove a data value as an annotation"
        );
        match self.store.get(tid.0) {
            None => return false,
            Some(t) if !t.contains(ann) => return false,
            Some(_) => {}
        }
        let removed = self
            .store
            .update(tid.0, |t| t.remove_annotation(ann))
            .expect("liveness just checked");
        debug_assert!(removed);
        self.index.remove(tid, ann);
        self.epoch += 1;
        true
    }

    /// Delete a tuple (tombstone; ids of other tuples are unaffected).
    /// Returns `true` if the tuple was live.
    pub fn delete_tuple(&mut self, tid: TupleId) -> bool {
        let anns: Vec<Item> = match self.store.get(tid.0) {
            Some(t) => t.annotations().to_vec(),
            None => return false,
        };
        let deleted = self.store.delete(tid.0);
        debug_assert!(deleted);
        for ann in anns {
            self.index.remove(tid, ann);
        }
        self.epoch += 1;
        true
    }

    /// Validate internal consistency (index ↔ segments ↔ liveness).
    /// Intended for tests and debug assertions; O(total items).
    pub fn check_consistency(&self) -> Result<(), String> {
        self.store.check()?;
        for (slot, tuple, live) in self.store.iter_slots() {
            if !live {
                continue;
            }
            let tid = TupleId(slot);
            for &ann in tuple.annotations() {
                let posted = self.index.postings(ann).is_some_and(|b| b.contains(tid.0));
                if !posted {
                    return Err(format!("annotation {ann:?} of {tid} missing from index"));
                }
            }
        }
        for ann in self.index.annotations() {
            for tid in self.index.tuples_with(ann) {
                let ok = self.tuple(tid).is_some_and(|t| t.contains(ann));
                if !ok {
                    return Err(format!("index points {ann:?} at {tid} which lacks it"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SEGMENT_CAP;

    fn tup(rel: &mut AnnotatedRelation, data: &[&str], anns: &[&str]) -> Tuple {
        let data: Vec<Item> = data.iter().map(|d| rel.vocab_mut().data(d)).collect();
        let anns: Vec<Item> = anns.iter().map(|a| rel.vocab_mut().annotation(a)).collect();
        Tuple::new(data, anns)
    }

    #[test]
    fn insert_maintains_index_and_count() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1", "2"], &["Annot_1"]);
        let t1 = tup(&mut rel, &["2"], &[]);
        let ids = rel.extend([t0, t1]);
        assert_eq!(ids, vec![TupleId(0), TupleId(1)]);
        assert_eq!(rel.len(), 2);
        let a1 = rel
            .vocab()
            .get(crate::item::ItemKind::Annotation, "Annot_1")
            .unwrap();
        assert_eq!(rel.index().frequency(a1), 1);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn annotation_batch_filters_duplicates_and_dead_targets() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        let t1 = tup(&mut rel, &["2"], &[]);
        rel.extend([t0, t1]);
        let a = rel.vocab_mut().annotation("A");
        let b = rel.vocab_mut().annotation("B");
        rel.delete_tuple(TupleId(1));
        let delta = rel.apply_annotation_batch([
            AnnotationUpdate {
                tuple: TupleId(0),
                annotation: a,
            }, // duplicate
            AnnotationUpdate {
                tuple: TupleId(0),
                annotation: b,
            }, // effective
            AnnotationUpdate {
                tuple: TupleId(1),
                annotation: b,
            }, // dead target
            AnnotationUpdate {
                tuple: TupleId(9),
                annotation: b,
            }, // out of range
        ]);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.added[0].annotation, b);
        assert_eq!(delta.distinct_annotations(), vec![b]);
        assert_eq!(delta.touched_tuples(), vec![TupleId(0)]);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn delete_tuple_tombstones_and_unindexes() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        let t1 = tup(&mut rel, &["2"], &["A"]);
        rel.extend([t0, t1]);
        let a = rel.vocab_mut().annotation("A");
        assert!(rel.delete_tuple(TupleId(0)));
        assert!(!rel.delete_tuple(TupleId(0)));
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.slot_count(), 2);
        assert!(rel.tuple(TupleId(0)).is_none());
        assert!(rel.tuple(TupleId(1)).is_some());
        assert_eq!(rel.index().frequency(a), 1);
        assert_eq!(rel.iter().count(), 1);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn remove_annotation_updates_index() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        rel.insert(t0);
        let a = rel.vocab_mut().annotation("A");
        assert!(rel.remove_annotation(TupleId(0), a));
        assert!(!rel.remove_annotation(TupleId(0), a));
        assert_eq!(rel.index().frequency(a), 0);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn tuples_with_walks_the_index() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        let t1 = tup(&mut rel, &["2"], &[]);
        let t2 = tup(&mut rel, &["3"], &["A"]);
        rel.extend([t0, t1, t2]);
        let a = rel.vocab_mut().annotation("A");
        let hits: Vec<TupleId> = rel.tuples_with(a).map(|(tid, _)| tid).collect();
        assert_eq!(hits, vec![TupleId(0), TupleId(2)]);
    }

    #[test]
    fn epoch_counts_effective_mutations_only() {
        let mut rel = AnnotatedRelation::new("R");
        assert_eq!(rel.epoch(), 0);
        let t0 = tup(&mut rel, &["1"], &["A"]);
        rel.insert(t0); // +1
        let a = rel.vocab_mut().annotation("A");
        let b = rel.vocab_mut().annotation("B");
        assert!(!rel.add_annotation(TupleId(0), a)); // duplicate: no bump
        assert!(rel.add_annotation(TupleId(0), b)); // +1
        assert!(rel.remove_annotation(TupleId(0), b)); // +1
        assert!(!rel.remove_annotation(TupleId(0), b)); // absent: no bump
        assert!(rel.delete_tuple(TupleId(0))); // +1
        assert!(!rel.delete_tuple(TupleId(0))); // dead: no bump
        assert_eq!(rel.epoch(), 4);
    }

    #[test]
    fn consistency_check_catches_corruption() {
        let rel = AnnotatedRelation::new("R");
        assert!(rel.check_consistency().is_ok());
    }

    #[test]
    fn clone_is_a_persistent_snapshot() {
        let mut rel = AnnotatedRelation::new("R");
        for i in 0..(SEGMENT_CAP + 10) {
            let t = tup(&mut rel, &[&format!("{i}")], &["A"]);
            rel.insert(t);
        }
        let a = rel
            .vocab()
            .get(crate::item::ItemKind::Annotation, "A")
            .unwrap();
        let snap = rel.clone();
        assert_eq!(rel.shared_segments_with(&snap), 2, "clone shares the spine");

        // Mutations after the clone: the snapshot's view never moves.
        // Delete + un-annotate both land in segment 0, so exactly one
        // segment is copied-on-write.
        rel.delete_tuple(TupleId(0));
        assert!(rel.remove_annotation(TupleId(1), a));
        assert_eq!(rel.shared_segments_with(&snap), 1);
        // Appending lands in the partial tail segment, copying it too.
        let t = tup(&mut rel, &["fresh"], &["B"]);
        rel.insert(t);

        assert_eq!(snap.len(), SEGMENT_CAP + 10);
        assert!(snap.is_live(TupleId(0)));
        assert!(snap.tuple(TupleId(1)).unwrap().contains(a));
        assert_eq!(snap.index().frequency(a), SEGMENT_CAP + 10);
        assert!(
            snap.vocab()
                .get(crate::item::ItemKind::Annotation, "B")
                .is_none(),
            "snapshot vocabulary is frozen too"
        );
        snap.check_consistency().unwrap();
        rel.check_consistency().unwrap();
        assert_eq!(rel.shared_segments_with(&snap), 0);
    }

    #[test]
    fn noop_mutations_never_unshare_segments() {
        let mut rel = AnnotatedRelation::new("R");
        let t0 = tup(&mut rel, &["1"], &["A"]);
        let t1 = tup(&mut rel, &["2"], &[]);
        rel.extend([t0, t1]);
        let a = rel.vocab_mut().annotation("A");
        rel.delete_tuple(TupleId(1));
        let snap = rel.clone();
        assert!(!rel.add_annotation(TupleId(0), a), "duplicate");
        assert!(!rel.add_annotation(TupleId(1), a), "dead target");
        assert!(!rel.remove_annotation(TupleId(1), a), "dead target");
        assert!(!rel.delete_tuple(TupleId(1)), "already dead");
        assert_eq!(
            rel.shared_segments_with(&snap),
            rel.segments().len(),
            "no-ops must not copy-on-write"
        );
    }
}
