//! Persistent, structurally shared name interner.
//!
//! The paper's annotation model assumes an *open* universe of annotation
//! names (Definition 4.1 never fixes the annotation domain), so real
//! ingest traffic is insert-heavy: most drains bring at least one name
//! the interner has never seen. The old [`Vocabulary`] was a flat
//! `Vec<String>` plus a `HashMap<String, u32>` per namespace — correct,
//! but copy-on-write *as a single unit*: with a published snapshot
//! holding the second `Arc`, the first intern of a drain deep-copied
//! every name ever seen (twice: the vector and the map keys),
//! O(#distinct names) per drain. That was the last whole-structure copy
//! left on the write path after the segment store (PR 2) made tuples and
//! postings delta-cost.
//!
//! This module replaces both halves with persistent structures:
//!
//! * **Name arena** — names live in fixed-capacity ([`VOCAB_CHUNK_CAP`])
//!   chunks behind `Arc`s, append-only. Cloning the arena is O(#chunks)
//!   pointer copies; interning copies at most the shared *tail* chunk
//!   (≤ [`VOCAB_CHUNK_CAP`] strings) once per drain, and fresh chunks are
//!   built in place, never copied. Full (non-tail) chunks are immutable
//!   forever, so every snapshot shares them with the live interner.
//! * **Hash-array-mapped index** — the name → index map is a HAMT keyed
//!   by a 64-bit name hash, 32-way branching, with *indices into the
//!   arena* at the leaves (names are never stored twice). Inserting
//!   path-copies O(log₃₂ N) nodes; lookups walk ≤ 13 levels and compare
//!   candidate names through the arena.
//!
//! Interning N fresh names into a vocabulary shared with a snapshot
//! therefore copies O(N/chunk + touched index nodes) — delta-scale —
//! instead of O(#distinct names). `benches/vocab.rs` measures the
//! difference; `BENCH_vocab.json` records it.
//!
//! Item ids are still assigned densely in interning order, so the
//! `annodb-snapshot` text format (which persists names in intern order)
//! re-interns to byte-identical [`Item`] ids — and with them, identical
//! chunk boundaries — across save/load and WAL replay.

use std::hash::Hasher;
use std::sync::Arc;

use crate::fxhash::FxHasher;
use crate::item::{Item, ItemKind};

/// log2 of [`VOCAB_CHUNK_CAP`]; index → (chunk, offset) is a shift + mask.
pub const VOCAB_CHUNK_BITS: u32 = 8;

/// Names per arena chunk. Small enough that copying one shared tail
/// chunk is delta-scale work; large enough that the spine stays short
/// (#names / 256 pointers).
pub const VOCAB_CHUNK_CAP: usize = 1 << VOCAB_CHUNK_BITS;

const CHUNK_OFFSET_MASK: u32 = (VOCAB_CHUNK_CAP - 1) as u32;

/// Stable, deterministic name hash (FxHasher over the UTF-8 bytes).
/// Determinism matters: WAL replay and snapshot reload must rebuild the
/// same index shape so sharing meters and walk order are reproducible.
fn hash_name(name: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(name.as_bytes());
    h.finish()
}

// ---------------------------------------------------------------------
// Name arena: Arc-chunked, append-only.
// ---------------------------------------------------------------------

/// Append-only string storage in `Arc`-shared fixed-capacity chunks.
/// Only the tail chunk is ever mutated (and therefore ever copied).
#[derive(Debug, Clone, Default)]
struct NameArena {
    chunks: Vec<Arc<Vec<String>>>,
    len: u32,
}

impl NameArena {
    fn len(&self) -> usize {
        self.len as usize
    }

    /// Append a name, returning its dense index. Copies the tail chunk
    /// iff it is shared with a snapshot; full chunks are never touched.
    fn push(&mut self, name: String) -> u32 {
        let idx = self.len;
        if self
            .chunks
            .last()
            .is_none_or(|c| c.len() == VOCAB_CHUNK_CAP)
        {
            self.chunks
                .push(Arc::new(Vec::with_capacity(VOCAB_CHUNK_CAP)));
        }
        let tail = self.chunks.last_mut().expect("just ensured");
        Arc::make_mut(tail).push(name);
        self.len += 1;
        idx
    }

    fn get(&self, idx: u32) -> Option<&str> {
        self.chunks
            .get((idx >> VOCAB_CHUNK_BITS) as usize)?
            .get((idx & CHUNK_OFFSET_MASK) as usize)
            .map(String::as_str)
    }

    fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Chunk positions physically shared (same `Arc`) with `other`.
    fn shared_chunks_with(&self, other: &NameArena) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Approximate heap bytes of one chunk: string headers + string data.
    fn chunk_bytes(chunk: &[String]) -> usize {
        std::mem::size_of_val(chunk) + chunk.iter().map(String::len).sum::<usize>()
    }

    fn heap_bytes(&self) -> usize {
        self.chunks.iter().map(|c| Self::chunk_bytes(c)).sum()
    }

    /// Heap bytes of chunks *not* shared with `other` — what a drain
    /// actually copied since the two diverged.
    fn unshared_bytes_with(&self, other: &NameArena) -> usize {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(i, c)| other.chunks.get(*i).is_none_or(|o| !Arc::ptr_eq(c, o)))
            .map(|(_, c)| Self::chunk_bytes(c))
            .sum()
    }
}

// ---------------------------------------------------------------------
// Persistent hash-array-mapped index.
// ---------------------------------------------------------------------

/// Bits consumed per HAMT level (32-way branching).
const HAMT_BITS: u32 = 5;
const HAMT_MASK: u64 = (1 << HAMT_BITS) - 1;
/// Deepest level start: shifts 0,5,…,60 cover all 64 hash bits, so two
/// distinct hashes always diverge at some shift ≤ 60.
const HAMT_MAX_SHIFT: u32 = 60;

#[derive(Debug)]
enum HamtNode {
    /// Interior node: `bitmap` marks populated 5-bit slots; `children`
    /// holds them densely in slot order.
    Branch {
        bitmap: u32,
        children: Vec<Arc<HamtNode>>,
    },
    /// Arena indices of all names sharing `hash` (full 64-bit collisions
    /// only — names themselves live in the arena, never here).
    Leaf { hash: u64, indices: Vec<u32> },
}

/// Persistent name → arena-index map. `Clone` is one `Arc` bump;
/// inserts path-copy O(depth) nodes and share the rest of the trie.
#[derive(Debug, Clone, Default)]
struct HamtIndex {
    root: Option<Arc<HamtNode>>,
}

impl HamtIndex {
    /// Look up `name` (pre-hashed) by walking the trie and confirming
    /// candidates against the arena.
    fn get(&self, arena: &NameArena, hash: u64, name: &str) -> Option<u32> {
        let mut node = self.root.as_deref()?;
        let mut shift = 0u32;
        loop {
            match node {
                HamtNode::Leaf { hash: h, indices } => {
                    if *h != hash {
                        return None;
                    }
                    return indices
                        .iter()
                        .copied()
                        .find(|&idx| arena.get(idx) == Some(name));
                }
                HamtNode::Branch { bitmap, children } => {
                    let bit = 1u32 << ((hash >> shift) & HAMT_MASK);
                    if bitmap & bit == 0 {
                        return None;
                    }
                    let pos = (bitmap & (bit - 1)).count_ones() as usize;
                    node = &children[pos];
                    shift += HAMT_BITS;
                }
            }
        }
    }

    /// Insert `idx` for a name known to be absent. Path-copies the spine
    /// from the root to the touched leaf; untouched subtrees are shared.
    fn insert(&mut self, hash: u64, idx: u32) {
        self.root = Some(match self.root.take() {
            None => Arc::new(HamtNode::Leaf {
                hash,
                indices: vec![idx],
            }),
            Some(root) => Self::insert_rec(&root, 0, hash, idx),
        });
    }

    fn insert_rec(node: &Arc<HamtNode>, shift: u32, hash: u64, idx: u32) -> Arc<HamtNode> {
        match node.as_ref() {
            HamtNode::Leaf { hash: h, indices } if *h == hash => {
                let mut indices = indices.clone();
                indices.push(idx);
                Arc::new(HamtNode::Leaf { hash, indices })
            }
            HamtNode::Leaf { hash: h, .. } => Self::split(*h, Arc::clone(node), hash, idx, shift),
            HamtNode::Branch { bitmap, children } => {
                let bit = 1u32 << ((hash >> shift) & HAMT_MASK);
                let pos = (bitmap & (bit - 1)).count_ones() as usize;
                let mut children = children.clone();
                if bitmap & bit != 0 {
                    children[pos] = Self::insert_rec(&children[pos], shift + HAMT_BITS, hash, idx);
                    Arc::new(HamtNode::Branch {
                        bitmap: *bitmap,
                        children,
                    })
                } else {
                    children.insert(
                        pos,
                        Arc::new(HamtNode::Leaf {
                            hash,
                            indices: vec![idx],
                        }),
                    );
                    Arc::new(HamtNode::Branch {
                        bitmap: bitmap | bit,
                        children,
                    })
                }
            }
        }
    }

    /// Push an existing leaf and a new entry with a *different* hash down
    /// until their 5-bit slots diverge (guaranteed by shift ≤ 60).
    fn split(
        old_hash: u64,
        old_node: Arc<HamtNode>,
        hash: u64,
        idx: u32,
        shift: u32,
    ) -> Arc<HamtNode> {
        debug_assert_ne!(old_hash, hash, "equal hashes belong in one leaf");
        debug_assert!(shift <= HAMT_MAX_SHIFT, "hashes must diverge by shift 60");
        let old_slot = (old_hash >> shift) & HAMT_MASK;
        let new_slot = (hash >> shift) & HAMT_MASK;
        if old_slot == new_slot {
            let child = Self::split(old_hash, old_node, hash, idx, shift + HAMT_BITS);
            return Arc::new(HamtNode::Branch {
                bitmap: 1u32 << old_slot,
                children: vec![child],
            });
        }
        let new_leaf = Arc::new(HamtNode::Leaf {
            hash,
            indices: vec![idx],
        });
        let (bitmap, children) = if old_slot < new_slot {
            (
                (1u32 << old_slot) | (1u32 << new_slot),
                vec![old_node, new_leaf],
            )
        } else {
            (
                (1u32 << old_slot) | (1u32 << new_slot),
                vec![new_leaf, old_node],
            )
        };
        Arc::new(HamtNode::Branch { bitmap, children })
    }

    fn node_bytes(node: &HamtNode) -> usize {
        std::mem::size_of::<HamtNode>()
            + match node {
                HamtNode::Branch { children, .. } => {
                    children.len() * std::mem::size_of::<Arc<HamtNode>>()
                }
                HamtNode::Leaf { indices, .. } => indices.len() * std::mem::size_of::<u32>(),
            }
    }

    fn heap_bytes(&self) -> usize {
        fn walk(node: &HamtNode) -> usize {
            HamtIndex::node_bytes(node)
                + match node {
                    HamtNode::Branch { children, .. } => children.iter().map(|c| walk(c)).sum(),
                    HamtNode::Leaf { .. } => 0,
                }
        }
        self.root.as_deref().map_or(0, walk)
    }

    /// Heap bytes of nodes *not* physically shared with `other` — the
    /// path copies an insert sequence actually paid. Matching subtrees
    /// are compared by `Arc` identity, so shared structure costs nothing
    /// to skip.
    fn unshared_bytes_with(&self, other: &HamtIndex) -> usize {
        fn walk(a: &Arc<HamtNode>, b: Option<&Arc<HamtNode>>) -> usize {
            if let Some(b) = b {
                if Arc::ptr_eq(a, b) {
                    return 0;
                }
            }
            let own = HamtIndex::node_bytes(a);
            match (a.as_ref(), b.map(Arc::as_ref)) {
                (
                    HamtNode::Branch { bitmap, children },
                    Some(HamtNode::Branch {
                        bitmap: ob,
                        children: oc,
                    }),
                ) => {
                    // Match children by slot through both bitmaps.
                    let mut sum = own;
                    for slot in 0..32u32 {
                        let bit = 1u32 << slot;
                        if bitmap & bit == 0 {
                            continue;
                        }
                        let pos = (bitmap & (bit - 1)).count_ones() as usize;
                        let opos = (ob & (bit - 1)).count_ones() as usize;
                        let peer = (ob & bit != 0).then(|| &oc[opos]);
                        sum += walk(&children[pos], peer);
                    }
                    sum
                }
                (HamtNode::Branch { children, .. }, _) => {
                    own + children.iter().map(|c| walk(c, None)).sum::<usize>()
                }
                (HamtNode::Leaf { .. }, _) => own,
            }
        }
        match (&self.root, &other.root) {
            (Some(a), b) => walk(a, b.as_ref()),
            (None, _) => 0,
        }
    }
}

// ---------------------------------------------------------------------
// The vocabulary: one (arena, index) pair per namespace.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct Namespace {
    arena: NameArena,
    index: HamtIndex,
}

impl Namespace {
    fn get(&self, name: &str) -> Option<u32> {
        self.index.get(&self.arena, hash_name(name), name)
    }

    fn intern(&mut self, name: &str) -> u32 {
        let hash = hash_name(name);
        if let Some(idx) = self.index.get(&self.arena, hash, name) {
            return idx;
        }
        let idx = self.arena.push(name.to_owned());
        self.index.insert(hash, idx);
        idx
    }
}

/// Bidirectional name ↔ [`Item`] interner, one table per namespace.
///
/// `Clone` is the snapshot operation: O(#chunks) `Arc` bumps for the
/// arenas plus one per index root. A clone and its origin then diverge
/// chunk-by-chunk and node-by-node as fresh names are interned — full
/// arena chunks and untouched index subtrees stay physically shared
/// forever, which is what makes insert-heavy drains delta-proportional
/// (see the module docs and [`Vocabulary::shared_chunks_with`]).
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    namespaces: [Namespace; 3],
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Intern `name` in `kind`'s namespace, returning the (new or existing)
    /// item. Ids are dense and assigned in interning order.
    pub fn intern(&mut self, kind: ItemKind, name: &str) -> Item {
        let idx = self.namespaces[kind as usize].intern(name);
        assert!(idx < (1 << 30), "vocabulary overflow in namespace {kind:?}");
        Item::new(kind, idx)
    }

    /// Intern a data value.
    pub fn data(&mut self, name: &str) -> Item {
        self.intern(ItemKind::Data, name)
    }

    /// Intern a raw annotation.
    pub fn annotation(&mut self, name: &str) -> Item {
        self.intern(ItemKind::Annotation, name)
    }

    /// Intern a concept label.
    pub fn label(&mut self, name: &str) -> Item {
        self.intern(ItemKind::Label, name)
    }

    /// Look up an existing item by name without interning. Read-only:
    /// never copies any shared structure.
    pub fn get(&self, kind: ItemKind, name: &str) -> Option<Item> {
        self.namespaces[kind as usize]
            .get(name)
            .map(|idx| Item::new(kind, idx))
    }

    /// The name of an item. Panics on an item from a different vocabulary
    /// with an out-of-range index.
    pub fn name(&self, item: Item) -> &str {
        self.namespaces[item.kind() as usize]
            .arena
            .get(item.index())
            .expect("item index beyond this vocabulary")
    }

    /// Number of interned names in a namespace.
    pub fn count(&self, kind: ItemKind) -> usize {
        self.namespaces[kind as usize].arena.len()
    }

    /// Iterate all items of a namespace in interning order.
    pub fn items(&self, kind: ItemKind) -> impl Iterator<Item = Item> + '_ {
        (0..self.count(kind) as u32).map(move |i| Item::new(kind, i))
    }

    /// Render a slice of items as a human-readable list.
    pub fn render(&self, items: &[Item]) -> String {
        let mut out = String::new();
        for (i, &item) in items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(self.name(item));
        }
        out
    }

    // -- structural-sharing meters ------------------------------------

    /// Arena chunks in `kind`'s namespace.
    pub fn chunk_count(&self, kind: ItemKind) -> usize {
        self.namespaces[kind as usize].arena.chunk_count()
    }

    /// Arena chunks across all namespaces.
    pub fn total_chunks(&self) -> usize {
        ItemKind::ALL.iter().map(|&k| self.chunk_count(k)).sum()
    }

    /// How many arena chunks `self` physically shares (same `Arc`) with
    /// `other`, across all namespaces — the chunk-level sharing meter.
    /// A fresh clone shares everything; interning unshares at most the
    /// tail chunk per touched namespace, so after any drain
    /// `shared ≥ full (non-tail) chunks of the pre-drain snapshot`.
    pub fn shared_chunks_with(&self, other: &Vocabulary) -> usize {
        self.namespaces
            .iter()
            .zip(&other.namespaces)
            .map(|(a, b)| a.arena.shared_chunks_with(&b.arena))
            .sum()
    }

    /// Chunks of `kind`'s namespace physically shared with `other`.
    pub fn shared_chunks_with_kind(&self, kind: ItemKind, other: &Vocabulary) -> usize {
        self.namespaces[kind as usize]
            .arena
            .shared_chunks_with(&other.namespaces[kind as usize].arena)
    }

    /// Approximate heap footprint: arena chunks (headers + name bytes)
    /// plus index nodes. This is what a monolithic copy-on-write
    /// interner would copy *per insert-heavy drain*.
    pub fn approx_heap_bytes(&self) -> usize {
        self.namespaces
            .iter()
            .map(|ns| ns.arena.heap_bytes() + ns.index.heap_bytes())
            .sum()
    }

    /// Approximate heap bytes of structure *not* shared with `other`:
    /// unshared arena chunks plus unshared index nodes. After a drain
    /// against a pre-drain snapshot, this is what the drain actually
    /// copied or built — the delta-proportionality claim in bytes
    /// (`benches/vocab.rs` records it in `BENCH_vocab.json`).
    pub fn unshared_bytes_with(&self, other: &Vocabulary) -> usize {
        self.namespaces
            .iter()
            .zip(&other.namespaces)
            .map(|(a, b)| {
                a.arena.unshared_bytes_with(&b.arena) + a.index.unshared_bytes_with(&b.index)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a1 = v.annotation("Annot_1");
        let a2 = v.annotation("Annot_1");
        assert_eq!(a1, a2);
        assert_eq!(v.count(ItemKind::Annotation), 1);
        assert_eq!(v.name(a1), "Annot_1");
    }

    #[test]
    fn namespaces_are_disjoint() {
        let mut v = Vocabulary::new();
        let d = v.data("42");
        let a = v.annotation("42");
        assert_ne!(d, a);
        assert_eq!(v.name(d), "42");
        assert_eq!(v.name(a), "42");
    }

    #[test]
    fn get_does_not_intern() {
        let mut v = Vocabulary::new();
        assert_eq!(v.get(ItemKind::Data, "x"), None);
        let d = v.data("x");
        assert_eq!(v.get(ItemKind::Data, "x"), Some(d));
    }

    #[test]
    fn items_iterates_in_interning_order() {
        let mut v = Vocabulary::new();
        let a = v.annotation("a");
        let b = v.annotation("b");
        assert_eq!(
            v.items(ItemKind::Annotation).collect::<Vec<_>>(),
            vec![a, b]
        );
    }

    #[test]
    fn render_joins_names() {
        let mut v = Vocabulary::new();
        let x = v.data("28");
        let a = v.annotation("Annot_1");
        assert_eq!(v.render(&[x, a]), "28, Annot_1");
    }

    #[test]
    fn dense_ids_across_chunk_boundaries() {
        let mut v = Vocabulary::new();
        let n = VOCAB_CHUNK_CAP * 2 + 17;
        for i in 0..n {
            let item = v.annotation(&format!("name_{i}"));
            assert_eq!(item.index() as usize, i, "ids are dense in intern order");
        }
        assert_eq!(v.count(ItemKind::Annotation), n);
        assert_eq!(v.chunk_count(ItemKind::Annotation), 3);
        // Every name resolves both ways.
        for i in (0..n).step_by(97) {
            let name = format!("name_{i}");
            let item = v.get(ItemKind::Annotation, &name).unwrap();
            assert_eq!(item.index() as usize, i);
            assert_eq!(v.name(item), name);
        }
    }

    #[test]
    fn clone_shares_all_chunks_until_interned() {
        let mut v = Vocabulary::new();
        for i in 0..(VOCAB_CHUNK_CAP + 10) {
            v.annotation(&format!("a{i}"));
        }
        let snap = v.clone();
        assert_eq!(v.shared_chunks_with(&snap), 2, "fresh clone shares all");
        assert_eq!(v.unshared_bytes_with(&snap), 0);

        // Looking up existing names never unshares anything.
        assert!(v.get(ItemKind::Annotation, "a3").is_some());
        let mut w = v.clone();
        let known = w.annotation("a3");
        assert_eq!(known, v.get(ItemKind::Annotation, "a3").unwrap());
        assert_eq!(w.shared_chunks_with(&v), 2, "re-intern is read-only");

        // A fresh name copies only the partial tail chunk.
        v.annotation("fresh");
        assert_eq!(
            v.shared_chunks_with(&snap),
            1,
            "full chunk stays shared, tail copied"
        );
        // The snapshot's view never moves.
        assert!(snap.get(ItemKind::Annotation, "fresh").is_none());
        assert_eq!(snap.count(ItemKind::Annotation), VOCAB_CHUNK_CAP + 10);

        // Copied bytes are bounded by the tail chunk + index path, far
        // below the whole interner.
        let copied = v.unshared_bytes_with(&snap);
        assert!(copied > 0);
        assert!(
            copied < v.approx_heap_bytes() / 4,
            "copied {copied} bytes must be a small fraction of {}",
            v.approx_heap_bytes()
        );
    }

    #[test]
    fn full_chunks_survive_many_drains() {
        let mut v = Vocabulary::new();
        for i in 0..(VOCAB_CHUNK_CAP * 3) {
            v.data(&i.to_string());
        }
        let snap = v.clone();
        // Three insert-heavy "drains", each interning a fresh batch.
        for round in 0..3 {
            for i in 0..40 {
                v.data(&format!("fresh_{round}_{i}"));
            }
        }
        // All three full pre-drain chunks are still shared; only the
        // chunks appended after the snapshot differ.
        assert_eq!(v.shared_chunks_with(&snap), 3);
        v.check_shared_prefix(&snap);
    }

    #[test]
    fn hash_collisions_resolve_through_the_arena() {
        // Dense interning never unhashes a name incorrectly: every one of
        // many names resolves both ways through the trie + arena.
        let mut v = Vocabulary::new();
        let names: Vec<String> = (0..2000).map(|i| format!("n{i}")).collect();
        let items: Vec<Item> = names.iter().map(|n| v.label(n)).collect();
        for (name, &item) in names.iter().zip(&items) {
            assert_eq!(v.get(ItemKind::Label, name), Some(item));
            assert_eq!(v.name(item), name);
        }
        assert_eq!(v.get(ItemKind::Label, "absent"), None);
    }

    #[test]
    fn forced_full_hash_collisions_share_a_leaf_and_disambiguate() {
        // A genuine 64-bit FxHash collision is unconstructable by hand,
        // but `HamtIndex` takes the hash as a parameter — so force one
        // and exercise the multi-index leaf arms directly: the
        // equal-hash insert (leaf grows) and the lookup that must
        // compare candidate names through the arena.
        let mut arena = NameArena::default();
        let alpha = arena.push("alpha".to_owned());
        let beta = arena.push("beta".to_owned());
        let mut index = HamtIndex::default();
        let h = 0xDEAD_BEEF_DEAD_BEEFu64;
        index.insert(h, alpha);
        index.insert(h, beta);
        assert_eq!(index.get(&arena, h, "alpha"), Some(alpha));
        assert_eq!(index.get(&arena, h, "beta"), Some(beta));
        assert_eq!(index.get(&arena, h, "gamma"), None, "same hash, no name");

        // A different hash landing in the same 5-bit slots for several
        // levels forces the deep split path; both survive.
        let deep = arena.push("deep".to_owned());
        index.insert(h ^ (1 << 62), deep);
        assert_eq!(index.get(&arena, h ^ (1 << 62), "deep"), Some(deep));
        assert_eq!(index.get(&arena, h, "alpha"), Some(alpha));

        // The collision leaf is copied, not shared, when grown again
        // after a snapshot — and the snapshot's view never moves.
        let snap = index.clone();
        let gamma = arena.push("gamma".to_owned());
        index.insert(h, gamma);
        assert_eq!(index.get(&arena, h, "gamma"), Some(gamma));
        assert_eq!(snap.get(&arena, h, "gamma"), None);
        assert_eq!(snap.get(&arena, h, "beta"), Some(beta));
    }

    #[test]
    fn unshared_bytes_against_disjoint_vocab_counts_everything() {
        let mut a = Vocabulary::new();
        let mut b = Vocabulary::new();
        for i in 0..100 {
            a.annotation(&format!("a{i}"));
            b.annotation(&format!("b{i}"));
        }
        assert_eq!(a.shared_chunks_with(&b), 0);
        assert_eq!(a.unshared_bytes_with(&b), a.approx_heap_bytes());
    }

    impl Vocabulary {
        /// Test helper: ids in the shared prefix resolve identically in
        /// both vocabularies.
        fn check_shared_prefix(&self, snap: &Vocabulary) {
            for kind in ItemKind::ALL {
                for item in snap.items(kind) {
                    assert_eq!(self.name(item), snap.name(item), "{item:?} diverged");
                }
            }
        }
    }
}
