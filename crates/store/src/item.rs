//! Interned items: the universal element of annotated transactions.
//!
//! A tuple in an annotated relation (paper Definition 4.1) carries *data
//! values* and *annotations*; generalization (§4.1) adds a third population,
//! *concept labels*. All three are interned into a single 32-bit [`Item`]
//! with a 2-bit namespace tag, so transactions, itemsets, and rules are flat
//! integer slices with no string handling on the hot path.
//!
//! The tag occupies the top bits, which makes plain integer ordering sort
//! data values before raw annotations before labels — exactly the layout the
//! miner wants (LHS data prefix, annotation suffix).

use crate::fxhash::FxHashMap;
use anno_semiring::Var;

/// The namespace an item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ItemKind {
    /// A data value (cell content) — Definition 4.1's `x_i`.
    Data = 0,
    /// A raw annotation — Definition 4.1's `a_j`.
    Annotation = 1,
    /// A generalization concept label (§4.1), e.g. "Invalidation".
    Label = 2,
}

impl ItemKind {
    /// All namespaces, in tag order.
    pub const ALL: [ItemKind; 3] = [ItemKind::Data, ItemKind::Annotation, ItemKind::Label];
}

const TAG_SHIFT: u32 = 30;
const INDEX_MASK: u32 = (1 << TAG_SHIFT) - 1;

/// An interned item: a data value, raw annotation, or concept label.
///
/// At most `2^30` distinct names per namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item(u32);

impl Item {
    /// Construct an item from a namespace and dense index.
    pub fn new(kind: ItemKind, index: u32) -> Item {
        assert!(index <= INDEX_MASK, "item index overflow: {index}");
        Item(((kind as u32) << TAG_SHIFT) | index)
    }

    /// A data-value item.
    pub fn data(index: u32) -> Item {
        Item::new(ItemKind::Data, index)
    }

    /// A raw-annotation item.
    pub fn annotation(index: u32) -> Item {
        Item::new(ItemKind::Annotation, index)
    }

    /// A concept-label item.
    pub fn label(index: u32) -> Item {
        Item::new(ItemKind::Label, index)
    }

    /// The namespace of this item.
    pub fn kind(self) -> ItemKind {
        match self.0 >> TAG_SHIFT {
            0 => ItemKind::Data,
            1 => ItemKind::Annotation,
            2 => ItemKind::Label,
            tag => unreachable!("corrupt item tag {tag}"),
        }
    }

    /// The dense index within the namespace.
    pub fn index(self) -> u32 {
        self.0 & INDEX_MASK
    }

    /// `true` iff this is a data value.
    pub fn is_data(self) -> bool {
        self.kind() == ItemKind::Data
    }

    /// `true` iff this is a raw annotation or a concept label — the
    /// populations that may appear on the R.H.S. of the paper's rules.
    pub fn is_annotation_like(self) -> bool {
        !self.is_data()
    }

    /// The raw tagged representation (stable across runs for equal interns).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstruct from [`Item::raw`].
    pub fn from_raw(raw: u32) -> Item {
        let item = Item(raw);
        let _ = item.kind(); // validate tag
        item
    }

    /// The provenance variable standing for this item in semiring-land.
    pub fn as_var(self) -> Var {
        Var(self.0)
    }

    /// Inverse of [`Item::as_var`].
    pub fn from_var(v: Var) -> Item {
        Item::from_raw(v.0)
    }
}

/// Bidirectional name ↔ [`Item`] interner, one table per namespace.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    names: [Vec<String>; 3],
    lookup: [FxHashMap<String, u32>; 3],
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Intern `name` in `kind`'s namespace, returning the (new or existing)
    /// item.
    pub fn intern(&mut self, kind: ItemKind, name: &str) -> Item {
        let ns = kind as usize;
        if let Some(&idx) = self.lookup[ns].get(name) {
            return Item::new(kind, idx);
        }
        let idx = u32::try_from(self.names[ns].len()).expect("vocabulary overflow");
        self.names[ns].push(name.to_owned());
        self.lookup[ns].insert(name.to_owned(), idx);
        Item::new(kind, idx)
    }

    /// Intern a data value.
    pub fn data(&mut self, name: &str) -> Item {
        self.intern(ItemKind::Data, name)
    }

    /// Intern a raw annotation.
    pub fn annotation(&mut self, name: &str) -> Item {
        self.intern(ItemKind::Annotation, name)
    }

    /// Intern a concept label.
    pub fn label(&mut self, name: &str) -> Item {
        self.intern(ItemKind::Label, name)
    }

    /// Look up an existing item by name without interning.
    pub fn get(&self, kind: ItemKind, name: &str) -> Option<Item> {
        self.lookup[kind as usize]
            .get(name)
            .map(|&idx| Item::new(kind, idx))
    }

    /// The name of an item. Panics on an item from a different vocabulary
    /// with an out-of-range index.
    pub fn name(&self, item: Item) -> &str {
        &self.names[item.kind() as usize][item.index() as usize]
    }

    /// Number of interned names in a namespace.
    pub fn count(&self, kind: ItemKind) -> usize {
        self.names[kind as usize].len()
    }

    /// Iterate all items of a namespace in interning order.
    pub fn items(&self, kind: ItemKind) -> impl Iterator<Item = Item> + '_ {
        (0..self.count(kind) as u32).map(move |i| Item::new(kind, i))
    }

    /// Render a slice of items as a human-readable list.
    pub fn render(&self, items: &[Item]) -> String {
        let mut out = String::new();
        for (i, &item) in items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(self.name(item));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_layout_orders_namespaces() {
        let d = Item::data(1000);
        let a = Item::annotation(0);
        let l = Item::label(0);
        assert!(d < a && a < l, "data < annotation < label");
        assert_eq!(d.kind(), ItemKind::Data);
        assert_eq!(a.kind(), ItemKind::Annotation);
        assert_eq!(l.kind(), ItemKind::Label);
        assert_eq!(d.index(), 1000);
    }

    #[test]
    fn annotation_like_covers_annotations_and_labels() {
        assert!(!Item::data(1).is_annotation_like());
        assert!(Item::annotation(1).is_annotation_like());
        assert!(Item::label(1).is_annotation_like());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn index_overflow_is_rejected() {
        let _ = Item::data(1 << 30);
    }

    #[test]
    fn raw_and_var_roundtrip() {
        let a = Item::annotation(77);
        assert_eq!(Item::from_raw(a.raw()), a);
        assert_eq!(Item::from_var(a.as_var()), a);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a1 = v.annotation("Annot_1");
        let a2 = v.annotation("Annot_1");
        assert_eq!(a1, a2);
        assert_eq!(v.count(ItemKind::Annotation), 1);
        assert_eq!(v.name(a1), "Annot_1");
    }

    #[test]
    fn namespaces_are_disjoint() {
        let mut v = Vocabulary::new();
        let d = v.data("42");
        let a = v.annotation("42");
        assert_ne!(d, a);
        assert_eq!(v.name(d), "42");
        assert_eq!(v.name(a), "42");
    }

    #[test]
    fn get_does_not_intern() {
        let mut v = Vocabulary::new();
        assert_eq!(v.get(ItemKind::Data, "x"), None);
        let d = v.data("x");
        assert_eq!(v.get(ItemKind::Data, "x"), Some(d));
    }

    #[test]
    fn items_iterates_in_interning_order() {
        let mut v = Vocabulary::new();
        let a = v.annotation("a");
        let b = v.annotation("b");
        assert_eq!(
            v.items(ItemKind::Annotation).collect::<Vec<_>>(),
            vec![a, b]
        );
    }

    #[test]
    fn render_joins_names() {
        let mut v = Vocabulary::new();
        let x = v.data("28");
        let a = v.annotation("Annot_1");
        assert_eq!(v.render(&[x, a]), "28, Annot_1");
    }
}
