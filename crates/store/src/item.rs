//! Interned items: the universal element of annotated transactions.
//!
//! A tuple in an annotated relation (paper Definition 4.1) carries *data
//! values* and *annotations*; generalization (§4.1) adds a third population,
//! *concept labels*. All three are interned into a single 32-bit [`Item`]
//! with a 2-bit namespace tag, so transactions, itemsets, and rules are flat
//! integer slices with no string handling on the hot path.
//!
//! The tag occupies the top bits, which makes plain integer ordering sort
//! data values before raw annotations before labels — exactly the layout the
//! miner wants (LHS data prefix, annotation suffix).

use anno_semiring::Var;

/// The namespace an item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ItemKind {
    /// A data value (cell content) — Definition 4.1's `x_i`.
    Data = 0,
    /// A raw annotation — Definition 4.1's `a_j`.
    Annotation = 1,
    /// A generalization concept label (§4.1), e.g. "Invalidation".
    Label = 2,
}

impl ItemKind {
    /// All namespaces, in tag order.
    pub const ALL: [ItemKind; 3] = [ItemKind::Data, ItemKind::Annotation, ItemKind::Label];
}

const TAG_SHIFT: u32 = 30;
const INDEX_MASK: u32 = (1 << TAG_SHIFT) - 1;

/// An interned item: a data value, raw annotation, or concept label.
///
/// At most `2^30` distinct names per namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item(u32);

impl Item {
    /// Construct an item from a namespace and dense index.
    pub fn new(kind: ItemKind, index: u32) -> Item {
        assert!(index <= INDEX_MASK, "item index overflow: {index}");
        Item(((kind as u32) << TAG_SHIFT) | index)
    }

    /// A data-value item.
    pub fn data(index: u32) -> Item {
        Item::new(ItemKind::Data, index)
    }

    /// A raw-annotation item.
    pub fn annotation(index: u32) -> Item {
        Item::new(ItemKind::Annotation, index)
    }

    /// A concept-label item.
    pub fn label(index: u32) -> Item {
        Item::new(ItemKind::Label, index)
    }

    /// The namespace of this item.
    pub fn kind(self) -> ItemKind {
        match self.0 >> TAG_SHIFT {
            0 => ItemKind::Data,
            1 => ItemKind::Annotation,
            2 => ItemKind::Label,
            // anno-lint: allow(panic-path) -- the tag field is written only by the three constructors; a fourth value is memory corruption
            tag => unreachable!("corrupt item tag {tag}"),
        }
    }

    /// The dense index within the namespace.
    pub fn index(self) -> u32 {
        self.0 & INDEX_MASK
    }

    /// `true` iff this is a data value.
    pub fn is_data(self) -> bool {
        self.kind() == ItemKind::Data
    }

    /// `true` iff this is a raw annotation or a concept label — the
    /// populations that may appear on the R.H.S. of the paper's rules.
    pub fn is_annotation_like(self) -> bool {
        !self.is_data()
    }

    /// The raw tagged representation (stable across runs for equal interns).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstruct from [`Item::raw`].
    pub fn from_raw(raw: u32) -> Item {
        let item = Item(raw);
        let _ = item.kind(); // validate tag
        item
    }

    /// The provenance variable standing for this item in semiring-land.
    pub fn as_var(self) -> Var {
        Var(self.0)
    }

    /// Inverse of [`Item::as_var`].
    pub fn from_var(v: Var) -> Item {
        Item::from_raw(v.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_layout_orders_namespaces() {
        let d = Item::data(1000);
        let a = Item::annotation(0);
        let l = Item::label(0);
        assert!(d < a && a < l, "data < annotation < label");
        assert_eq!(d.kind(), ItemKind::Data);
        assert_eq!(a.kind(), ItemKind::Annotation);
        assert_eq!(l.kind(), ItemKind::Label);
        assert_eq!(d.index(), 1000);
    }

    #[test]
    fn annotation_like_covers_annotations_and_labels() {
        assert!(!Item::data(1).is_annotation_like());
        assert!(Item::annotation(1).is_annotation_like());
        assert!(Item::label(1).is_annotation_like());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn index_overflow_is_rejected() {
        let _ = Item::data(1 << 30);
    }

    #[test]
    fn raw_and_var_roundtrip() {
        let a = Item::annotation(77);
        assert_eq!(Item::from_raw(a.raw()), a);
        assert_eq!(Item::from_var(a.as_var()), a);
    }
}
