//! Persistent, structurally shared tuple storage.
//!
//! The serving layer publishes immutable snapshots of an
//! [`AnnotatedRelation`] after every effective write drain. With tuples in
//! one flat `Vec<Tuple>`, every such publish forced an O(|D|) deep clone
//! (a million `Vec<Item>` heap allocations at a million tuples) even when
//! the drain touched three tuples. This module replaces the flat vector
//! with a **chunked persistent store**: tuples live in fixed-capacity
//! [`Segment`] blocks behind `Arc`s, so
//!
//! * cloning the store is O(#segments) pointer copies (the *spine*),
//! * mutating a tuple copies only its segment (≤ [`SEGMENT_CAP`] tuples)
//!   via `Arc::make_mut`, and only when that segment is actually shared
//!   with a published snapshot,
//! * a snapshot holds the segments it was published with forever — later
//!   writes copy-on-write fresh segments and never touch the reader's.
//!
//! Liveness is tracked per segment (a fixed bitmap word array), so tuple
//! deletion shares the same copy-on-write granularity and the store needs
//! no global alive bitmap.
//!
//! [`AnnotatedRelation`]: crate::relation::AnnotatedRelation

use std::sync::Arc;

use crate::tuple::Tuple;

/// log2 of [`SEGMENT_CAP`]; slot → (segment, offset) is a shift + mask.
pub const SEGMENT_BITS: u32 = 10;

/// Tuples per segment. Small enough that one copy-on-write clone is
/// delta-scale work; large enough that the spine stays tiny (≈ |D| / 1024
/// pointers).
pub const SEGMENT_CAP: usize = 1 << SEGMENT_BITS;

const WORDS: usize = SEGMENT_CAP / 64;
const OFFSET_MASK: u32 = (SEGMENT_CAP - 1) as u32;

/// One immutable-once-shared block of tuples with its own liveness bitmap.
#[derive(Debug, Clone)]
pub struct Segment {
    tuples: Vec<Tuple>,
    alive: [u64; WORDS],
    live: u32,
}

impl Default for Segment {
    fn default() -> Self {
        Segment {
            tuples: Vec::new(),
            alive: [0; WORDS],
            live: 0,
        }
    }
}

impl Segment {
    /// Number of allocated slots (live + tombstoned).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff no slots are allocated.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        self.live as usize
    }

    /// `true` iff no further tuple fits.
    pub fn is_full(&self) -> bool {
        self.tuples.len() == SEGMENT_CAP
    }

    /// `true` iff local slot `offset` holds a live tuple.
    pub fn is_live(&self, offset: u32) -> bool {
        (offset as usize) < self.tuples.len()
            && self.alive[offset as usize / 64] & (1 << (offset % 64)) != 0
    }

    /// The tuple at local slot `offset`, live or tombstoned.
    pub fn slot(&self, offset: u32) -> Option<&Tuple> {
        self.tuples.get(offset as usize)
    }

    /// The tuple at local slot `offset`, if live.
    pub fn get(&self, offset: u32) -> Option<&Tuple> {
        self.is_live(offset).then(|| &self.tuples[offset as usize])
    }

    /// Iterate live `(offset, tuple)` pairs in offset order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &Tuple)> + '_ {
        self.tuples
            .iter()
            .enumerate()
            .filter(|&(off, _)| self.alive[off / 64] & (1 << (off % 64)) != 0)
            .map(|(off, t)| (off as u32, t))
    }

    fn push(&mut self, tuple: Tuple) -> u32 {
        debug_assert!(!self.is_full());
        let off = self.tuples.len() as u32;
        self.tuples.push(tuple);
        self.alive[off as usize / 64] |= 1 << (off % 64);
        self.live += 1;
        off
    }

    fn delete(&mut self, offset: u32) -> bool {
        if !self.is_live(offset) {
            return false;
        }
        self.alive[offset as usize / 64] &= !(1 << (offset % 64));
        self.live -= 1;
        true
    }

    /// Validate the liveness bitmap against the slot range and counter.
    fn check(&self) -> Result<(), String> {
        let mut counted = 0u32;
        for (word_idx, word) in self.alive.iter().enumerate() {
            for bit in 0..64 {
                if word & (1 << bit) != 0 {
                    let off = word_idx * 64 + bit;
                    if off >= self.tuples.len() {
                        return Err(format!("alive bit {off} beyond segment len"));
                    }
                    counted += 1;
                }
            }
        }
        if counted != self.live {
            return Err(format!("segment live {} != bitmap {counted}", self.live));
        }
        Ok(())
    }
}

/// The persistent tuple store: a spine of `Arc`-shared segments.
///
/// `Clone` is the snapshot operation — O(#segments) `Arc` bumps. All
/// mutation goes through `Arc::make_mut`, so a clone and its origin
/// diverge segment-by-segment as writes land, sharing everything else.
#[derive(Debug, Clone, Default)]
pub struct SegmentStore {
    segments: Vec<Arc<Segment>>,
    slots: usize,
    live: usize,
}

impl SegmentStore {
    /// An empty store.
    pub fn new() -> Self {
        SegmentStore::default()
    }

    /// Total slots ever allocated (live + tombstoned).
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// `true` iff no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The segment spine, for segment-at-a-time consumers (mining
    /// projections, sharing assertions).
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// How many spine positions `self` and `other` share *physically*
    /// (same `Arc`). The structural-sharing meter: a snapshot clone starts
    /// at `segments().len()` and loses one per copied-on-write segment.
    pub fn shared_segments_with(&self, other: &SegmentStore) -> usize {
        self.segments
            .iter()
            .zip(&other.segments)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Append a tuple, returning its slot.
    pub fn push(&mut self, tuple: Tuple) -> u32 {
        let slot = u32::try_from(self.slots).expect("store overflow");
        if self.segments.last().is_none_or(|s| s.is_full()) {
            self.segments.push(Arc::new(Segment::default()));
        }
        let seg = Arc::make_mut(self.segments.last_mut().expect("just ensured"));
        let off = seg.push(tuple);
        debug_assert_eq!(
            slot,
            ((self.segments.len() as u32 - 1) << SEGMENT_BITS) | off
        );
        self.slots += 1;
        self.live += 1;
        slot
    }

    /// The tuple at `slot`, if live.
    pub fn get(&self, slot: u32) -> Option<&Tuple> {
        self.segments
            .get((slot >> SEGMENT_BITS) as usize)?
            .get(slot & OFFSET_MASK)
    }

    /// The tuple at `slot`, live or tombstoned.
    pub fn slot(&self, slot: u32) -> Option<&Tuple> {
        self.segments
            .get((slot >> SEGMENT_BITS) as usize)?
            .slot(slot & OFFSET_MASK)
    }

    /// `true` iff `slot` holds a live tuple.
    pub fn is_live(&self, slot: u32) -> bool {
        self.segments
            .get((slot >> SEGMENT_BITS) as usize)
            .is_some_and(|s| s.is_live(slot & OFFSET_MASK))
    }

    /// Tombstone `slot`. Returns `true` if it was live. Copies the
    /// affected segment iff it is shared.
    pub fn delete(&mut self, slot: u32) -> bool {
        let Some(seg) = self.segments.get_mut((slot >> SEGMENT_BITS) as usize) else {
            return false;
        };
        // Shared-read precheck: a dead slot must not copy-on-write.
        if !seg.is_live(slot & OFFSET_MASK) {
            return false;
        }
        let deleted = Arc::make_mut(seg).delete(slot & OFFSET_MASK);
        debug_assert!(deleted);
        self.live -= 1;
        true
    }

    /// Mutate the live tuple at `slot` in place, copying its segment iff
    /// shared. Returns `None` (without copying) if the slot is dead.
    ///
    /// Callers that may decide *not* to change the tuple (e.g. duplicate
    /// annotation adds) should pre-check via [`SegmentStore::get`] so a
    /// no-op never pays the copy.
    pub fn update<R>(&mut self, slot: u32, f: impl FnOnce(&mut Tuple) -> R) -> Option<R> {
        let seg = self.segments.get_mut((slot >> SEGMENT_BITS) as usize)?;
        if !seg.is_live(slot & OFFSET_MASK) {
            return None;
        }
        let seg = Arc::make_mut(seg);
        Some(f(&mut seg.tuples[(slot & OFFSET_MASK) as usize]))
    }

    /// Iterate live `(slot, tuple)` pairs in slot order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &Tuple)> + '_ {
        self.segments.iter().enumerate().flat_map(|(idx, seg)| {
            let base = (idx as u32) << SEGMENT_BITS;
            seg.iter_live().map(move |(off, t)| (base | off, t))
        })
    }

    /// Iterate **all** allocated `(slot, tuple, live)` triples in slot
    /// order, tombstones included (consistency checks, persistence).
    pub fn iter_slots(&self) -> impl Iterator<Item = (u32, &Tuple, bool)> + '_ {
        self.segments.iter().enumerate().flat_map(|(idx, seg)| {
            let base = (idx as u32) << SEGMENT_BITS;
            (0..seg.len() as u32).map(move |off| {
                (
                    base | off,
                    seg.slot(off).expect("offset in range"),
                    seg.is_live(off),
                )
            })
        })
    }

    /// Validate spine invariants: only the last segment may be partial,
    /// per-segment bitmaps and counters agree, and the global counters sum.
    pub fn check(&self) -> Result<(), String> {
        let mut slots = 0usize;
        let mut live = 0usize;
        for (idx, seg) in self.segments.iter().enumerate() {
            if idx + 1 < self.segments.len() && !seg.is_full() {
                return Err(format!("non-terminal segment {idx} is partial"));
            }
            seg.check().map_err(|e| format!("segment {idx}: {e}"))?;
            slots += seg.len();
            live += seg.live_count();
        }
        if slots != self.slots {
            return Err(format!("slot count {} != actual {slots}", self.slots));
        }
        if live != self.live {
            return Err(format!("live count {} != actual {live}", self.live));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn t(i: u32) -> Tuple {
        Tuple::from_items(vec![Item::data(i)])
    }

    #[test]
    fn push_get_delete_roundtrip() {
        let mut s = SegmentStore::new();
        let a = s.push(t(1));
        let b = s.push(t(2));
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.get(a).unwrap().items(), &[Item::data(1)]);
        assert!(s.delete(a));
        assert!(!s.delete(a), "double delete is a no-op");
        assert!(s.get(a).is_none());
        assert!(s.slot(a).is_some(), "tombstoned slot still addressable");
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.slot_count(), 2);
        s.check().unwrap();
    }

    #[test]
    fn slots_split_across_segments() {
        let mut s = SegmentStore::new();
        let n = SEGMENT_CAP + 5;
        for i in 0..n {
            assert_eq!(s.push(t(i as u32)), i as u32);
        }
        assert_eq!(s.segments().len(), 2);
        assert_eq!(s.segments()[0].len(), SEGMENT_CAP);
        assert_eq!(s.segments()[1].len(), 5);
        assert_eq!(s.iter_live().count(), n);
        let collected: Vec<u32> = s.iter_live().map(|(slot, _)| slot).collect();
        assert_eq!(collected, (0..n as u32).collect::<Vec<_>>());
        s.check().unwrap();
    }

    #[test]
    fn clone_shares_all_segments_until_written() {
        let mut s = SegmentStore::new();
        for i in 0..(SEGMENT_CAP * 3) as u32 {
            s.push(t(i));
        }
        let snap = s.clone();
        assert_eq!(s.shared_segments_with(&snap), 3);

        // A write to segment 1 unshares exactly that segment.
        s.delete(SEGMENT_CAP as u32 + 7);
        assert_eq!(s.shared_segments_with(&snap), 2);
        // The snapshot still sees the deleted tuple.
        assert!(snap.is_live(SEGMENT_CAP as u32 + 7));
        assert!(!s.is_live(SEGMENT_CAP as u32 + 7));

        // Unshared segments mutate in place: no further divergence.
        s.delete(SEGMENT_CAP as u32 + 8);
        assert_eq!(s.shared_segments_with(&snap), 2);
        s.check().unwrap();
        snap.check().unwrap();
    }

    #[test]
    fn update_copies_only_when_shared_and_skips_dead_slots() {
        let mut s = SegmentStore::new();
        s.push(t(1));
        s.push(t(2));
        let snap = s.clone();
        let r = s.update(0, |tup| {
            tup.add_annotation(Item::annotation(9));
        });
        assert!(r.is_some());
        assert!(s.get(0).unwrap().contains(Item::annotation(9)));
        assert!(!snap.get(0).unwrap().contains(Item::annotation(9)));

        s.delete(1);
        assert!(s.update(1, |_| ()).is_none(), "dead slot is untouchable");
        assert!(s.update(99, |_| ()).is_none(), "out of range");
    }

    #[test]
    fn iter_slots_exposes_tombstones() {
        let mut s = SegmentStore::new();
        s.push(t(1));
        s.push(t(2));
        s.delete(0);
        let all: Vec<(u32, bool)> = s.iter_slots().map(|(slot, _, live)| (slot, live)).collect();
        assert_eq!(all, vec![(0, false), (1, true)]);
    }
}
