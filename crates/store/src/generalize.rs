//! Annotation generalization (paper §4.1, Figs. 8–10).
//!
//! Raw annotations come in many formats — free text, flags, timestamps — so
//! correlations on raw values are brittle. A [`Taxonomy`] maps annotations
//! onto *concept labels* ("Invalid", "wrong", "incorrect" ⇒ `Invalidation`)
//! and labels onto higher labels (multi-level hierarchies à la Han & Fu,
//! the paper's reference [1]). Applying a taxonomy to a relation appends
//! each implied label to the carrying tuples — at most once per tuple —
//! producing the *extended annotated database* on which ordinary mining
//! then discovers generalization-based correlations.
//!
//! Formally the taxonomy induces a map on provenance variables, so
//! generalization is a semiring homomorphism on tuple lineage
//! ([`Taxonomy::lineage_hom`]); the property tests in `anno-semiring`
//! cover the homomorphism laws, and the tests here cover the database side.

use crate::fxhash::FxHashMap;
use crate::item::{Item, ItemKind};
use crate::relation::AnnotatedRelation;
use crate::vocab::Vocabulary;
use anno_semiring::Var;

/// A generalization taxonomy: direct parent labels per annotation-like item.
///
/// The structure is a DAG: raw annotations and labels may each have multiple
/// direct parents, and labels may generalize further (multi-level). Cycles
/// are rejected at rule-insertion time.
#[derive(Debug, Clone, Default)]
pub struct Taxonomy {
    parents: FxHashMap<Item, Vec<Item>>,
}

/// A single generalization rule as parsed from a Fig. 9 rules file:
/// each source generalizes to the label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralizationRule {
    /// The annotations or labels being generalized.
    pub sources: Vec<Item>,
    /// The concept label they generalize to.
    pub label: Item,
}

impl Taxonomy {
    /// An empty taxonomy.
    pub fn new() -> Self {
        Taxonomy::default()
    }

    /// Add one edge `source → label`. Returns `false` (and ignores the
    /// edge) if it would create a cycle or is a self-loop.
    pub fn add_edge(&mut self, source: Item, label: Item) -> bool {
        assert!(source.is_annotation_like(), "only annotations generalize");
        assert!(
            label.kind() == ItemKind::Label,
            "generalization target must be a label"
        );
        if source == label || self.ancestors(label).contains(&source) {
            return false;
        }
        let parents = self.parents.entry(source).or_default();
        if parents.contains(&label) {
            return false;
        }
        parents.push(label);
        true
    }

    /// Add a parsed rule: every source gains the label as a parent.
    pub fn add_rule(&mut self, rule: &GeneralizationRule) {
        for &src in &rule.sources {
            self.add_edge(src, rule.label);
        }
    }

    /// Direct parents of `item` (empty slice if none).
    pub fn parents(&self, item: Item) -> &[Item] {
        self.parents.get(&item).map_or(&[], Vec::as_slice)
    }

    /// All (transitive) ancestor labels of `item`, deduplicated, in BFS
    /// order from the item.
    pub fn ancestors(&self, item: Item) -> Vec<Item> {
        let mut out: Vec<Item> = Vec::new();
        let mut frontier = vec![item];
        while let Some(cur) = frontier.pop() {
            for &p in self.parents(cur) {
                if !out.contains(&p) {
                    out.push(p);
                    frontier.push(p);
                }
            }
        }
        out
    }

    /// `true` iff `ancestor` is a strict ancestor of `item`.
    pub fn is_ancestor(&self, ancestor: Item, item: Item) -> bool {
        self.ancestors(item).contains(&ancestor)
    }

    /// Number of edges in the taxonomy.
    pub fn edge_count(&self) -> usize {
        self.parents.values().map(Vec::len).sum()
    }

    /// Build the *extended annotated database* (paper Fig. 10): a copy of
    /// `relation` where every tuple additionally carries the ancestor labels
    /// of each of its annotations, each at most once.
    pub fn extend_relation(&self, relation: &AnnotatedRelation) -> AnnotatedRelation {
        let mut out = relation.clone();
        self.extend_in_place(&mut out);
        out
    }

    /// In-place variant of [`Taxonomy::extend_relation`].
    pub fn extend_in_place(&self, relation: &mut AnnotatedRelation) {
        let tids: Vec<_> = relation.iter().map(|(tid, _)| tid).collect();
        for tid in tids {
            // Collect first: we cannot mutate while borrowing the tuple.
            let mut labels: Vec<Item> = Vec::new();
            for &ann in relation.tuple(tid).expect("live tuple").annotations() {
                for anc in self.ancestors(ann) {
                    if !labels.contains(&anc) {
                        labels.push(anc);
                    }
                }
            }
            for label in labels {
                relation.add_annotation(tid, label);
            }
        }
    }

    /// The labels a fresh annotation implies on a tuple, given the tuple's
    /// current annotation set — used by incremental maintenance to extend
    /// Case-3 deltas with generalization labels.
    pub fn implied_labels(&self, ann: Item, already_present: &[Item]) -> Vec<Item> {
        self.ancestors(ann)
            .into_iter()
            .filter(|l| !already_present.contains(l))
            .collect()
    }

    /// The semiring-homomorphism view: a variable map sending each
    /// annotation to its *first-level* concept (or itself if ungeneralized).
    ///
    /// Applying this through [`anno_semiring::rename`] on tuple lineage is
    /// the formal counterpart of [`Taxonomy::extend_relation`] restricted to
    /// one level.
    pub fn lineage_hom(&self) -> impl Fn(Var) -> Var + '_ {
        move |v: Var| {
            let item = Item::from_var(v);
            match self.parents(item).first() {
                Some(&label) => label.as_var(),
                None => v,
            }
        }
    }
}

/// Parse a Fig. 9-style rules file into rules against `vocab`.
///
/// Line grammar (one rule per line, `#` comments, blank lines ignored):
///
/// ```text
/// Annot_1, Annot_5 -> Annot_X
/// Annot_4 => Annot_Y
/// Annot_X -> Annot_TOP          # multi-level: label to parent label
/// ```
///
/// Sources name raw annotations unless already interned as labels (which is
/// how multi-level chains are expressed: a label defined on an earlier line
/// can be generalized further on a later line). Targets are always labels.
pub fn parse_rules(text: &str, vocab: &mut Vocabulary) -> Result<Vec<GeneralizationRule>, String> {
    let mut rules = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (lhs, rhs) = line
            .split_once("=>")
            .or_else(|| line.split_once("->"))
            .ok_or_else(|| format!("line {}: missing '->' in {line:?}", lineno + 1))?;
        let label_name = rhs.trim();
        if label_name.is_empty() {
            return Err(format!("line {}: empty label", lineno + 1));
        }
        let label = vocab.label(label_name);
        let mut sources = Vec::new();
        // Sources are comma-separated (annotation names may contain spaces).
        for tok in lhs.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            // A source that was already defined as a label refers to that
            // label (multi-level chain); otherwise it is a raw annotation.
            let item = vocab
                .get(ItemKind::Label, tok)
                .unwrap_or_else(|| vocab.annotation(tok));
            sources.push(item);
        }
        if sources.is_empty() {
            return Err(format!("line {}: no sources", lineno + 1));
        }
        rules.push(GeneralizationRule { sources, label });
    }
    Ok(rules)
}

/// Build a taxonomy directly from rules text (see [`parse_rules`]).
pub fn taxonomy_from_rules(text: &str, vocab: &mut Vocabulary) -> Result<Taxonomy, String> {
    let rules = parse_rules(text, vocab)?;
    let mut tax = Taxonomy::new();
    for rule in &rules {
        tax.add_rule(rule);
    }
    Ok(tax)
}

/// Build generalization rules by keyword: every annotation whose *name*
/// contains one of the keywords (case-insensitive) generalizes to `label`.
///
/// This captures the paper's motivating example (Fig. 8): free-text
/// annotations containing "Invalid", "wrong", or "incorrect" all generalize
/// to the `Invalidation` concept.
pub fn keyword_rule(
    vocab: &mut Vocabulary,
    keywords: &[&str],
    label_name: &str,
) -> GeneralizationRule {
    let label = vocab.label(label_name);
    let lowered: Vec<String> = keywords.iter().map(|k| k.to_lowercase()).collect();
    let sources: Vec<Item> = vocab
        .items(ItemKind::Annotation)
        .filter(|&a| {
            let name = vocab.name(a).to_lowercase();
            lowered.iter().any(|k| name.contains(k.as_str()))
        })
        .collect();
    GeneralizationRule { sources, label }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn setup() -> (AnnotatedRelation, Item, Item, Item) {
        let mut rel = AnnotatedRelation::new("R");
        let a1 = rel.vocab_mut().annotation("Annot_1");
        let a4 = rel.vocab_mut().annotation("Annot_4");
        let a5 = rel.vocab_mut().annotation("Annot_5");
        let d = rel.vocab_mut().data("10");
        rel.insert(Tuple::new([d], [a1, a5]));
        rel.insert(Tuple::new([d], [a4]));
        rel.insert(Tuple::new([d], []));
        (rel, a1, a4, a5)
    }

    #[test]
    fn parse_rules_supports_both_arrows_and_comments() {
        let mut vocab = Vocabulary::new();
        let rules = parse_rules(
            "# comment\nAnnot_1, Annot_5 -> Annot_X\nAnnot_4 => Annot_Y\n\n",
            &mut vocab,
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].sources.len(), 2);
        assert_eq!(vocab.name(rules[0].label), "Annot_X");
        assert_eq!(rules[1].sources.len(), 1);
    }

    #[test]
    fn parse_rules_rejects_malformed_lines() {
        let mut vocab = Vocabulary::new();
        assert!(parse_rules("Annot_1 Annot_X", &mut vocab).is_err());
        assert!(parse_rules("-> Annot_X", &mut vocab).is_err());
        assert!(parse_rules("Annot_1 ->   ", &mut vocab).is_err());
    }

    #[test]
    fn extend_relation_appends_labels_once() {
        let (mut rel, ..) = setup();
        let tax = taxonomy_from_rules(
            "Annot_1, Annot_5 -> Annot_X\nAnnot_4 -> Annot_Y",
            rel.vocab_mut(),
        )
        .unwrap();
        tax.extend_in_place(&mut rel);
        let x = rel.vocab().get(ItemKind::Label, "Annot_X").unwrap();
        let y = rel.vocab().get(ItemKind::Label, "Annot_Y").unwrap();
        // Tuple 0 had both Annot_1 and Annot_5: the label applies once.
        let t0 = rel.tuple(crate::tuple::TupleId(0)).unwrap();
        assert_eq!(t0.annotations().iter().filter(|&&a| a == x).count(), 1);
        // Tuple 1 had Annot_4 → Annot_Y.
        assert!(rel.tuple(crate::tuple::TupleId(1)).unwrap().contains(y));
        // Tuple 2 was unannotated → untouched.
        assert!(rel
            .tuple(crate::tuple::TupleId(2))
            .unwrap()
            .is_unannotated());
        assert_eq!(rel.index().frequency(x), 1);
        rel.check_consistency().unwrap();
    }

    #[test]
    fn multi_level_chains_reach_all_ancestors() {
        let mut vocab = Vocabulary::new();
        let tax = taxonomy_from_rules("Annot_1 -> Mid\nMid -> Top", &mut vocab).unwrap();
        let a1 = vocab.get(ItemKind::Annotation, "Annot_1").unwrap();
        let mid = vocab.get(ItemKind::Label, "Mid").unwrap();
        let top = vocab.get(ItemKind::Label, "Top").unwrap();
        assert_eq!(tax.ancestors(a1), vec![mid, top]);
        assert!(tax.is_ancestor(top, a1));
        assert!(!tax.is_ancestor(a1, a1));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut vocab = Vocabulary::new();
        let mut tax = Taxonomy::new();
        let a = vocab.label("A");
        let b = vocab.label("B");
        assert!(tax.add_edge(a, b));
        assert!(!tax.add_edge(b, a), "cycle must be rejected");
        assert!(!tax.add_edge(a, a), "self-loop must be rejected");
        assert!(!tax.add_edge(a, b), "duplicate edge must be rejected");
        assert_eq!(tax.edge_count(), 1);
    }

    #[test]
    fn implied_labels_skip_present_ones() {
        let mut vocab = Vocabulary::new();
        let tax = taxonomy_from_rules("Annot_1 -> X\nAnnot_1 -> Y", &mut vocab).unwrap();
        let a1 = vocab.get(ItemKind::Annotation, "Annot_1").unwrap();
        let x = vocab.get(ItemKind::Label, "X").unwrap();
        let y = vocab.get(ItemKind::Label, "Y").unwrap();
        assert_eq!(tax.implied_labels(a1, &[x]), vec![y]);
    }

    #[test]
    fn keyword_rule_matches_substrings_case_insensitively() {
        let mut vocab = Vocabulary::new();
        let bad = vocab.annotation("flagged: INVALID entry");
        let wrong = vocab.annotation("this looks wrong");
        let fine = vocab.annotation("verified by curator");
        let rule = keyword_rule(&mut vocab, &["invalid", "wrong"], "Invalidation");
        assert!(rule.sources.contains(&bad));
        assert!(rule.sources.contains(&wrong));
        assert!(!rule.sources.contains(&fine));
        assert_eq!(vocab.name(rule.label), "Invalidation");
    }

    #[test]
    fn lineage_hom_maps_generalized_annotations() {
        let mut vocab = Vocabulary::new();
        let tax = taxonomy_from_rules("Annot_1 -> X", &mut vocab).unwrap();
        let a1 = vocab.get(ItemKind::Annotation, "Annot_1").unwrap();
        let a2 = vocab.annotation("Annot_2");
        let x = vocab.get(ItemKind::Label, "X").unwrap();
        let h = tax.lineage_hom();
        assert_eq!(h(a1.as_var()), x.as_var());
        assert_eq!(h(a2.as_var()), a2.as_var());
    }
}
