//! The paper's line-oriented text formats.
//!
//! Three formats appear in the report and are reproduced byte-compatibly:
//!
//! * **Dataset files** (Fig. 4): one tuple per line; whitespace/comma
//!   separated tokens; all-digit tokens are data-value ids, everything else
//!   is an annotation (`28 85 102 Annot_4 Annot_5`). The same format carries
//!   annotated and un-annotated tuple batches (Cases 1–2).
//! * **Annotation batches** (Fig. 14): `150: Annot_3` — attach `Annot_3` to
//!   the tuple at 0-based position 150 (Case 3).
//! * **Generalization rules** (Fig. 9) — parsed in
//!   [`crate::generalize::parse_rules`].
//!
//! Parsers take `&str` and a [`Vocabulary`]; writers emit deterministic,
//! diff-friendly output (buffered, per the perf-book I/O guidance, when
//! writing through the `io::Write` adapters).

use std::io::{self, BufRead, Write};

use crate::item::{Item, ItemKind};
use crate::relation::{AnnotatedRelation, AnnotationUpdate};
use crate::tuple::{Tuple, TupleId};
use crate::vocab::Vocabulary;

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The Fig. 4 token-kind convention: digit-only tokens are data values,
/// anything else is an annotation. The single classification both the
/// dataset parser and name-resolving layers (e.g. the serving protocol)
/// must share — re-implementing it risks write/read-side divergence.
pub fn token_kind(tok: &str) -> ItemKind {
    if !tok.is_empty() && tok.bytes().all(|b| b.is_ascii_digit()) {
        ItemKind::Data
    } else {
        ItemKind::Annotation
    }
}

fn parse_token(vocab: &mut Vocabulary, tok: &str) -> Item {
    match token_kind(tok) {
        ItemKind::Data => vocab.data(tok),
        _ => vocab.annotation(tok),
    }
}

/// The line with any `#` comment stripped and whitespace trimmed — the
/// single source of truth for what the Fig. 4 parsers look at.
fn comment_stripped(line: &str) -> &str {
    line.split('#').next().unwrap_or("").trim()
}

/// `true` iff `line` holds at least one item token — i.e.
/// [`parse_tuple_line`] would return `Some`. The single predicate layers
/// use to pre-validate rows (serving protocol, write-queue prefilter)
/// without re-implementing the skip rule: blank lines, `#` comments, and
/// separator-only lines (`","`) all fail it.
pub fn line_has_items(line: &str) -> bool {
    comment_stripped(line)
        .split([',', ' ', '\t'])
        .any(|t| !t.trim().is_empty())
}

/// Parse one Fig. 4 dataset line into a tuple. Returns `None` for lines
/// with no items: blank, comment (`#`), or separator-only (e.g. `","`) —
/// an empty tuple must never be inserted, since it would silently grow
/// every support denominator.
pub fn parse_tuple_line(vocab: &mut Vocabulary, line: &str) -> Option<Tuple> {
    let body = comment_stripped(line);
    let items: Vec<Item> = body
        .split([',', ' ', '\t'])
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| parse_token(vocab, t))
        .collect();
    if items.is_empty() {
        return None;
    }
    Some(Tuple::from_items(items))
}

/// Parse a whole Fig. 4 dataset into a fresh relation named `name`.
pub fn parse_dataset(name: &str, text: &str) -> Result<AnnotatedRelation, ParseError> {
    let mut rel = AnnotatedRelation::new(name);
    for line in text.lines() {
        if let Some(tuple) = parse_tuple_line(rel.vocab_mut(), line) {
            rel.insert(tuple);
        }
    }
    Ok(rel)
}

/// Read a dataset from any buffered reader (for large files).
pub fn read_dataset<R: BufRead>(name: &str, mut reader: R) -> io::Result<AnnotatedRelation> {
    let mut rel = AnnotatedRelation::new(name);
    let mut line = String::new();
    while reader.read_line(&mut line)? != 0 {
        if let Some(tuple) = parse_tuple_line(rel.vocab_mut(), &line) {
            rel.insert(tuple);
        }
        line.clear();
    }
    Ok(rel)
}

/// Render one tuple as a Fig. 4 dataset line.
pub fn format_tuple(vocab: &Vocabulary, tuple: &Tuple) -> String {
    let mut out = String::new();
    for (i, &item) in tuple.items().iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(vocab.name(item));
    }
    out
}

/// Write a whole relation in Fig. 4 dataset format (live tuples only, in id
/// order).
pub fn write_dataset<W: Write>(rel: &AnnotatedRelation, writer: &mut W) -> io::Result<()> {
    for (_, tuple) in rel.iter() {
        writeln!(writer, "{}", format_tuple(rel.vocab(), tuple))?;
    }
    Ok(())
}

/// Render a whole relation to a string (see [`write_dataset`]).
pub fn dataset_to_string(rel: &AnnotatedRelation) -> String {
    let mut buf = Vec::new();
    write_dataset(rel, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("dataset text is UTF-8")
}

/// Parse a Fig. 14 annotation batch (`150: Annot_3` per line) against a
/// vocabulary. Tuple positions are 0-based ids into the target relation.
pub fn parse_annotation_batch(
    vocab: &mut Vocabulary,
    text: &str,
) -> Result<Vec<AnnotationUpdate>, ParseError> {
    let mut updates = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (pos, ann) = line.split_once(':').ok_or_else(|| ParseError {
            line: lineno + 1,
            message: format!("expected 'tuple: annotation', got {line:?}"),
        })?;
        let tid: u32 = pos.trim().parse().map_err(|_| ParseError {
            line: lineno + 1,
            message: format!("invalid tuple id {:?}", pos.trim()),
        })?;
        let ann = ann.trim();
        if ann.is_empty() {
            return Err(ParseError {
                line: lineno + 1,
                message: "empty annotation".into(),
            });
        }
        updates.push(AnnotationUpdate {
            tuple: TupleId(tid),
            annotation: vocab.annotation(ann),
        });
    }
    Ok(updates)
}

/// Render an annotation batch in Fig. 14 format.
pub fn format_annotation_batch(vocab: &Vocabulary, updates: &[AnnotationUpdate]) -> String {
    let mut out = String::new();
    for u in updates {
        out.push_str(&format!("{}: {}\n", u.tuple.0, vocab.name(u.annotation)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemKind;

    const SAMPLE: &str = "\
28 85 102 Annot_4 Annot_5
17 85 Annot_1
99 3 17
";

    #[test]
    fn parse_dataset_distinguishes_values_from_annotations() {
        let rel = parse_dataset("R", SAMPLE).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.vocab().count(ItemKind::Data), 6); // 28 85 102 17 99 3
        assert_eq!(rel.vocab().count(ItemKind::Annotation), 3);
        let t0 = rel.tuple(TupleId(0)).unwrap();
        assert_eq!(t0.data().len(), 3);
        assert_eq!(t0.annotations().len(), 2);
        let t2 = rel.tuple(TupleId(2)).unwrap();
        assert!(t2.is_unannotated());
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        let rel = parse_dataset("R", "# header\n\n1 2 Annot_1 # trailing\n").unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuple(TupleId(0)).unwrap().annotations().len(), 1);
    }

    #[test]
    fn commas_and_tabs_are_separators() {
        let rel = parse_dataset("R", "1, 2,\tAnnot_1\n").unwrap();
        let t = rel.tuple(TupleId(0)).unwrap();
        assert_eq!(t.data().len(), 2);
        assert_eq!(t.annotations().len(), 1);
    }

    #[test]
    fn dataset_roundtrips() {
        let rel = parse_dataset("R", SAMPLE).unwrap();
        let text = dataset_to_string(&rel);
        let rel2 = parse_dataset("R", &text).unwrap();
        assert_eq!(rel.len(), rel2.len());
        for (tid, tuple) in rel.iter() {
            let names: Vec<&str> = tuple.items().iter().map(|&i| rel.vocab().name(i)).collect();
            let tuple2 = rel2.tuple(tid).unwrap();
            let names2: Vec<&str> = tuple2
                .items()
                .iter()
                .map(|&i| rel2.vocab().name(i))
                .collect();
            let mut a = names.clone();
            let mut b = names2.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "tuple {tid} differs after round-trip");
        }
    }

    #[test]
    fn read_dataset_streams_from_bufread() {
        let rel = read_dataset("R", SAMPLE.as_bytes()).unwrap();
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn annotation_batch_parses_fig14_lines() {
        let mut vocab = Vocabulary::new();
        let updates =
            parse_annotation_batch(&mut vocab, "150: Annot_3\n7: Annot_1 # why\n").unwrap();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].tuple, TupleId(150));
        assert_eq!(vocab.name(updates[0].annotation), "Annot_3");
    }

    #[test]
    fn annotation_batch_rejects_malformed_lines() {
        let mut vocab = Vocabulary::new();
        assert!(parse_annotation_batch(&mut vocab, "no colon here").is_err());
        assert!(parse_annotation_batch(&mut vocab, "x: Annot_1").is_err());
        assert!(parse_annotation_batch(&mut vocab, "5:").is_err());
        let err = parse_annotation_batch(&mut vocab, "1: A\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn annotation_batch_roundtrips() {
        let mut vocab = Vocabulary::new();
        let updates = parse_annotation_batch(&mut vocab, "1: A\n2: B\n").unwrap();
        let text = format_annotation_batch(&vocab, &updates);
        let again = parse_annotation_batch(&mut vocab, &text).unwrap();
        assert_eq!(updates, again);
    }
}
