//! `anno-discover`: incrementally maintained top-k correlation discovery.
//!
//! The miner (`anno-mine`) answers *point* queries — "does `{28, 85} ⇒ A`
//! hold?" — but the paper's motivating question is open-ended: *what
//! correlates with what?* This crate answers it as a ranked report, the
//! shape rezolus serves for cross-subsystem metric correlations: the K
//! most interesting co-occurring annotation pairs, ranked by lift, with
//! leverage and a statistical-significance screen alongside, and
//! cross-namespace pairs (raw annotation × concept label) called out the
//! way rezolus calls out cross-category pairs.
//!
//! The expensive way to serve that is an O(#pairs) rescan of the miner's
//! itemset table per query. [`DiscoveryIndex`] instead *mirrors* the
//! table's annotation-pair counts and keeps them in a rank structure
//! (ordered set over scores), maintained **incrementally per drain** from
//! the miner's [`DiscoveryTouch`] log: only pairs whose supports a drain
//! actually touched are rescored. A query is then O(k); publishing a
//! bounded [`DiscoverySnapshot`] is O(cap·log #pairs).
//!
//! # Why the rank key is `count(ab) / (count(a)·count(b))`
//!
//! Lift is `n·c(ab) / (c(a)·c(b))` — but `n` (the support denominator) is
//! uniform across all pairs, so ordering by the n-free key
//! `L = c(ab)/(c(a)·c(b))` *is* ordering by lift. That invariance is what
//! makes incremental maintenance sound: a drain that only adds tuples
//! changes `n` for every pair, but untouched pairs keep their relative
//! order, so only pairs whose own counts changed need rescoring. Lift and
//! leverage values themselves are materialized from the raw counts at
//! snapshot time, where `n` is known.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use anno_mine::{DiscoveryTouch, FrequentItemsets, ItemSet};
use anno_store::fxhash::{FxHashMap, FxHashSet};
use anno_store::{Item, Vocabulary};

/// Pairs observed fewer times than this are kept in the mirror but not
/// ranked — the absolute half of the significance screen (Chanda et al.:
/// a pair seen once proves nothing). Count-based, hence n-invariant.
pub const MIN_RANKED_COUNT: u64 = 2;

/// z-score above which a pair's leverage is deemed statistically
/// significant under the independence binomial (|c(ab) − E| ≥ z·σ).
pub const SIGNIFICANCE_Z: f64 = 1.96;

/// A pair of annotation-like items, stored sorted (`low < high`).
pub type Pair = (Item, Item);

fn ordered(a: Item, b: Item) -> Pair {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// `true` iff the pair spans two namespaces (annotation × label) — the
/// discovery report's priority class.
pub fn is_cross(pair: &Pair) -> bool {
    pair.0.kind() != pair.1.kind()
}

/// The n-invariant rank key: `c(ab) / (c(a)·c(b))`, 0 when undefined.
fn rank_key(pair_count: u64, count_a: u64, count_b: u64) -> f64 {
    let denom = (count_a as f64) * (count_b as f64);
    if denom == 0.0 || pair_count == 0 {
        0.0
    } else {
        pair_count as f64 / denom
    }
}

/// One entry of the ordered rank structure. `Ord` sorts by key
/// *descending*, then by pair ascending, so set iteration is best-first
/// and deterministic across machines (u64 counts → IEEE division).
#[derive(Debug, Clone, Copy)]
struct RankEntry {
    key: f64,
    pair: Pair,
}

impl PartialEq for RankEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for RankEntry {}
impl PartialOrd for RankEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RankEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| self.pair.cmp(&other.pair))
    }
}

#[derive(Debug, Clone, Copy)]
struct PairState {
    count: u64,
    /// The rank key currently stored in the rank set (needed to remove
    /// the old entry before inserting the rescored one), or `None` while
    /// the pair is below [`MIN_RANKED_COUNT`].
    ranked_key: Option<f64>,
}

/// Running counters of how the index has been maintained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Incremental refreshes applied (one per drained touch log).
    pub updates: u64,
    /// Full rebuilds (initial mine, budget re-mines, checkpoint restore
    /// without a persisted index).
    pub rebuilds: u64,
    /// Items + pairs rescored across all incremental refreshes.
    pub rescored: u64,
}

/// The incrementally maintained score index over co-occurring
/// annotation pairs. Mirrors the pure-annotation singletons and pairs of
/// an [`IncrementalMiner`](anno_mine::IncrementalMiner)'s table; apply
/// the miner's drained [`DiscoveryTouch`] after every batch via
/// [`DiscoveryIndex::refresh`] to keep the mirror exact.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryIndex {
    singles: FxHashMap<Item, u64>,
    pairs: FxHashMap<Pair, PairState>,
    /// Partners of each item across all tracked pairs — the fan-out an
    /// incremental rescore walks for a touched item.
    adjacency: FxHashMap<Item, Vec<Item>>,
    rank_cross: BTreeSet<RankEntry>,
    rank_within: BTreeSet<RankEntry>,
    stats: DiscoveryStats,
}

impl DiscoveryIndex {
    /// An empty index (no pairs tracked).
    pub fn new() -> Self {
        DiscoveryIndex::default()
    }

    /// Build an index by scanning `table` from scratch — the reference
    /// the incremental path must match (`tests/properties.rs` pins it).
    pub fn rebuilt_from(table: &FrequentItemsets) -> Self {
        let mut index = DiscoveryIndex::new();
        index.rebuild(table);
        index
    }

    /// Number of annotation pairs mirrored (ranked or not).
    pub fn pairs_tracked(&self) -> usize {
        self.pairs.len()
    }

    /// Ranked pair counts: `(cross-namespace, within-namespace)`.
    pub fn ranked_len(&self) -> (usize, usize) {
        (self.rank_cross.len(), self.rank_within.len())
    }

    /// Maintenance counters.
    pub fn stats(&self) -> DiscoveryStats {
        self.stats
    }

    /// Apply one drained touch log against the miner's current `table`.
    /// `touch.all` (re-mine) falls back to a full rebuild; otherwise only
    /// the touched items' singletons, their adjacent pairs, and the newly
    /// stored pairs are rescored — work proportional to the drain's item
    /// footprint, not the table.
    pub fn refresh(&mut self, table: &FrequentItemsets, touch: &DiscoveryTouch) {
        if touch.all {
            self.rebuild(table);
            return;
        }
        if touch.items.is_empty() && touch.new_pairs.is_empty() {
            return;
        }
        for &(a, b) in &touch.new_pairs {
            let pair = ordered(a, b);
            if self.pairs.contains_key(&pair) {
                continue;
            }
            let count = table
                .count(&ItemSet::from_unsorted(vec![pair.0, pair.1]))
                .unwrap_or(0);
            self.ensure_single(table, pair.0);
            self.ensure_single(table, pair.1);
            self.adjacency.entry(pair.0).or_default().push(pair.1);
            self.adjacency.entry(pair.1).or_default().push(pair.0);
            self.pairs.insert(
                pair,
                PairState {
                    count,
                    ranked_key: None,
                },
            );
            self.rescore(pair);
            self.stats.rescored += 1;
        }
        let mut to_rescore: FxHashSet<Pair> = FxHashSet::default();
        for &item in &touch.items {
            self.ensure_single(table, item);
            if let Some(partners) = self.adjacency.get(&item) {
                to_rescore.extend(partners.iter().map(|&p| ordered(item, p)));
            }
        }
        for pair in to_rescore {
            if let Some(count) = table.count(&ItemSet::from_unsorted(vec![pair.0, pair.1])) {
                if let Some(state) = self.pairs.get_mut(&pair) {
                    state.count = count;
                }
            }
            self.rescore(pair);
            self.stats.rescored += 1;
        }
        self.stats.updates += 1;
    }

    /// Mirror one singleton from the table: present → stored count,
    /// absent (below retention, hence pruned or never memoized) → no
    /// entry, exactly as a rescan would leave it.
    fn ensure_single(&mut self, table: &FrequentItemsets, item: Item) {
        match table.count(&ItemSet::single(item)) {
            Some(count) => {
                self.singles.insert(item, count);
            }
            None => {
                self.singles.remove(&item);
            }
        }
    }

    /// Recompute one pair's rank key from the mirrored counts and move it
    /// within (or in/out of) its rank set.
    fn rescore(&mut self, pair: Pair) {
        let Some(state) = self.pairs.get(&pair) else {
            return;
        };
        let count = state.count;
        let old_key = state.ranked_key;
        let rank = if is_cross(&pair) {
            &mut self.rank_cross
        } else {
            &mut self.rank_within
        };
        if let Some(key) = old_key {
            rank.remove(&RankEntry { key, pair });
        }
        let ca = self.singles.get(&pair.0).copied().unwrap_or(0);
        let cb = self.singles.get(&pair.1).copied().unwrap_or(0);
        let new_key = if count >= MIN_RANKED_COUNT {
            let key = rank_key(count, ca, cb);
            rank.insert(RankEntry { key, pair });
            Some(key)
        } else {
            None
        };
        self.pairs
            .get_mut(&pair)
            // anno-lint: allow(panic-path) -- presence established by the contains_key/insert path just above in this function
            .expect("pair checked above")
            .ranked_key = new_key;
    }

    /// Discard everything and rescan `table`: singletons are the
    /// annotation-like 1-itemsets, pairs the pure-annotation 2-itemsets.
    pub fn rebuild(&mut self, table: &FrequentItemsets) {
        self.singles.clear();
        self.pairs.clear();
        self.adjacency.clear();
        self.rank_cross.clear();
        self.rank_within.clear();
        let mut found: Vec<(Pair, u64)> = Vec::new();
        for (s, count) in table.iter() {
            if s.data_count() != 0 {
                continue;
            }
            match *s.items() {
                [single] => {
                    self.singles.insert(single, count);
                }
                [a, b] => found.push(((a, b), count)),
                _ => {}
            }
        }
        for (pair, count) in found {
            self.adjacency.entry(pair.0).or_default().push(pair.1);
            self.adjacency.entry(pair.1).or_default().push(pair.0);
            self.pairs.insert(
                pair,
                PairState {
                    count,
                    ranked_key: None,
                },
            );
            self.rescore(pair);
        }
        self.stats.rebuilds += 1;
    }

    /// The ranked pairs of one class, best-first: `(pair, count, key)`.
    /// O(len) — meant for tests and rebuild comparisons, not serving;
    /// serving goes through [`DiscoveryIndex::snapshot`].
    pub fn ranked_pairs(&self, cross: bool) -> Vec<(Pair, u64, f64)> {
        let rank = if cross {
            &self.rank_cross
        } else {
            &self.rank_within
        };
        rank.iter()
            .map(|e| {
                let count = self.pairs.get(&e.pair).map_or(0, |s| s.count);
                (e.pair, count, e.key)
            })
            .collect()
    }

    /// `true` iff this index's mirrored counts and rank order equal a
    /// from-scratch rescan of `table` — the discovery analogue of
    /// `verify_against_remine`.
    pub fn verify_against_rescan(&self, table: &FrequentItemsets) -> bool {
        let fresh = DiscoveryIndex::rebuilt_from(table);
        self.singles == fresh.singles
            && self.pairs.len() == fresh.pairs.len()
            && self
                .pairs
                .iter()
                .all(|(p, s)| fresh.pairs.get(p).is_some_and(|f| f.count == s.count))
            && self.ranked_pairs(true) == fresh.ranked_pairs(true)
            && self.ranked_pairs(false) == fresh.ranked_pairs(false)
    }

    /// Materialize a bounded, immutable [`DiscoverySnapshot`] for
    /// lock-free serving: the top `cap` entries per class with lift /
    /// leverage / significance computed at the current denominator `n`,
    /// and names resolved through `vocab`.
    pub fn snapshot(
        &self,
        epoch: u64,
        n: u64,
        cap: usize,
        vocab: &Vocabulary,
    ) -> DiscoverySnapshot {
        let materialize = |rank: &BTreeSet<RankEntry>| -> Vec<DiscoveredPair> {
            rank.iter()
                .take(cap)
                .map(|e| {
                    let count = self.pairs.get(&e.pair).map_or(0, |s| s.count);
                    let count_a = self.singles.get(&e.pair.0).copied().unwrap_or(0);
                    let count_b = self.singles.get(&e.pair.1).copied().unwrap_or(0);
                    DiscoveredPair::compute(e.pair, count, count_a, count_b, n, vocab)
                })
                .collect()
        };
        DiscoverySnapshot {
            epoch,
            db_size: n,
            cross: materialize(&self.rank_cross),
            within: materialize(&self.rank_within),
            pairs_tracked: self.pairs.len() as u64,
            stats: self.stats,
        }
    }

    // -- persistence ----------------------------------------------------

    /// Serialize the mirrored counts in a line-oriented text format
    /// (`anno-discover v1`), for embedding in checkpoint payloads.
    pub fn encode_to_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("anno-discover v1\n");
        let s = self.stats;
        let _ = writeln!(out, "stats {} {} {}", s.updates, s.rebuilds, s.rescored);
        let mut singles: Vec<(Item, u64)> = self.singles.iter().map(|(&i, &c)| (i, c)).collect();
        singles.sort_unstable();
        for (item, count) in singles {
            let _ = writeln!(out, "single {} {count}", item.raw());
        }
        let mut pairs: Vec<(Pair, u64)> = self.pairs.iter().map(|(&p, s)| (p, s.count)).collect();
        pairs.sort_unstable();
        for ((a, b), count) in pairs {
            let _ = writeln!(out, "pair {} {} {count}", a.raw(), b.raw());
        }
        out.push_str("end\n");
        out
    }

    /// Restore an index serialized by [`DiscoveryIndex::encode_to_string`];
    /// the rank structures are re-derived from the stored counts.
    pub fn decode_from_string(text: &str) -> Result<DiscoveryIndex, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("anno-discover v1") => {}
            other => return Err(format!("unsupported discovery header {other:?}")),
        }
        let mut index = DiscoveryIndex::new();
        let mut found: Vec<(Pair, u64)> = Vec::new();
        let mut saw_end = false;
        for (lineno, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("discovery line {}: {msg}", lineno + 2);
            let mut parts = line.split(' ');
            match parts.next() {
                Some("stats") => {
                    index.stats = DiscoveryStats {
                        updates: parse_next(&mut parts).map_err(&err)?,
                        rebuilds: parse_next(&mut parts).map_err(&err)?,
                        rescored: parse_next(&mut parts).map_err(&err)?,
                    };
                }
                Some("single") => {
                    let raw: u32 = parse_next(&mut parts).map_err(&err)?;
                    let count: u64 = parse_next(&mut parts).map_err(&err)?;
                    index.singles.insert(Item::from_raw(raw), count);
                }
                Some("pair") => {
                    let ra: u32 = parse_next(&mut parts).map_err(&err)?;
                    let rb: u32 = parse_next(&mut parts).map_err(&err)?;
                    let count: u64 = parse_next(&mut parts).map_err(&err)?;
                    found.push((ordered(Item::from_raw(ra), Item::from_raw(rb)), count));
                }
                Some("end") => {
                    saw_end = true;
                    break;
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        if !saw_end {
            return Err("discovery state truncated: missing 'end'".into());
        }
        for (pair, count) in found {
            index.adjacency.entry(pair.0).or_default().push(pair.1);
            index.adjacency.entry(pair.1).or_default().push(pair.0);
            index.pairs.insert(
                pair,
                PairState {
                    count,
                    ranked_key: None,
                },
            );
            index.rescore(pair);
        }
        Ok(index)
    }
}

fn parse_next<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let tok = parts.next().ok_or("missing field")?;
    tok.parse().map_err(|e| format!("bad field {tok:?}: {e}"))
}

/// One scored correlation in a published snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredPair {
    /// The pair, sorted.
    pub a: Item,
    /// Second item of the pair.
    pub b: Item,
    /// Resolved name of `a`.
    pub a_name: String,
    /// Resolved name of `b`.
    pub b_name: String,
    /// Co-occurrence count `c(ab)`.
    pub count: u64,
    /// Singleton count `c(a)`.
    pub count_a: u64,
    /// Singleton count `c(b)`.
    pub count_b: u64,
    /// Support fraction `c(ab)/n`.
    pub support: f64,
    /// Lift `n·c(ab) / (c(a)·c(b))`; > 1 means positive correlation.
    pub lift: f64,
    /// Leverage `c(ab)/n − c(a)·c(b)/n²`.
    pub leverage: f64,
    /// `true` iff the observed co-occurrence deviates from independence
    /// by at least [`SIGNIFICANCE_Z`] binomial standard deviations.
    pub significant: bool,
    /// `true` iff the pair spans namespaces (annotation × label).
    pub cross: bool,
}

impl DiscoveredPair {
    fn compute(pair: Pair, count: u64, count_a: u64, count_b: u64, n: u64, v: &Vocabulary) -> Self {
        let nf = n.max(1) as f64;
        let expected = (count_a as f64) * (count_b as f64) / nf;
        let p = (count_a as f64 / nf) * (count_b as f64 / nf);
        let sigma = (nf * p * (1.0 - p)).sqrt();
        let denom = (count_a as f64) * (count_b as f64);
        DiscoveredPair {
            a: pair.0,
            b: pair.1,
            a_name: v.name(pair.0).to_string(),
            b_name: v.name(pair.1).to_string(),
            count,
            count_a,
            count_b,
            support: count as f64 / nf,
            lift: if denom == 0.0 {
                0.0
            } else {
                nf * count as f64 / denom
            },
            leverage: (count as f64 - expected) / nf,
            significant: count >= MIN_RANKED_COUNT
                && (sigma == 0.0 || (count as f64 - expected).abs() >= SIGNIFICANCE_Z * sigma),
            cross: is_cross(&pair),
        }
    }
}

/// An immutable, bounded materialization of a [`DiscoveryIndex`],
/// published behind an `Arc` with the same discipline as rule snapshots:
/// readers never lock, never scan, never see a half-updated rank.
#[derive(Debug, Clone, Default)]
pub struct DiscoverySnapshot {
    /// Publish epoch (shared with the rule snapshot published alongside).
    pub epoch: u64,
    /// Support denominator the scores were materialized at.
    pub db_size: u64,
    /// Cross-namespace pairs, best-first — the priority class.
    pub cross: Vec<DiscoveredPair>,
    /// Within-namespace pairs, best-first.
    pub within: Vec<DiscoveredPair>,
    /// Total pairs the index mirrors (beyond the materialized caps).
    pub pairs_tracked: u64,
    /// Maintenance counters at publish time.
    pub stats: DiscoveryStats,
}

impl DiscoverySnapshot {
    /// Answer `discover top=k [min_support=s] [cross_only]`: cross pairs
    /// first (the rezolus-style priority), then within-namespace pairs,
    /// filtered and truncated to `k`.
    pub fn query(&self, k: usize, min_support: f64, cross_only: bool) -> Vec<&DiscoveredPair> {
        let within: &[DiscoveredPair] = if cross_only { &[] } else { &self.within };
        self.cross
            .iter()
            .chain(within)
            .filter(|p| p.support >= min_support)
            .take(k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(i: u32) -> Item {
        Item::annotation(i)
    }
    fn lab(i: u32) -> Item {
        Item::label(i)
    }
    fn set(items: &[Item]) -> ItemSet {
        ItemSet::from_unsorted(items.to_vec())
    }

    /// A small table: n=10, three annotations + one label with assorted
    /// pair counts.
    fn demo_table() -> FrequentItemsets {
        let mut t = FrequentItemsets::new(10);
        t.insert(set(&[ann(0)]), 6);
        t.insert(set(&[ann(1)]), 5);
        t.insert(set(&[ann(2)]), 2);
        t.insert(set(&[lab(0)]), 4);
        t.insert(set(&[ann(0), ann(1)]), 4);
        t.insert(set(&[ann(0), ann(2)]), 2);
        t.insert(set(&[ann(1), lab(0)]), 4);
        t.insert(set(&[ann(0), ann(1), ann(2)]), 1); // len 3: ignored
        t
    }

    #[test]
    fn rebuild_mirrors_pairs_and_ranks_by_lift() {
        let index = DiscoveryIndex::rebuilt_from(&demo_table());
        assert_eq!(index.pairs_tracked(), 3);
        let (cross, within) = index.ranked_len();
        assert_eq!(cross, 1, "ann1×lab0 is the only cross pair");
        assert_eq!(within, 2);
        let ranked = index.ranked_pairs(false);
        // L(a0,a1) = 4/30 ≈ 0.133; L(a0,a2) = 2/12 ≈ 0.167 → a0a2 first.
        assert_eq!(ranked[0].0, (ann(0), ann(2)));
        assert_eq!(ranked[1].0, (ann(0), ann(1)));
    }

    #[test]
    fn min_count_screen_keeps_singletons_out_of_rank() {
        let mut t = demo_table();
        t.insert(set(&[ann(1), ann(2)]), 1); // seen once: tracked, unranked
        let index = DiscoveryIndex::rebuilt_from(&t);
        assert_eq!(index.pairs_tracked(), 4);
        assert_eq!(index.ranked_len().1, 2);
    }

    #[test]
    fn refresh_tracks_count_changes_and_new_pairs() {
        let mut t = demo_table();
        let mut index = DiscoveryIndex::rebuilt_from(&t);

        // A drain bumps a0 and the a0a1 pair, and discovers a1a2.
        t.add_count(&set(&[ann(0)]), 1);
        t.add_count(&set(&[ann(0), ann(1)]), 2);
        t.insert(set(&[ann(1), ann(2)]), 3);
        t.set_db_size(12);
        let mut touch = DiscoveryTouch::default();
        touch.items.insert(ann(0));
        touch.items.insert(ann(1));
        touch.new_pairs.push((ann(1), ann(2)));
        index.refresh(&t, &touch);

        assert!(index.verify_against_rescan(&t), "incremental == rescan");
        assert_eq!(index.stats().updates, 1);
        assert!(index.stats().rescored > 0);
    }

    #[test]
    fn refresh_all_falls_back_to_rebuild() {
        let t = demo_table();
        let mut index = DiscoveryIndex::new();
        let touch = DiscoveryTouch {
            all: true,
            ..Default::default()
        };
        index.refresh(&t, &touch);
        assert!(index.verify_against_rescan(&t));
        assert_eq!(index.stats().rebuilds, 1);
    }

    #[test]
    fn snapshot_scores_and_prioritizes_cross_pairs() {
        let mut vocab = Vocabulary::new();
        for i in 0..3 {
            vocab.annotation(&format!("A{i}"));
        }
        vocab.label("L0");
        let index = DiscoveryIndex::rebuilt_from(&demo_table());
        let snap = index.snapshot(7, 10, 16, &vocab);
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.cross.len(), 1);
        assert_eq!(snap.within.len(), 2);

        // Lift of (A1, L0): 10·4 / (5·4) = 2.0; leverage 4/10 − 20/100.
        let c = &snap.cross[0];
        assert_eq!((c.a_name.as_str(), c.b_name.as_str()), ("A1", "L0"));
        assert!((c.lift - 2.0).abs() < 1e-12);
        assert!((c.leverage - 0.2).abs() < 1e-12);
        assert!(c.cross);

        // Query interleaving: cross first, then within, truncated.
        let all = snap.query(2, 0.0, false);
        assert_eq!(all.len(), 2);
        assert!(all[0].cross && !all[1].cross);
        let cross_only = snap.query(10, 0.0, true);
        assert_eq!(cross_only.len(), 1);
        // min_support filters: pair support 0.2 < 0.3 drops (a0,a2).
        let filtered = snap.query(10, 0.3, false);
        assert!(filtered.iter().all(|p| p.support >= 0.3));
    }

    #[test]
    fn significance_screen_flags_strong_pairs_only() {
        // 100 tuples; a pair matching independence exactly is not
        // significant, a heavily lopsided one is.
        let mut t = FrequentItemsets::new(100);
        t.insert(set(&[ann(0)]), 50);
        t.insert(set(&[ann(1)]), 50);
        t.insert(set(&[ann(0), ann(1)]), 25); // E = 25: independent
        t.insert(set(&[ann(2)]), 40);
        t.insert(set(&[ann(3)]), 40);
        t.insert(set(&[ann(2), ann(3)]), 40); // E = 16: far above
        let mut vocab = Vocabulary::new();
        for i in 0..4 {
            vocab.annotation(&format!("A{i}"));
        }
        let snap = DiscoveryIndex::rebuilt_from(&t).snapshot(1, 100, 16, &vocab);
        let by_name = |n: &str| {
            snap.within
                .iter()
                .find(|p| p.a_name == n)
                .expect("pair present")
        };
        assert!(!by_name("A0").significant, "independent pair not flagged");
        assert!(by_name("A2").significant, "lopsided pair flagged");
    }

    #[test]
    fn encode_decode_roundtrips_counts_and_rank() {
        let index = DiscoveryIndex::rebuilt_from(&demo_table());
        let text = index.encode_to_string();
        let restored = DiscoveryIndex::decode_from_string(&text).unwrap();
        assert_eq!(restored.pairs_tracked(), index.pairs_tracked());
        assert_eq!(restored.ranked_pairs(true), index.ranked_pairs(true));
        assert_eq!(restored.ranked_pairs(false), index.ranked_pairs(false));
        assert_eq!(restored.stats(), index.stats());
        // Fixpoint on the second round-trip.
        assert_eq!(restored.encode_to_string(), text);
    }

    #[test]
    fn malformed_encodings_are_rejected() {
        assert!(DiscoveryIndex::decode_from_string("").is_err());
        assert!(DiscoveryIndex::decode_from_string("nope\nend\n").is_err());
        assert!(
            DiscoveryIndex::decode_from_string("anno-discover v1\nsingle 1\n").is_err(),
            "truncated field"
        );
        assert!(
            DiscoveryIndex::decode_from_string("anno-discover v1\npair 1 2 3\n").is_err(),
            "missing end"
        );
    }

    #[test]
    fn zero_count_singletons_rank_at_zero_without_panicking() {
        let mut t = FrequentItemsets::new(4);
        t.insert(set(&[ann(0)]), 0);
        t.insert(set(&[ann(1)]), 3);
        t.insert(set(&[ann(0), ann(1)]), 2);
        let index = DiscoveryIndex::rebuilt_from(&t);
        let ranked = index.ranked_pairs(false);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].2, 0.0, "undefined lift ranks at zero");
    }
}
