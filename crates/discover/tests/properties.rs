//! Property test: after an arbitrary sequence of drains (tuple inserts,
//! annotations, removals, deletions) driven through the incremental
//! miner, the incrementally-refreshed [`DiscoveryIndex`] equals a
//! from-scratch rescan of the miner's itemset table — the discovery
//! analogue of `verify_against_remine`.

use anno_discover::DiscoveryIndex;
use anno_mine::{IncrementalConfig, IncrementalMiner, Thresholds};
use anno_store::{AnnotatedRelation, AnnotationUpdate, Item, Tuple, TupleId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum WorkloadOp {
    AddAnnotated(Vec<(Vec<u8>, Vec<u8>)>),
    AddPlain(Vec<Vec<u8>>),
    Annotate(Vec<(u8, u8)>),
    RemoveAnnotations(Vec<(u8, u8)>),
    DeleteTuples(Vec<u8>),
}

fn arb_op() -> impl Strategy<Value = WorkloadOp> {
    let tuple = (
        proptest::collection::vec(0u8..10, 1..4),
        proptest::collection::vec(0u8..5, 0..4),
    );
    prop_oneof![
        proptest::collection::vec(tuple, 1..5).prop_map(WorkloadOp::AddAnnotated),
        proptest::collection::vec(proptest::collection::vec(0u8..10, 1..4), 1..5)
            .prop_map(WorkloadOp::AddPlain),
        proptest::collection::vec((any::<u8>(), 0u8..5), 1..10).prop_map(WorkloadOp::Annotate),
        proptest::collection::vec((any::<u8>(), 0u8..5), 1..10)
            .prop_map(WorkloadOp::RemoveAnnotations),
        proptest::collection::vec(any::<u8>(), 1..4).prop_map(WorkloadOp::DeleteTuples),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn incremental_topk_equals_rescan_for_any_workload(
        initial in proptest::collection::vec(
            (
                proptest::collection::vec(0u8..10, 1..4),
                proptest::collection::vec(0u8..5, 0..4),
            ),
            4..16,
        ),
        ops in proptest::collection::vec(arb_op(), 1..10),
        alpha in 0.15f64..0.5,
        retention in 0.3f64..1.0,
    ) {
        let mut rel = AnnotatedRelation::new("w");
        let data: Vec<Item> = (0..10).map(|i| rel.vocab_mut().data(&format!("{i}"))).collect();
        let anns: Vec<Item> =
            (0..5).map(|i| rel.vocab_mut().annotation(&format!("A{i}"))).collect();
        let build = |d: &[u8], a: &[u8]| {
            Tuple::new(
                d.iter().map(|&i| data[i as usize]),
                a.iter().map(|&i| anns[i as usize]),
            )
        };
        for (d, a) in &initial {
            rel.insert(build(d, a));
        }
        let mut miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds: Thresholds::new(alpha, 0.6),
                retention,
                ..Default::default()
            },
        );
        let mut index = DiscoveryIndex::new();
        let touches = miner.take_touches();
            index.refresh(miner.table(), &touches);
        prop_assert!(index.verify_against_rescan(miner.table()), "post-initial-mine");

        for (round, op) in ops.into_iter().enumerate() {
            match op {
                WorkloadOp::AddAnnotated(tuples) => {
                    let tuples: Vec<Tuple> =
                        tuples.iter().map(|(d, a)| build(d, a)).collect();
                    miner.add_annotated_tuples(&mut rel, tuples);
                }
                WorkloadOp::AddPlain(tuples) => {
                    let tuples: Vec<Tuple> = tuples.iter().map(|d| build(d, &[])).collect();
                    miner.add_unannotated_tuples(&mut rel, tuples);
                }
                WorkloadOp::Annotate(pairs) => {
                    let slots = rel.slot_count() as u32;
                    let updates: Vec<AnnotationUpdate> = pairs
                        .iter()
                        .map(|&(slot, ann)| AnnotationUpdate {
                            tuple: TupleId(u32::from(slot) % slots.max(1)),
                            annotation: anns[ann as usize],
                        })
                        .collect();
                    miner.apply_annotations(&mut rel, updates);
                }
                WorkloadOp::RemoveAnnotations(pairs) => {
                    let slots = rel.slot_count() as u32;
                    let updates: Vec<AnnotationUpdate> = pairs
                        .iter()
                        .map(|&(slot, ann)| AnnotationUpdate {
                            tuple: TupleId(u32::from(slot) % slots.max(1)),
                            annotation: anns[ann as usize],
                        })
                        .collect();
                    miner.remove_annotations(&mut rel, &updates);
                }
                WorkloadOp::DeleteTuples(slots_raw) => {
                    let slots = rel.slot_count() as u32;
                    let victims: Vec<TupleId> = slots_raw
                        .iter()
                        .map(|&s| TupleId(u32::from(s) % slots.max(1)))
                        .collect();
                    miner.delete_tuples(&mut rel, &victims);
                }
            }
            let touches = miner.take_touches();
            index.refresh(miner.table(), &touches);
            prop_assert!(
                index.verify_against_rescan(miner.table()),
                "incrementally maintained top-k diverged from rescan at round {} \
                 ({} pairs tracked)",
                round,
                index.pairs_tracked(),
            );
        }

        // The touch log is drained: one more refresh is a no-op.
        let before = index.stats();
        let touches = miner.take_touches();
            index.refresh(miner.table(), &touches);
        prop_assert_eq!(index.stats(), before);
    }
}
