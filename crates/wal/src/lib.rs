//! `anno-wal`: write-ahead-log durability for the serving layer.
//!
//! The paper's premise is a database that evolves continuously; a serving
//! layer over it is only production-shaped if a process restart does not
//! lose the drained updates. This crate is that durability subsystem: an
//! **append-only, segmented, CRC-framed binary log** of opaque payload
//! records (the serving layer writes one record per coalesced write
//! drain — group commit), plus **checkpoint compaction** (an atomically
//! replaced checkpoint file binds a state blob to a log position and
//! deletes the sealed segments behind it) and **crash recovery** (replay
//! the tail after the checkpoint, tolerating a torn or bit-rotted tail by
//! truncating to the last intact record and reporting the damage instead
//! of failing).
//!
//! The crate is deliberately payload-agnostic — records are `&[u8]` — so
//! the log layer can be tested by crash injection independently of the
//! serving layer's update encoding, and future subsystems (replication by
//! log shipping, shard movement) can reuse it unchanged.
//!
//! # Lifecycle
//!
//! ```
//! use anno_wal::{Wal, WalOptions};
//! let dir = std::env::temp_dir().join(format!("anno-wal-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // First open: nothing to recover.
//! let (mut wal, recovery) = Wal::open(&dir, WalOptions::default()).unwrap();
//! assert!(recovery.checkpoint.is_none() && recovery.tail.is_empty());
//! wal.append(b"drain 1").unwrap();
//! wal.append(b"drain 2").unwrap();
//! wal.checkpoint(b"state after 2 drains").unwrap();
//! wal.append(b"drain 3").unwrap();
//! drop(wal);
//!
//! // Restart: checkpoint blob + only the tail after it.
//! let (_wal, recovery) = Wal::open(&dir, WalOptions::default()).unwrap();
//! assert_eq!(recovery.checkpoint.unwrap().payload, b"state after 2 drains");
//! assert_eq!(recovery.tail, vec![b"drain 3".to_vec()]);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod observe;
pub mod record;
pub mod segment;
pub mod sync;
pub mod tail;

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

pub use checkpoint::Checkpoint;
pub use observe::WalObserver;
pub use record::{crc32, ScanDamage};
pub use sync::{CheckpointPolicy, GroupCommitStats, GroupCommitter, SyncPolicy, SyncTicket};
pub use tail::{TailCursor, TailPoll};

use segment::{segment_header, segment_path, SEGMENT_HEADER_BYTES};

/// Anything that can go wrong in the log layer.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem failure.
    Io(std::io::Error),
    /// On-disk state that must never occur under this crate's own write
    /// protocol (e.g. a torn checkpoint, which is only produced whole).
    Corrupt(String),
    /// Another live `Wal` holds this directory (its lock file names the
    /// owning process).
    Locked(String),
    /// An earlier append failed mid-write, so the file may end in torn
    /// bytes the in-memory position does not account for. The log fences
    /// itself: further appends are refused until a fresh [`Wal::open`]
    /// truncates back to the last intact record.
    Fenced,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
            WalError::Locked(msg) => write!(f, "wal locked: {msg}"),
            WalError::Fenced => write!(
                f,
                "wal fenced after a failed write; reopen the directory to recover"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// A position in the log: `(segment, byte offset within that segment)`.
/// Ordered lexicographically, so "everything before position P" is
/// well-defined across segment boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct LogPosition {
    /// Segment sequence number.
    pub segment: u64,
    /// Byte offset within the segment file (header included).
    pub offset: u64,
}

impl std::fmt::Display for LogPosition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.segment, self.offset)
    }
}

/// Where and why recovery stopped early. Reported, never fatal: the log
/// behind the damage is intact and the damaged bytes are truncated away
/// so appending can resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DamagedTail {
    /// Segment in which the damage was found.
    pub segment: u64,
    /// Byte offset of the first damaged byte (= the truncation point).
    pub offset: u64,
    /// Human-readable cause (torn record, CRC mismatch, bad header, …).
    pub reason: String,
}

impl std::fmt::Display for DamagedTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "damaged log tail at {}/{}: {}",
            self.segment, self.offset, self.reason
        )
    }
}

/// Everything [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// The latest checkpoint, if one was ever taken.
    pub checkpoint: Option<Checkpoint>,
    /// Intact record payloads after the checkpoint position, in log order.
    pub tail: Vec<Vec<u8>>,
    /// Damage report if the log did not end cleanly. Records before the
    /// damage are in `tail`; bytes at and after it were truncated.
    pub damaged: Option<DamagedTail>,
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Roll to a new segment once the active one exceeds this many bytes.
    /// (A single record larger than the threshold still fits: segments
    /// roll before a write, never mid-record.)
    pub segment_bytes: u64,
    /// When an append becomes durable: fsync inline per append (the
    /// default), never, or batched through a shared [`GroupCommitter`]
    /// ([`SyncPolicy::Grouped`]) that amortizes one fsync per file over
    /// every append landing in the same sync window.
    pub sync: SyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 8 * 1024 * 1024,
            sync: SyncPolicy::PerAppend,
        }
    }
}

/// Point-in-time counters of one log's activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Framed bytes appended (payload + record headers).
    pub appended_bytes: u64,
    /// `fsync` calls issued for appends and segment seals.
    pub syncs: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Records replayed at open.
    pub replayed_records: u64,
    /// Damaged tails encountered at open (0 or 1 per open; cumulative
    /// across reopens of the same `Wal` value is impossible, so this is
    /// effectively a flag with room for future partial-scan APIs).
    pub damaged_tails: u64,
    /// Live segment files (sealed survivors + the active one).
    pub segments: u64,
    /// Current end-of-log position (next append lands here).
    pub position: LogPosition,
    /// Records that would replay if the process died now: everything
    /// appended (or replayed at open) since the last checkpoint. The
    /// replay-time input to [`CheckpointPolicy::due`].
    pub since_checkpoint_records: u64,
    /// Framed log bytes accumulated since the last checkpoint — the disk
    /// footprint a checkpoint would reclaim.
    pub since_checkpoint_bytes: u64,
    /// Wall time since the last checkpoint (or since open, when none has
    /// been taken by this `Wal` value).
    pub since_checkpoint_age: Duration,
}

/// A pinned checkpoint position from [`Wal::prepare_checkpoint`],
/// consumed by [`Wal::finish_checkpoint`] once the payload is durably
/// written at it. Also snapshots the since-checkpoint accounting at
/// prepare time, so appends racing the payload write are not forgotten.
#[derive(Debug, Clone, Copy)]
pub struct PreparedCheckpoint {
    position: LogPosition,
    records: u64,
    bytes: u64,
}

impl PreparedCheckpoint {
    /// The position the checkpoint payload must be written at
    /// (see [`checkpoint::write_checkpoint`]).
    pub fn position(&self) -> LogPosition {
        self.position
    }
}

/// Name of the per-directory lock file guarding against two live `Wal`s.
pub const LOCK_FILE: &str = "wal.lock";

/// Distinguishes multiple `Wal` instances within one process in the lock
/// file, so a same-pid second open is still refused.
static LOCK_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Exclusive ownership of a log directory, released on drop. The lock
/// file records `pid:token`; a lock whose pid provably no longer runs
/// (checked via `/proc`) is reclaimed, so a crashed process never wedges
/// its directory. Where `/proc` does not exist (non-Linux) liveness is
/// unknowable without platform calls, so every existing lock is treated
/// as held — the conservative failure mode (remove `wal.lock` by hand
/// after a crash) rather than the corrupting one (two live writers).
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
    token: String,
}

impl DirLock {
    fn acquire(dir: &Path) -> Result<DirLock, WalError> {
        let path = dir.join(LOCK_FILE);
        let token = format!(
            "{}:{}",
            std::process::id(),
            LOCK_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        for attempt in 0..5u32 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(token.as_bytes())?;
                    file.sync_data()?;
                    return Ok(DirLock { path, token });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let held = std::fs::read_to_string(&path).unwrap_or_default();
                    let holder_alive = match held
                        .split(':')
                        .next()
                        .and_then(|pid| pid.parse::<u32>().ok())
                    {
                        // No /proc → liveness unknowable → assume held.
                        Some(pid) if Path::new("/proc").exists() => {
                            Path::new(&format!("/proc/{pid}")).exists()
                        }
                        Some(_) => true,
                        // Unparseable lock content: someone else's
                        // mid-write moment, or junk; don't steal it.
                        None => true,
                    };
                    if holder_alive {
                        return Err(WalError::Locked(format!(
                            "{} is held by a live owner ({held:?}); two logs must not \
                             share a directory",
                            path.display()
                        )));
                    }
                    // Stale lock from a dead process. Reclaim must have a
                    // single winner: rename it aside first — rename is
                    // atomic, so of N racing reclaimers exactly one
                    // succeeds, and nobody can delete a *fresh* lock that
                    // a faster racer has already created (the
                    // check-then-remove TOCTOU).
                    let aside = dir.join(format!("{LOCK_FILE}.stale-{token}-{attempt}"));
                    match std::fs::rename(&path, &aside) {
                        Ok(()) => {
                            let _ = std::fs::remove_file(&aside);
                        }
                        // Lost the reclaim race; loop and re-evaluate.
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(WalError::Locked(format!(
            "{} could not be acquired (reclaim raced repeatedly)",
            path.display()
        )))
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Only remove a lock that is still ours — never a successor's
        // (possible if ours was wrongly reclaimed as stale).
        if std::fs::read_to_string(&self.path).is_ok_and(|content| content == self.token) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// An open write-ahead log rooted at one directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    file: File,
    seq: u64,
    offset: u64,
    live_segments: u64,
    appends: u64,
    appended_bytes: u64,
    syncs: u64,
    checkpoints: u64,
    replayed_records: u64,
    damaged_tails: u64,
    /// Records accumulated past the last checkpoint (seeded with the
    /// replayed tail at open — that *is* the outstanding replay burden).
    since_ckpt_records: u64,
    /// Framed bytes accumulated past the last checkpoint.
    since_ckpt_bytes: u64,
    /// When the last checkpoint finished (open time when none has).
    last_checkpoint: Instant,
    /// Process-unique id distinguishing this log's files inside a shared
    /// [`GroupCommitter`].
    log_id: u64,
    /// Set when a failed append may have left torn bytes past `offset`
    /// that could not be truncated away; all further writes are refused.
    poisoned: bool,
    /// Telemetry hook for fsync latency (see [`observe`]).
    observer: observe::ObserverSlot,
    /// Held for the life of the `Wal`; dropping releases the directory.
    _lock: DirLock,
}

impl Wal {
    /// Open (creating if absent) the log at `dir` and recover its state:
    /// the latest checkpoint, the intact record tail after it, and a
    /// damage report if the tail was torn or corrupted. Damaged bytes are
    /// truncated (and any segments after the damage deleted) so that the
    /// returned `Wal` appends strictly after the recovered prefix.
    pub fn open(dir: impl AsRef<Path>, opts: WalOptions) -> Result<(Wal, Recovery), WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let lock = DirLock::acquire(&dir)?;
        checkpoint::remove_stale_tmp(&dir);
        let ckpt = checkpoint::read_checkpoint(&dir)?;

        let mut seqs = segment::list_segments(&dir)?;
        // Compacted leftovers strictly behind the checkpoint: a crash
        // between the checkpoint rename and the segment deletions leaves
        // them around; finish the job now.
        if let Some(ck) = &ckpt {
            for &seq in seqs.iter().filter(|&&s| s < ck.position.segment) {
                std::fs::remove_file(segment_path(&dir, seq))?;
            }
            seqs.retain(|&s| s >= ck.position.segment);
        }

        // Highest sequence number ever observed — fresh segments created
        // after damage must not reuse a deleted segment's number, or a
        // stale checkpoint position could outrank live records.
        let mut max_seen = ckpt.as_ref().map(|c| c.position.segment).unwrap_or(0);
        if let Some(&last) = seqs.last() {
            max_seen = max_seen.max(last);
        }

        let start = match &ckpt {
            Some(ck) => ck.position,
            None => LogPosition {
                segment: seqs.first().copied().unwrap_or(0),
                offset: SEGMENT_HEADER_BYTES,
            },
        };

        let mut tail: Vec<Vec<u8>> = Vec::new();
        // Framed bytes of the replayed tail, seeding the since-checkpoint
        // footprint the checkpoint policy measures.
        let mut replayed_bytes = 0u64;
        let mut damaged: Option<DamagedTail> = None;
        // (seq, end offset) of the segment appends should resume in;
        // `None` means a fresh segment must be created.
        let mut active: Option<(u64, u64)> = None;
        let mut expected_seq = start.segment;
        // Actual byte length of the previous cleanly scanned segment, for
        // the header chain check (None at chain start, where the
        // predecessor was checkpoint-compacted or never existed).
        let mut prev_scanned_len: Option<u64> = None;

        for &seq in &seqs {
            if damaged.is_some() {
                // Everything after the damage point would break prefix
                // semantics if replayed; delete it.
                std::fs::remove_file(segment_path(&dir, seq))?;
                continue;
            }
            if seq != expected_seq {
                damaged = Some(DamagedTail {
                    segment: expected_seq,
                    offset: SEGMENT_HEADER_BYTES,
                    reason: format!("segment {expected_seq} missing (next on disk is {seq})"),
                });
                std::fs::remove_file(segment_path(&dir, seq))?;
                continue;
            }
            let path = segment_path(&dir, seq);
            let bytes = std::fs::read(&path)?;
            let prev_len = match segment::parse_header(&bytes, seq) {
                Ok(prev_len) => prev_len,
                Err(reason) => {
                    damaged = Some(DamagedTail {
                        segment: seq,
                        offset: 0,
                        reason,
                    });
                    std::fs::remove_file(&path)?;
                    continue;
                }
            };
            if let Some(prev_actual) = prev_scanned_len {
                if prev_len != prev_actual {
                    // The predecessor frames cleanly but is not the length
                    // it was sealed at — it lost (or grew) a whole-record
                    // tail. Its scanned records are still a true prefix;
                    // everything from this segment on is past the gap.
                    damaged = Some(DamagedTail {
                        segment: seq - 1,
                        offset: prev_actual.min(prev_len),
                        reason: format!(
                            "sealed segment is {prev_actual} bytes but successor records {prev_len}"
                        ),
                    });
                    std::fs::remove_file(&path)?;
                    continue;
                }
            }
            let begin = if seq == start.segment {
                start.offset
            } else {
                SEGMENT_HEADER_BYTES
            };
            if begin > bytes.len() as u64 {
                // The checkpoint covers bytes this file no longer has.
                // Nothing after the checkpoint survives here, and reusing
                // offsets below the checkpoint position is forbidden, so
                // retire the file and roll fresh.
                damaged = Some(DamagedTail {
                    segment: seq,
                    offset: bytes.len() as u64,
                    reason: format!(
                        "segment shorter ({} bytes) than checkpoint position {begin}",
                        bytes.len()
                    ),
                });
                std::fs::remove_file(&path)?;
                continue;
            }
            let scan = record::scan(&bytes, begin as usize);
            tail.extend(scan.payloads);
            replayed_bytes += scan.good_end as u64 - begin;
            match scan.damage {
                Some(kind) => {
                    damaged = Some(DamagedTail {
                        segment: seq,
                        offset: scan.good_end as u64,
                        reason: kind.to_string(),
                    });
                    // Truncate the damage away; this segment stays active.
                    let file = OpenOptions::new().write(true).open(&path)?;
                    file.set_len(scan.good_end as u64)?;
                    file.sync_data()?;
                    active = Some((seq, scan.good_end as u64));
                }
                None => {
                    active = Some((seq, bytes.len() as u64));
                    expected_seq = seq + 1;
                    prev_scanned_len = Some(bytes.len() as u64);
                }
            }
        }

        let (seq, offset, file) = match active {
            Some((seq, offset)) => {
                let mut file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(segment_path(&dir, seq))?;
                file.seek(SeekFrom::Start(offset))?;
                (seq, offset, file)
            }
            None => {
                // Fresh log, or every candidate segment was retired. With
                // a checkpoint, recreate its own segment number: checkpoint
                // positions always point at a fresh segment's header
                // (checkpoint seals-and-rolls first), so an empty recreated
                // segment lines up exactly with the replay start — a higher
                // number would read as a gap (lost records) on the next
                // open. Without one, the next open derives its start from
                // the first file present, so any unused number works; take
                // one past the highest ever seen.
                let seq = match &ckpt {
                    Some(ck) => ck.position.segment,
                    None if seqs.is_empty() && damaged.is_none() => 0,
                    None => max_seen + 1,
                };
                let file = create_segment(&dir, seq, 0)?;
                (seq, SEGMENT_HEADER_BYTES, file)
            }
        };
        checkpoint::sync_dir(&dir);

        let live_segments = segment::list_segments(&dir)?.len() as u64;
        let wal = Wal {
            dir,
            opts,
            file,
            seq,
            offset,
            live_segments,
            appends: 0,
            appended_bytes: 0,
            syncs: 0,
            checkpoints: 0,
            replayed_records: tail.len() as u64,
            damaged_tails: u64::from(damaged.is_some()),
            since_ckpt_records: tail.len() as u64,
            since_ckpt_bytes: replayed_bytes,
            last_checkpoint: Instant::now(),
            log_id: sync::next_log_id(),
            poisoned: false,
            observer: observe::ObserverSlot::default(),
            _lock: lock,
        };
        // Join the committer's tenant roster so its sync windows can
        // close early once every attached log has submitted.
        if let Some(committer) = wal.opts.sync.committer() {
            committer.register_tenant(wal.log_id);
        }
        Ok((
            wal,
            Recovery {
                checkpoint: ckpt,
                tail,
                damaged,
            },
        ))
    }

    /// The position the next append will land at.
    pub fn position(&self) -> LogPosition {
        LogPosition {
            segment: self.seq,
            offset: self.offset,
        }
    }

    /// Append one record (a serving-layer drain), blocking until it is
    /// durable under the configured [`SyncPolicy`] (a grouped append
    /// waits for its sync window here). Returns the end-of-log position
    /// after the record: once this returns, the record is recovered by
    /// every future [`Wal::open`] (absent tail damage at exactly these
    /// bytes, or a [`SyncPolicy::Never`] log losing its page cache).
    pub fn append(&mut self, payload: &[u8]) -> Result<LogPosition, WalError> {
        let (pos, ticket) = self.append_async(payload)?;
        if let Some(ticket) = ticket {
            ticket.wait()?;
        }
        Ok(pos)
    }

    /// Append one record as a single buffered write, flushed before
    /// returning, with durability acknowledged per the [`SyncPolicy`]:
    ///
    /// * `PerAppend` — synced inline; the returned ticket is `None`.
    /// * `Never` — no sync; the ticket is `None`.
    /// * `Grouped` — the append is submitted to the shared committer and
    ///   the returned [`SyncTicket`] completes when its sync window does.
    ///   The caller may keep appending (pipelined group commit) and ack
    ///   its own clients only when the ticket resolves; tickets complete
    ///   in append order.
    pub fn append_async(
        &mut self,
        payload: &[u8],
    ) -> Result<(LogPosition, Option<SyncTicket>), WalError> {
        if self.poisoned {
            return Err(WalError::Fenced);
        }
        let frame = record::frame(payload);
        if self.offset > SEGMENT_HEADER_BYTES
            && self.offset + frame.len() as u64 > self.opts.segment_bytes
        {
            // Roll failure leaves the old segment active and the cursor
            // untouched (roll is transactional), so it needs no fencing.
            self.roll()?;
        }
        let policy = self.opts.sync.clone();
        let mut wrote: Result<Option<SyncTicket>, std::io::Error> =
            self.file.write_all(&frame).map(|()| None);
        if wrote.is_ok() {
            match policy {
                SyncPolicy::Never => {}
                SyncPolicy::PerAppend => match self.sync_active() {
                    Ok(()) => self.syncs += 1,
                    Err(e) => wrote = Err(e),
                },
                SyncPolicy::Grouped(committer) => match self.file.try_clone() {
                    Ok(handle) => {
                        wrote = Ok(Some(committer.submit((self.log_id, self.seq), handle)));
                    }
                    // A failed handle clone must not weaken durability:
                    // fall back to an inline sync.
                    Err(_) => match self.sync_active() {
                        Ok(()) => self.syncs += 1,
                        Err(e) => wrote = Err(e),
                    },
                },
            }
        }
        let ticket = match wrote {
            Ok(ticket) => ticket,
            Err(e) => {
                // The file may now end in torn bytes past `offset` (or in
                // a full frame whose durability is unknown). Cut it back
                // so the next append cannot build on a frame recovery
                // would discard; if even that fails, fence the log — only
                // a fresh open's scan-and-truncate can re-establish the
                // invariant.
                let restored = self
                    .file
                    .set_len(self.offset)
                    .and_then(|()| self.file.seek(SeekFrom::Start(self.offset)).map(|_| ()));
                if restored.is_err() {
                    self.poisoned = true;
                }
                return Err(e.into());
            }
        };
        self.offset += frame.len() as u64;
        self.appends += 1;
        self.appended_bytes += frame.len() as u64;
        self.since_ckpt_records += 1;
        self.since_ckpt_bytes += frame.len() as u64;
        Ok((self.position(), ticket))
    }

    /// Take a checkpoint: seal the active segment, durably record
    /// `payload` at the current end-of-log position, then delete every
    /// sealed segment behind it. After this returns, recovery restores
    /// `payload` and replays only records appended after this call —
    /// log size is once again proportional to the post-checkpoint delta.
    ///
    /// This convenience form holds the `&mut Wal` across the payload
    /// write. When the payload is large and appenders must not wait, use
    /// the split form: [`Wal::prepare_checkpoint`] (cheap, under
    /// whatever lock serializes state capture), then
    /// [`checkpoint::write_checkpoint`] at the prepared position with no
    /// `Wal` lock held at all, then [`Wal::finish_checkpoint`].
    pub fn checkpoint(&mut self, payload: &[u8]) -> Result<LogPosition, WalError> {
        let prepared = self.prepare_checkpoint()?;
        checkpoint::write_checkpoint(&self.dir, prepared.position, payload)?;
        self.finish_checkpoint(&prepared);
        Ok(prepared.position)
    }

    /// Phase 1 of a split checkpoint: seal and roll the active segment
    /// (bounded cost — one fsync plus a file create, never proportional
    /// to state size) and pin the position the checkpoint payload must be
    /// written at. Records appended after this call land strictly after
    /// the pinned position and will replay on top of the checkpoint.
    pub fn prepare_checkpoint(&mut self) -> Result<PreparedCheckpoint, WalError> {
        if self.poisoned {
            return Err(WalError::Fenced);
        }
        if self.offset > SEGMENT_HEADER_BYTES {
            self.roll()?;
        }
        Ok(PreparedCheckpoint {
            position: self.position(),
            records: self.since_ckpt_records,
            bytes: self.since_ckpt_bytes,
        })
    }

    /// Phase 3 of a split checkpoint, after
    /// [`checkpoint::write_checkpoint`] has durably bound the payload to
    /// the prepared position: compact the sealed segments behind it and
    /// reset the since-checkpoint accounting (appends that raced the
    /// payload write stay counted — they are past the pinned position).
    ///
    /// Compaction is best-effort once the checkpoint is durable: a
    /// straggler segment left by a failed delete is cleaned up by the
    /// next open, and must not fail an already-successful checkpoint.
    pub fn finish_checkpoint(&mut self, prepared: &PreparedCheckpoint) {
        self.checkpoints += 1;
        self.since_ckpt_records = self.since_ckpt_records.saturating_sub(prepared.records);
        self.since_ckpt_bytes = self.since_ckpt_bytes.saturating_sub(prepared.bytes);
        self.last_checkpoint = Instant::now();
        for seq in segment::list_segments(&self.dir).unwrap_or_default() {
            if seq < prepared.position.segment
                && std::fs::remove_file(segment_path(&self.dir, seq)).is_ok()
            {
                self.live_segments = self.live_segments.saturating_sub(1);
            }
        }
        checkpoint::sync_dir(&self.dir);
    }

    /// Counters since open, plus the current position.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends,
            appended_bytes: self.appended_bytes,
            syncs: self.syncs,
            checkpoints: self.checkpoints,
            replayed_records: self.replayed_records,
            damaged_tails: self.damaged_tails,
            segments: self.live_segments,
            position: self.position(),
            since_checkpoint_records: self.since_ckpt_records,
            since_checkpoint_bytes: self.since_ckpt_bytes,
            since_checkpoint_age: self.last_checkpoint.elapsed(),
        }
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options this log was opened with (segment size, sync policy).
    pub fn options(&self) -> &WalOptions {
        &self.opts
    }

    /// Install an observer that hears about this log's fsyncs (grouped
    /// appends report through the shared committer's observer instead —
    /// see [`GroupCommitter::set_observer`]).
    pub fn set_observer(&mut self, observer: std::sync::Arc<dyn WalObserver>) {
        self.observer.install(observer);
    }

    /// `sync_data` the active segment, reporting the latency to the
    /// observer whether or not the sync succeeded (a slow failure is
    /// still a latency the operator wants to see).
    fn sync_active(&mut self) -> std::io::Result<()> {
        let start = Instant::now();
        let out = self.file.sync_data();
        self.observer
            .fsync(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        out
    }

    /// Seal the active segment and open the next one. Transactional: on
    /// any error the old segment stays active with its cursor unmoved, so
    /// callers can simply propagate.
    fn roll(&mut self) -> Result<(), WalError> {
        // Seal the full segment durably before any record lands in the
        // next one, so recovery never sees segment N+1 outlive bytes of N.
        self.sync_active()?;
        self.syncs += 1;
        let file = create_segment(&self.dir, self.seq + 1, self.offset)?;
        self.seq += 1;
        self.file = file;
        self.offset = SEGMENT_HEADER_BYTES;
        self.live_segments += 1;
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Appends are already flushed per call; this is belt-and-braces
        // for the unsynced mode.
        let _ = self.file.sync_data();
        // Leave the tenant roster so open sync windows stop waiting for
        // a log that will never submit again.
        if let Some(committer) = self.opts.sync.committer() {
            committer.deregister_tenant(self.log_id);
        }
    }
}

fn create_segment(dir: &Path, seq: u64, prev_len: u64) -> Result<File, WalError> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(segment_path(dir, seq))?;
    file.write_all(&segment_header(seq, prev_len))?;
    file.sync_data()?;
    checkpoint::sync_dir(dir);
    Ok(file)
}

#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anno-wal-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(segment_bytes: u64) -> WalOptions {
        WalOptions {
            segment_bytes,
            sync: SyncPolicy::Never,
        }
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("record-{i}").into_bytes()).collect()
    }

    #[test]
    fn append_reopen_replays_everything() {
        let dir = test_dir("roundtrip");
        let committed = payloads(10);
        {
            let (mut wal, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
            assert!(rec.checkpoint.is_none() && rec.tail.is_empty() && rec.damaged.is_none());
            let mut last = wal.position();
            for p in &committed {
                let pos = wal.append(p).unwrap();
                assert!(pos > last, "positions are strictly monotone");
                last = pos;
            }
            assert_eq!(wal.stats().appends, 10);
        }
        let (wal, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert_eq!(rec.tail, committed);
        assert!(rec.damaged.is_none());
        assert_eq!(wal.stats().replayed_records, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_replay_across_files() {
        let dir = test_dir("rolling");
        let committed = payloads(50);
        {
            let (mut wal, _) = Wal::open(&dir, opts(64)).unwrap();
            for p in &committed {
                wal.append(p).unwrap();
            }
            assert!(wal.stats().segments > 1, "tiny threshold must roll");
        }
        let (_, rec) = Wal::open(&dir, opts(64)).unwrap();
        assert_eq!(rec.tail, committed);
        assert!(rec.damaged.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_bounds_replay() {
        let dir = test_dir("compact");
        let committed = payloads(30);
        {
            let (mut wal, _) = Wal::open(&dir, opts(64)).unwrap();
            for p in &committed[..20] {
                wal.append(p).unwrap();
            }
            let before = segment::list_segments(&dir).unwrap().len();
            assert!(before > 1);
            wal.checkpoint(b"state@20").unwrap();
            assert_eq!(
                segment::list_segments(&dir).unwrap().len(),
                1,
                "all sealed segments behind the checkpoint are deleted"
            );
            for p in &committed[20..] {
                wal.append(p).unwrap();
            }
        }
        let (_, rec) = Wal::open(&dir, opts(64)).unwrap();
        assert_eq!(rec.checkpoint.unwrap().payload, b"state@20");
        assert_eq!(rec.tail, committed[20..].to_vec(), "only the tail replays");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_checkpoint_then_reopen() {
        let dir = test_dir("ckpt-empty");
        {
            let (mut wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
            wal.checkpoint(b"empty state").unwrap();
            // Checkpoint on a record-free log must not roll or leave junk.
            wal.checkpoint(b"still empty").unwrap();
        }
        let (_, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert_eq!(rec.checkpoint.unwrap().payload, b"still empty");
        assert!(rec.tail.is_empty() && rec.damaged.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_prefix_and_appends_resume() {
        let dir = test_dir("torn");
        let committed = payloads(5);
        {
            let (mut wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
            for p in &committed {
                wal.append(p).unwrap();
            }
        }
        // Tear 3 bytes off the active segment: the last record is torn.
        let seqs = segment::list_segments(&dir).unwrap();
        let path = segment_path(&dir, *seqs.last().unwrap());
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let (mut wal, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        assert_eq!(rec.tail, committed[..4].to_vec());
        let damage = rec.damaged.expect("tear must be reported");
        assert!(damage.reason.contains("torn"), "{damage}");
        assert_eq!(wal.stats().damaged_tails, 1);

        // The damaged bytes are gone: appending and reopening is clean.
        wal.append(b"after-damage").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, opts(1 << 20)).unwrap();
        let mut expect = committed[..4].to_vec();
        expect.push(b"after-damage".to_vec());
        assert_eq!(rec.tail, expect);
        assert!(rec.damaged.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_middle_segment_drops_later_segments_too() {
        let dir = test_dir("mid-damage");
        let committed = payloads(50);
        {
            let (mut wal, _) = Wal::open(&dir, opts(64)).unwrap();
            for p in &committed {
                wal.append(p).unwrap();
            }
        }
        let seqs = segment::list_segments(&dir).unwrap();
        assert!(seqs.len() >= 3, "need a middle segment to damage");
        let victim = seqs[1];
        // Flip a byte in the middle segment's first record.
        let path = segment_path(&dir, victim);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = SEGMENT_HEADER_BYTES as usize + 9;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (mut wal, rec) = Wal::open(&dir, opts(64)).unwrap();
        let damage = rec.damaged.expect("flip must be reported");
        assert_eq!(damage.segment, victim);
        assert!(
            committed.starts_with(&rec.tail),
            "recovered records are an exact prefix"
        );
        assert!(
            segment::list_segments(&dir).unwrap().len() <= 2,
            "segments after the damage are deleted"
        );
        // New appends land strictly after the recovered prefix.
        wal.append(b"resume").unwrap();
        drop(wal);
        let (_, rec2) = Wal::open(&dir, opts(64)).unwrap();
        assert_eq!(rec2.tail.last().unwrap(), b"resume");
        assert!(rec2.damaged.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_directories_cannot_be_double_opened() {
        let dir = test_dir("lock");
        let (wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
        // A second open — same process, same pid — must be refused: two
        // writers on one segment file would interleave frames.
        assert!(matches!(
            Wal::open(&dir, opts(1 << 20)),
            Err(WalError::Locked(_))
        ));
        drop(wal);
        // Released on drop: reopening now succeeds.
        let (_wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_locks_from_dead_processes_are_reclaimed() {
        if !Path::new("/proc").exists() {
            // Without /proc, liveness is unknowable and locks are
            // conservatively treated as held; nothing to reclaim here.
            return;
        }
        let dir = test_dir("stale-lock");
        {
            let (mut wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
            wal.append(b"pre-crash").unwrap();
        }
        // Fake a crashed owner: a lock file naming a pid that cannot be
        // running (pid_max is far below u32::MAX).
        std::fs::write(dir.join(LOCK_FILE), format!("{}:0", u32::MAX)).unwrap();
        let (_wal, rec) = Wal::open(&dir, opts(1 << 20)).expect("stale lock reclaimed");
        assert_eq!(rec.tail, vec![b"pre-crash".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_segment_after_total_loss_never_reuses_numbers() {
        let dir = test_dir("total-loss");
        {
            let (mut wal, _) = Wal::open(&dir, opts(64)).unwrap();
            for p in payloads(40) {
                wal.append(&p).unwrap();
            }
        }
        // Corrupt the header of the *first* segment: nothing survives.
        let seqs = segment::list_segments(&dir).unwrap();
        let max = *seqs.last().unwrap();
        let path = segment_path(&dir, seqs[0]);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (wal, rec) = Wal::open(&dir, opts(64)).unwrap();
        assert!(rec.tail.is_empty());
        assert!(rec.damaged.is_some());
        assert!(
            wal.position().segment > max,
            "fresh segment must not reuse a retired number"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
