//! Read-only log tailing for replication by log shipping.
//!
//! A [`TailCursor`] walks another process's log directory — a live
//! leader's, or a streamed copy of one — **without taking the directory
//! lock** and without ever writing. Each [`TailCursor::poll`] returns the
//! cleanly framed records that appeared past the cursor since the last
//! poll, in log order, plus the watermarks a replication-lag gauge needs.
//!
//! The cursor tolerates everything a concurrently appending leader can
//! legitimately do to the directory:
//!
//! * **In-flight appends.** The highest segment grows under the reader;
//!   only whole CRC-valid frames are consumed. A torn frame at the tip is
//!   "not yet written", never an error — the next poll re-reads from the
//!   same offset.
//! * **Segment rolls.** The cursor advances into segment `N+1` only once
//!   `N+1`'s header exists *and* records exactly the sealed length of `N`
//!   the cursor has consumed — the same chain check recovery runs, so a
//!   sealed segment that lost a whole-record tail stops the cursor
//!   instead of replaying past a gap.
//! * **Checkpoint compaction.** When the leader checkpoints past the
//!   cursor, the sealed segments behind the checkpoint are deleted and
//!   the bytes the cursor still needed are gone. The poll reports the new
//!   [`Checkpoint`] in [`TailPoll::restart`]: the follower rebuilds its
//!   state from the payload and the cursor resumes at the checkpoint
//!   position.
//!
//! Real damage (a CRC mismatch mid-log, a chain break) is
//! indistinguishable *from this side* from a leader that has simply not
//! finished writing — so the cursor never fails on it; it stops at the
//! last intact prefix and stays there. Promotion resolves the ambiguity:
//! [`Wal::open`](crate::Wal::open) on the same directory truncates the
//! damage and reports it, and the recovered prefix is exactly what the
//! cursor delivered.

use std::path::{Path, PathBuf};

use crate::checkpoint::{self, Checkpoint};
use crate::record;
use crate::segment::{self, segment_path, SEGMENT_HEADER_BYTES};
use crate::{LogPosition, WalError};

/// What one [`TailCursor::poll`] found.
#[derive(Debug, Clone)]
pub struct TailPoll {
    /// Set when the cursor (re)started from a checkpoint: on the first
    /// poll of a checkpointed log, or after the leader compacted the
    /// segments the cursor still needed. The follower must rebuild its
    /// state from this payload **before** applying `records`, which
    /// resume at the checkpoint position.
    pub restart: Option<Checkpoint>,
    /// Cleanly framed record payloads past the cursor, in log order.
    pub records: Vec<Vec<u8>>,
    /// End-of-log position on disk at poll time (start of the highest
    /// segment's first unwritten byte). Equals [`TailCursor::position`]
    /// when the follower is caught up.
    pub leader_position: LogPosition,
    /// On-disk log bytes past the cursor after this poll: the lag a
    /// follower would report. Includes bytes of any torn or damaged tail
    /// the cursor refuses to consume.
    pub bytes_behind: u64,
}

/// A read-only cursor over a log directory owned by someone else. See the
/// module docs for the tolerance contract.
#[derive(Debug)]
pub struct TailCursor {
    dir: PathBuf,
    /// Next byte to consume; `None` until the first poll picks a start.
    pos: Option<LogPosition>,
    records_read: u64,
    restarts: u64,
}

impl TailCursor {
    /// A cursor at the logical start of the log in `dir`. The directory
    /// may be empty or not yet exist — polls report no records until a
    /// leader populates it.
    pub fn new(dir: impl AsRef<Path>) -> TailCursor {
        TailCursor {
            dir: dir.as_ref().to_path_buf(),
            pos: None,
            records_read: 0,
            restarts: 0,
        }
    }

    /// The position of the next record the cursor would consume (the
    /// follower's applied watermark once it has applied every record
    /// returned so far). Zero until the first poll.
    pub fn position(&self) -> LogPosition {
        self.pos.unwrap_or_default()
    }

    /// Records ever returned across all polls (post-restart records only
    /// — a restart's checkpoint payload subsumes the ones before it).
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Checkpoint restarts performed (first-poll adoption included).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Read everything new past the cursor. Errors are real I/O failures
    /// or a corrupt checkpoint file; a mid-write leader never causes one.
    pub fn poll(&mut self) -> Result<TailPoll, WalError> {
        let ckpt = checkpoint::read_checkpoint(&self.dir)?;
        let mut restart = None;
        match (self.pos, &ckpt) {
            // First poll of a checkpointed log: adopt the checkpoint.
            (None, Some(ck)) => {
                restart = Some(ck.clone());
                self.pos = Some(ck.position);
                self.restarts += 1;
            }
            // The leader checkpointed past us: the records between the
            // cursor and the checkpoint are compacted (or about to be) —
            // restart from the payload, which covers them.
            (Some(pos), Some(ck)) if ck.position > pos => {
                restart = Some(ck.clone());
                self.pos = Some(ck.position);
                self.restarts += 1;
            }
            // No checkpoint yet and nothing consumed: (re-)derive the
            // start from the first segment on disk each poll, so a log
            // whose first segment number is not 0 (a leader that
            // recovered from total loss) still gets tailed.
            (None, None) | (Some(_), None) if self.records_read == 0 => {
                let first = segment::list_segments(&self.dir)
                    .unwrap_or_default()
                    .first()
                    .copied()
                    .unwrap_or(0);
                self.pos = Some(LogPosition {
                    segment: first,
                    offset: SEGMENT_HEADER_BYTES,
                });
            }
            _ => {}
        }
        let mut pos = self.pos.unwrap_or(LogPosition {
            segment: 0,
            offset: SEGMENT_HEADER_BYTES,
        });

        let mut records = Vec::new();
        loop {
            let path = segment_path(&self.dir, pos.segment);
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                // Not there (yet, or anymore): a leader that has not
                // created it, or a compaction that raced this poll — the
                // next poll's checkpoint check restarts past it.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
                Err(e) => return Err(e.into()),
            };
            // An unparseable header is a segment mid-creation (or damage
            // promotion will truncate); wait, don't consume.
            if segment::parse_header(&bytes, pos.segment).is_err() {
                break;
            }
            if pos.offset > bytes.len() as u64 {
                // Shorter than bytes we already consumed: the file shrank
                // under us (a leader recovery truncated its tail). Stay —
                // the intact prefix we delivered is still a true prefix.
                break;
            }
            let scan = record::scan(&bytes, pos.offset as usize);
            if !scan.payloads.is_empty() {
                self.records_read += scan.payloads.len() as u64;
                records.extend(scan.payloads);
            }
            pos.offset = scan.good_end as u64;
            if scan.damage.is_some() {
                // Torn tip of a live append, or real damage — from this
                // side they look identical; stop at the intact prefix.
                break;
            }
            // Clean to end of file. Advance only if the successor proves
            // this segment was sealed at exactly the length we consumed.
            let next_path = segment_path(&self.dir, pos.segment + 1);
            let next_header = match std::fs::read(&next_path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
                Err(e) => return Err(e.into()),
            };
            match segment::parse_header(&next_header, pos.segment + 1) {
                Ok(prev_len) if prev_len == pos.offset => {
                    pos = LogPosition {
                        segment: pos.segment + 1,
                        offset: SEGMENT_HEADER_BYTES,
                    };
                }
                // Sealed longer than our view: the read above was stale;
                // re-read next poll. Sealed shorter, or a bad header:
                // chain break — stop at the prefix.
                _ => break,
            }
        }
        self.pos = Some(pos);

        // Lag watermarks: everything on disk past the cursor.
        let mut bytes_behind = 0u64;
        let mut leader_position = pos;
        for seq in segment::list_segments(&self.dir).unwrap_or_default() {
            if seq < pos.segment {
                continue;
            }
            let Ok(meta) = std::fs::metadata(segment_path(&self.dir, seq)) else {
                continue;
            };
            let len = meta.len();
            let consumed = if seq == pos.segment {
                pos.offset
            } else {
                SEGMENT_HEADER_BYTES
            };
            bytes_behind += len.saturating_sub(consumed);
            let end = LogPosition {
                segment: seq,
                offset: len.max(SEGMENT_HEADER_BYTES),
            };
            if end > leader_position {
                leader_position = end;
            }
        }
        Ok(TailPoll {
            restart,
            records,
            leader_position,
            bytes_behind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{test_dir, SyncPolicy, Wal, WalOptions};

    fn opts(segment_bytes: u64) -> WalOptions {
        WalOptions {
            segment_bytes,
            sync: SyncPolicy::Never,
        }
    }

    #[test]
    fn tails_appends_across_rolls() {
        let dir = test_dir("tail-rolls");
        let (mut wal, _) = Wal::open(&dir, opts(64)).unwrap();
        let mut cursor = TailCursor::new(&dir);
        assert!(cursor.poll().unwrap().records.is_empty());

        let mut shipped = Vec::new();
        for i in 0..30 {
            wal.append(format!("rec-{i}").as_bytes()).unwrap();
            if i % 7 == 0 {
                shipped.extend(cursor.poll().unwrap().records);
            }
        }
        shipped.extend(cursor.poll().unwrap().records);
        let expect: Vec<Vec<u8>> = (0..30).map(|i| format!("rec-{i}").into_bytes()).collect();
        assert_eq!(shipped, expect);
        assert!(wal.stats().segments > 1, "the workload must roll");
        let poll = cursor.poll().unwrap();
        assert!(poll.records.is_empty());
        assert_eq!(poll.bytes_behind, 0);
        assert_eq!(poll.leader_position, cursor.position());
        assert_eq!(cursor.records_read(), 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tip_is_waited_out_not_consumed() {
        let dir = test_dir("tail-torn");
        let (mut wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
        wal.append(b"whole").unwrap();
        // Simulate an in-flight append: a torn frame at the tip.
        let seqs = segment::list_segments(&dir).unwrap();
        let path = segment_path(&dir, *seqs.last().unwrap());
        let frame = record::frame(b"half-written record");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let mut cursor = TailCursor::new(&dir);
        let poll = cursor.poll().unwrap();
        assert_eq!(poll.records, vec![b"whole".to_vec()]);
        assert!(poll.bytes_behind > 0, "the torn bytes count as lag");

        // The append completes: the next poll picks the record up whole.
        std::fs::write(&path, {
            let mut full = std::fs::read(&path).unwrap();
            full.truncate(full.len() - frame.len() / 2);
            full.extend_from_slice(&frame);
            full
        })
        .unwrap();
        let poll = cursor.poll().unwrap();
        assert_eq!(poll.records, vec![b"half-written record".to_vec()]);
        assert_eq!(poll.bytes_behind, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_past_the_cursor_restarts_from_the_checkpoint() {
        let dir = test_dir("tail-ckpt");
        let (mut wal, _) = Wal::open(&dir, opts(64)).unwrap();
        let mut cursor = TailCursor::new(&dir);
        for i in 0..10 {
            wal.append(format!("early-{i}").as_bytes()).unwrap();
        }
        // The cursor reads a little, then stalls while the leader runs
        // far ahead and compacts.
        assert_eq!(cursor.poll().unwrap().records.len(), 10);
        for i in 0..10 {
            wal.append(format!("mid-{i}").as_bytes()).unwrap();
        }
        wal.checkpoint(b"state@20").unwrap();
        wal.append(b"post-ckpt").unwrap();

        let poll = cursor.poll().unwrap();
        let ck = poll.restart.expect("compaction must force a restart");
        assert_eq!(ck.payload, b"state@20");
        assert_eq!(poll.records, vec![b"post-ckpt".to_vec()]);
        assert_eq!(cursor.restarts(), 1);
        assert_eq!(cursor.poll().unwrap().bytes_behind, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn first_poll_of_a_checkpointed_log_adopts_the_checkpoint() {
        let dir = test_dir("tail-adopt");
        let (mut wal, _) = Wal::open(&dir, opts(1 << 20)).unwrap();
        wal.append(b"compacted-away").unwrap();
        wal.checkpoint(b"base state").unwrap();
        wal.append(b"tail-1").unwrap();
        wal.append(b"tail-2").unwrap();

        let mut cursor = TailCursor::new(&dir);
        let poll = cursor.poll().unwrap();
        assert_eq!(poll.restart.expect("adopted").payload, b"base state");
        assert_eq!(poll.records, vec![b"tail-1".to_vec(), b"tail-2".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_directories_poll_idle() {
        let dir = test_dir("tail-empty");
        let mut cursor = TailCursor::new(dir.join("not-created-yet"));
        let poll = cursor.poll().unwrap();
        assert!(poll.restart.is_none() && poll.records.is_empty());
        assert_eq!(poll.bytes_behind, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_damage_stops_at_the_prefix_forever() {
        let dir = test_dir("tail-damage");
        let (mut wal, _) = Wal::open(&dir, opts(64)).unwrap();
        for i in 0..20 {
            wal.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        drop(wal);
        let seqs = segment::list_segments(&dir).unwrap();
        assert!(seqs.len() >= 3);
        let path = segment_path(&dir, seqs[1]);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = SEGMENT_HEADER_BYTES as usize + 9;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut cursor = TailCursor::new(&dir);
        let first = cursor.poll().unwrap();
        let committed: Vec<Vec<u8>> = (0..20).map(|i| format!("rec-{i}").into_bytes()).collect();
        assert!(committed.starts_with(&first.records));
        assert!(first.records.len() < committed.len());
        // Re-polling neither advances past the damage nor duplicates.
        let again = cursor.poll().unwrap();
        assert!(again.records.is_empty());
        assert!(again.bytes_behind > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
