//! Checkpoint persistence: one atomically replaced file.
//!
//! A checkpoint binds an opaque payload (the serving layer stores its
//! `annodb-snapshot` and miner checkpoint there) to a log position: "the
//! payload captures every record strictly before this position". Recovery
//! restores the payload and replays only the log tail at and after it.
//!
//! The file is written to `checkpoint.tmp`, synced, then renamed over
//! `checkpoint.bin` — so a crash at any instant leaves either the old
//! checkpoint or the new one, never a torn hybrid. The payload rides
//! under its own CRC anyway, as defense against bit rot after the rename.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::record::crc32;
use crate::{LogPosition, WalError};

/// Magic prefix of the checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 12] = b"ANNOWALCKPT1";

/// Final checkpoint file name.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// Staging name the checkpoint is written to before the atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// A restored checkpoint: the payload and the log position it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Replay resumes at this position (records before it are compacted).
    pub position: LogPosition,
    /// The caller's opaque state blob.
    pub payload: Vec<u8>,
}

/// Path of the live checkpoint under `dir`.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join(CHECKPOINT_FILE)
}

/// Write a checkpoint durably: staging file, fsync, atomic rename, then a
/// best-effort directory sync so the rename itself survives power loss.
pub fn write_checkpoint(dir: &Path, position: LogPosition, payload: &[u8]) -> Result<(), WalError> {
    let mut bytes = Vec::with_capacity(CHECKPOINT_MAGIC.len() + 24 + payload.len());
    bytes.extend_from_slice(CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&position.segment.to_le_bytes());
    bytes.extend_from_slice(&position.offset.to_le_bytes());
    let len = u32::try_from(payload.len()).map_err(|_| {
        WalError::Corrupt("checkpoint payload exceeds u32 length framing".to_string())
    })?;
    bytes.extend_from_slice(&len.to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);

    let tmp = dir.join(CHECKPOINT_TMP);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, checkpoint_path(dir))?;
    sync_dir(dir);
    Ok(())
}

/// Read the live checkpoint, if any. A present-but-invalid checkpoint is
/// a hard [`WalError::Corrupt`]: it is only ever produced whole (atomic
/// rename), so damage here means the disk lied, and silently replaying
/// from a compacted log would fabricate state.
pub fn read_checkpoint(dir: &Path) -> Result<Option<Checkpoint>, WalError> {
    let path = checkpoint_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |msg: &str| WalError::Corrupt(format!("checkpoint {}: {msg}", path.display()));
    let header = CHECKPOINT_MAGIC.len() + 24;
    if bytes.len() < header {
        return Err(corrupt("file shorter than header"));
    }
    if &bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let at = CHECKPOINT_MAGIC.len();
    let segment = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[at + 16..at + 20].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[at + 20..at + 24].try_into().expect("4 bytes"));
    if bytes.len() - header != len {
        return Err(corrupt("payload length mismatch"));
    }
    let payload = &bytes[header..];
    if crc32(payload) != crc {
        return Err(corrupt("payload CRC mismatch"));
    }
    Ok(Some(Checkpoint {
        position: LogPosition { segment, offset },
        payload: payload.to_vec(),
    }))
}

/// Remove a stale staging file left by a crash mid-checkpoint (the live
/// checkpoint, if any, is still whole — the rename never happened).
pub fn remove_stale_tmp(dir: &Path) {
    let _ = std::fs::remove_file(dir.join(CHECKPOINT_TMP));
}

/// Best-effort fsync of the directory entry table. Errors are ignored:
/// not every filesystem supports dir sync, and the data files themselves
/// are already durable.
pub fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn checkpoint_roundtrips_and_replaces() {
        let dir = test_dir("ckpt-roundtrip");
        assert_eq!(read_checkpoint(&dir).unwrap(), None);
        let pos = LogPosition {
            segment: 3,
            offset: 16,
        };
        write_checkpoint(&dir, pos, b"state one").unwrap();
        let ck = read_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ck.position, pos);
        assert_eq!(ck.payload, b"state one");

        let pos2 = LogPosition {
            segment: 9,
            offset: 16,
        };
        write_checkpoint(&dir, pos2, b"state two").unwrap();
        let ck = read_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ck.position, pos2);
        assert_eq!(ck.payload, b"state two");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let dir = test_dir("ckpt-corrupt");
        write_checkpoint(
            &dir,
            LogPosition {
                segment: 0,
                offset: 16,
            },
            b"payload",
        )
        .unwrap();
        let path = checkpoint_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_checkpoint(&dir), Err(WalError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
