//! Log segment files: naming, headers, and directory listing.
//!
//! The log is a sequence of monotonically numbered segment files,
//! `wal-<seq:016x>.seg`. Each starts with a fixed 24-byte header — an
//! 8-byte magic, the segment's own sequence number, and the byte length
//! its predecessor was sealed at (all little-endian) — so a misnamed or
//! cross-wired file is detected before any record in it is trusted, and a
//! sealed segment that lost bytes *at an exact record boundary* (which
//! frames cleanly and would otherwise splice its successor's records onto
//! a silently shortened prefix) is caught by the successor's recorded
//! length. Records follow back to back in [`record`](crate::record)
//! framing. Only the highest-numbered segment is ever written; lower ones
//! are sealed, and checkpoint compaction deletes sealed segments wholly
//! behind the checkpoint position.

use std::path::{Path, PathBuf};

/// Magic prefix of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"ANNOWAL1";

/// Bytes of segment header before the first record (magic + seq +
/// predecessor's sealed length).
pub const SEGMENT_HEADER_BYTES: u64 = 24;

/// File name of segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:016x}.seg")
}

/// Full path of segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(segment_file_name(seq))
}

/// Parse a directory entry name back into a segment sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The 24 header bytes of segment `seq`, whose predecessor (if any) was
/// sealed at `prev_len` bytes.
pub fn segment_header(seq: u64, prev_len: u64) -> [u8; 24] {
    let mut h = [0u8; 24];
    h[..8].copy_from_slice(SEGMENT_MAGIC);
    h[8..16].copy_from_slice(&seq.to_le_bytes());
    h[16..].copy_from_slice(&prev_len.to_le_bytes());
    h
}

/// Validate a segment file's header against the seq its name claims,
/// returning the predecessor's recorded sealed length. `Err` describes
/// the mismatch (wrong magic, wrong embedded seq, or a file too short to
/// even hold a header).
pub fn parse_header(bytes: &[u8], expect_seq: u64) -> Result<u64, String> {
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        return Err(format!(
            "segment file too short for header ({} bytes)",
            bytes.len()
        ));
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        return Err("bad segment magic".into());
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if seq != expect_seq {
        return Err(format!(
            "segment header seq {seq} does not match file name seq {expect_seq}"
        ));
    }
    Ok(u64::from_le_bytes(
        bytes[16..24].try_into().expect("8 bytes"),
    ))
}

/// All segment sequence numbers present in `dir`, ascending. Non-segment
/// files are ignored (the checkpoint lives alongside the segments).
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for seq in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(parse_segment_name(&segment_file_name(seq)), Some(seq));
        }
        assert_eq!(parse_segment_name("checkpoint.bin"), None);
        assert_eq!(parse_segment_name("wal-zz.seg"), None);
        assert_eq!(parse_segment_name("wal-0000000000000000.log"), None);
    }

    #[test]
    fn headers_validate_magic_and_seq() {
        let h = segment_header(42, 1234);
        assert_eq!(parse_header(&h, 42), Ok(1234));
        assert!(parse_header(&h, 41).is_err());
        assert!(parse_header(&h[..10], 42).is_err());
        let mut bad = h;
        bad[0] ^= 1;
        assert!(parse_header(&bad, 42).is_err());
    }
}
