//! Record framing: length-prefixed payloads with CRC32 integrity.
//!
//! Every record in a log segment is
//!
//! ```text
//! [len: u32 LE] [crc32(len ‖ payload): u32 LE] [payload bytes]
//! ```
//!
//! The CRC covers the length prefix as well as the payload. Covering the
//! length matters beyond catching corrupted length fields: a region of
//! **zeros** (a crash after a filesystem extended the file but before the
//! data blocks hit disk — the classic WAL zero-page hazard) would
//! otherwise frame as an endless run of valid empty records, because
//! `crc32(b"") == 0`; with the length folded in, eight zero bytes never
//! form a valid frame. [`scan`] walks a segment's byte region and
//! classifies its end: clean EOF, or a damaged tail at a known offset —
//! the caller truncates there, so a torn write from a crash (or a flipped
//! bit from a bad disk) costs the tail, never the whole log.

/// Bytes of framing before each payload (length + CRC).
pub const RECORD_HEADER_BYTES: usize = 8;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial), the framing checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

fn crc_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// The framing checksum of one record: CRC-32 over the little-endian
/// length bytes followed by the payload (see the module docs for why the
/// length must be covered).
pub fn record_crc(len: u32, payload: &[u8]) -> u32 {
    let state = crc_update(0xFFFF_FFFF, &len.to_le_bytes());
    crc_update(state, payload) ^ 0xFFFF_FFFF
}

/// Frame one payload into its on-disk record bytes.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    // anno-lint: allow(panic-path) -- payloads are single checkpoint/drain frames, bounded far below 4 GiB by the segment size cap
    let len = u32::try_from(payload.len()).expect("record payload fits u32");
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&record_crc(len, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a scan stopped before the end of the byte region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanDamage {
    /// The framing header or payload runs past the end of the region
    /// (a torn write: the crash landed mid-record).
    Torn,
    /// The payload bytes do not match their recorded CRC (bit rot, or a
    /// corrupted length field misframing the stream).
    CrcMismatch,
}

impl std::fmt::Display for ScanDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanDamage::Torn => write!(f, "torn record (truncated mid-write)"),
            ScanDamage::CrcMismatch => write!(f, "payload CRC mismatch"),
        }
    }
}

/// The result of scanning a segment's record region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    /// The intact payloads, in log order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte offset (relative to the scanned region's start) just past the
    /// last intact record — the truncation point when damage follows.
    pub good_end: usize,
    /// Damage at `good_end`, if the region did not end cleanly.
    pub damage: Option<ScanDamage>,
}

/// Walk `bytes` from `start`, collecting intact records until clean EOF or
/// damage. Never panics on hostile input: every length is bounds-checked
/// before use, so a bit-flipped length field degrades into reported
/// damage, not an allocation blow-up or slice panic.
pub fn scan(bytes: &[u8], start: usize) -> Scan {
    let mut pos = start.min(bytes.len());
    let mut payloads = Vec::new();
    loop {
        if pos == bytes.len() {
            return Scan {
                payloads,
                good_end: pos,
                damage: None,
            };
        }
        if bytes.len() - pos < RECORD_HEADER_BYTES {
            return Scan {
                payloads,
                good_end: pos,
                damage: Some(ScanDamage::Torn),
            };
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + RECORD_HEADER_BYTES;
        if bytes.len() - body_start < len {
            return Scan {
                payloads,
                good_end: pos,
                damage: Some(ScanDamage::Torn),
            };
        }
        let payload = &bytes[body_start..body_start + len];
        if record_crc(len as u32, payload) != crc {
            return Scan {
                payloads,
                good_end: pos,
                damage: Some(ScanDamage::CrcMismatch),
            };
        }
        payloads.push(payload.to_vec());
        pos = body_start + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_then_scan_roundtrips() {
        let mut bytes = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![b"a".to_vec(), vec![], vec![7u8; 300]];
        for p in &payloads {
            bytes.extend_from_slice(&frame(p));
        }
        let scan = scan(&bytes, 0);
        assert_eq!(scan.payloads, payloads);
        assert_eq!(scan.good_end, bytes.len());
        assert_eq!(scan.damage, None);
    }

    #[test]
    fn zero_filled_tail_is_damage_not_phantom_records() {
        // A crash can leave the file extended with zero pages (size
        // committed before data). Zeros must never frame as records —
        // len=0, crc=0 would match crc32("")==0 if the length were not
        // covered by the checksum.
        let mut bytes = frame(b"real");
        let keep = bytes.len();
        bytes.extend_from_slice(&[0u8; 64]);
        let scan = scan(&bytes, 0);
        assert_eq!(scan.payloads, vec![b"real".to_vec()]);
        assert_eq!(scan.good_end, keep);
        assert_eq!(scan.damage, Some(ScanDamage::CrcMismatch));
    }

    #[test]
    fn torn_tail_stops_at_last_intact_record() {
        let mut bytes = frame(b"first");
        let keep = bytes.len();
        bytes.extend_from_slice(&frame(b"second"));
        for cut in keep + 1..bytes.len() {
            let scan = scan(&bytes[..cut], 0);
            assert_eq!(scan.payloads, vec![b"first".to_vec()], "cut at {cut}");
            assert_eq!(scan.good_end, keep);
            assert_eq!(scan.damage, Some(ScanDamage::Torn));
        }
    }

    #[test]
    fn flipped_bit_is_crc_damage_not_panic() {
        let mut bytes = frame(b"first");
        let keep = bytes.len();
        bytes.extend_from_slice(&frame(b"second-record-payload"));
        for i in keep..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x40;
            let scan = scan(&copy, 0);
            assert_eq!(scan.payloads, vec![b"first".to_vec()], "flip at {i}");
            assert_eq!(scan.good_end, keep);
            assert!(scan.damage.is_some(), "flip at {i} must be reported");
        }
    }
}
