//! Observer hooks: how the log reports latencies upward.
//!
//! The wal crate must stay dependency-free — it cannot know about the
//! serving layer's histograms or journals. Instead the serving layer
//! hands a [`WalObserver`] down: the log (and the shared
//! [`GroupCommitter`](crate::GroupCommitter)) calls it at each fsync
//! and at each closed sync window, and the observer records wherever it
//! likes. Every hook has a no-op default, is called outside the
//! committer's queue lock, and must be cheap and non-blocking — it runs
//! on appending threads and the commit thread.

use std::fmt;
use std::sync::Arc;

/// Callbacks the log layer invokes as durability work happens.
pub trait WalObserver: Send + Sync {
    /// An `fsync` for appended records or a segment seal completed
    /// (successfully or not) after `nanos` nanoseconds.
    fn fsync(&self, nanos: u64) {
        let _ = nanos;
    }

    /// A group-commit sync window closed: `submitted` requests were
    /// acknowledged by `files_synced` fsyncs taking `nanos` in total.
    fn window_closed(&self, submitted: u64, files_synced: u64, nanos: u64) {
        let _ = (submitted, files_synced, nanos);
    }
}

/// An optional observer, cloneable and `Debug` regardless of the
/// observer's own type (trait objects have no useful `Debug`).
#[derive(Clone, Default)]
pub struct ObserverSlot(Option<Arc<dyn WalObserver>>);

impl ObserverSlot {
    /// Install `observer`; replaces any previous one.
    pub fn install(&mut self, observer: Arc<dyn WalObserver>) {
        self.0 = Some(observer);
    }

    /// Forward an fsync completion, if an observer is installed.
    pub(crate) fn fsync(&self, nanos: u64) {
        if let Some(obs) = &self.0 {
            obs.fsync(nanos);
        }
    }

    /// Forward a closed sync window, if an observer is installed.
    pub(crate) fn window_closed(&self, submitted: u64, files_synced: u64, nanos: u64) {
        if let Some(obs) = &self.0 {
            obs.window_closed(submitted, files_synced, nanos);
        }
    }
}

impl fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(installed)"
        } else {
            "ObserverSlot(none)"
        })
    }
}
