//! Sync policies and the cross-dataset group committer.
//!
//! A [`Wal`](crate::Wal) decides *when* an appended record becomes
//! durable through its [`SyncPolicy`]:
//!
//! * [`SyncPolicy::PerAppend`] — `fsync` on the appending thread before
//!   `append` returns: one sync per record, the strongest and simplest
//!   contract (the pre-existing `sync: true`).
//! * [`SyncPolicy::Never`] — no fsync; the OS page cache is durability
//!   enough (benchmarks, tests, rebuildable caches).
//! * [`SyncPolicy::Grouped`] — the append is written and flushed, then a
//!   **sync request** is submitted to a shared [`GroupCommitter`] and the
//!   caller receives a [`SyncTicket`]. The committer batches every
//!   request that arrives within one *sync window* and issues **one
//!   `fsync` per distinct file** for the whole window, however many
//!   records landed in it. K datasets committing concurrently — and any
//!   one dataset pipelining several drains — amortize their syncs into
//!   the same window, so durable throughput stops paying one fsync per
//!   drain per tenant.
//!
//! The committer is deliberately WAL-agnostic: it syncs `File`s it is
//! handed. One committer per process (the serving layer's `Service` owns
//! one) is the intended shape, but nothing prevents finer pools.
//!
//! # Ordering contract
//!
//! Requests complete in submission order: the committer drains its queue
//! whole, syncs, and only then completes the batch. A completed
//! [`SyncTicket`] therefore guarantees *every earlier append to the same
//! log* is durable too — the property the serving layer's in-order ack
//! pipeline relies on.

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::observe::ObserverSlot;
use crate::{WalError, WalObserver, WalStats};

/// Hands out process-unique ids so the committer can tell two logs'
/// files apart without platform inode calls.
static NEXT_LOG_ID: AtomicU64 = AtomicU64::new(0);

pub(crate) fn next_log_id() -> u64 {
    NEXT_LOG_ID.fetch_add(1, Ordering::Relaxed)
}

/// When an appended record becomes durable. See the module docs.
#[derive(Debug, Clone, Default)]
pub enum SyncPolicy {
    /// `fsync` inline on every append (one sync per record).
    #[default]
    PerAppend,
    /// Never fsync appends; flush to the page cache only.
    Never,
    /// Submit appends to a shared [`GroupCommitter`]; durability is
    /// acknowledged through a [`SyncTicket`].
    Grouped(Arc<GroupCommitter>),
}

impl SyncPolicy {
    /// Short label for stats lines: `per_append`, `none`, or `grouped`.
    pub fn label(&self) -> &'static str {
        match self {
            SyncPolicy::PerAppend => "per_append",
            SyncPolicy::Never => "none",
            SyncPolicy::Grouped(_) => "grouped",
        }
    }

    /// The shared committer, when the policy is grouped.
    pub fn committer(&self) -> Option<&Arc<GroupCommitter>> {
        match self {
            SyncPolicy::Grouped(c) => Some(c),
            _ => None,
        }
    }
}

/// When a dataset should checkpoint *by itself*. Every threshold is
/// measured against the log's accumulation since its last checkpoint
/// (replayed records at open count too — they are exactly the replay
/// burden a checkpoint exists to bound). A policy with no threshold set
/// is disabled; with several, the first one exceeded triggers.
///
/// The policy never fires on an empty delta: a checkpoint of unchanged
/// state would cost an O(|D|) encode for nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many log bytes accumulate past the last
    /// checkpoint (bounds disk footprint).
    pub log_bytes: Option<u64>,
    /// Checkpoint once this many records would replay on recovery
    /// (bounds replay time).
    pub replayed_records: Option<u64>,
    /// Checkpoint at the first drain after this much wall time since the
    /// last checkpoint (bounds staleness under trickle writes).
    pub interval: Option<Duration>,
}

impl CheckpointPolicy {
    /// `true` if any threshold is set.
    pub fn is_enabled(&self) -> bool {
        self.log_bytes.is_some() || self.replayed_records.is_some() || self.interval.is_some()
    }

    /// `true` when `stats` says the log has accumulated past a threshold.
    pub fn due(&self, stats: &WalStats) -> bool {
        if stats.since_checkpoint_records == 0 {
            return false;
        }
        self.log_bytes
            .is_some_and(|b| stats.since_checkpoint_bytes >= b)
            || self
                .replayed_records
                .is_some_and(|r| stats.since_checkpoint_records >= r)
            || self
                .interval
                .is_some_and(|i| stats.since_checkpoint_age >= i)
    }
}

/// Counters of one committer's activity since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Sync requests ever submitted.
    pub submitted: u64,
    /// `fsync` calls actually issued (≤ submitted: the saving).
    pub syncs: u64,
    /// Sync windows completed (each syncs every distinct dirty file once).
    pub windows: u64,
    /// Windows that closed before their full duration because every
    /// registered tenant had already submitted (nothing left to wait for).
    pub early_closes: u64,
}

/// Result slot one waiter blocks on. `None` = still pending.
#[derive(Debug)]
struct TicketShared {
    state: Mutex<Option<Result<(), String>>>,
    cv: Condvar,
}

/// A pending durability acknowledgement for one grouped append. Waiting
/// on it blocks until the committer's sync window covering the append
/// completes (or fails).
#[derive(Debug, Clone)]
pub struct SyncTicket {
    shared: Arc<TicketShared>,
}

impl SyncTicket {
    /// Block until the covering sync window completes. Idempotent.
    pub fn wait(&self) -> Result<(), WalError> {
        let mut state = self.shared.state.lock().expect("ticket lock");
        while state.is_none() {
            state = self.shared.cv.wait(state).expect("ticket lock");
        }
        match state.as_ref().expect("just checked") {
            Ok(()) => Ok(()),
            Err(msg) => Err(WalError::Io(std::io::Error::other(msg.clone()))),
        }
    }

    /// Non-blocking peek: `None` while the sync window is still open,
    /// `Some(result)` once it closed. Lets a pipelined appender retire
    /// completed acks without ever parking on an open window.
    pub fn try_ready(&self) -> Option<Result<(), WalError>> {
        let state = self.shared.state.lock().expect("ticket lock");
        state.as_ref().map(|outcome| match outcome {
            Ok(()) => Ok(()),
            Err(msg) => Err(WalError::Io(std::io::Error::other(msg.clone()))),
        })
    }
}

/// One queued sync request: which log + segment the bytes are in, a
/// handle to sync through, and the waiter to complete.
struct SyncRequest {
    /// `(log id, segment seq)`: the dedupe key — all requests against the
    /// same physical file share one fsync per window.
    key: (u64, u64),
    file: File,
    ticket: Arc<TicketShared>,
}

#[derive(Default)]
struct CommitterState {
    queue: Vec<SyncRequest>,
    shutdown: bool,
    /// Log ids of the logs currently attached to this committer. When
    /// every one of them has a request in `queue`, holding the window
    /// open any longer cannot grow the batch — it closes early.
    tenants: HashSet<u64>,
    submitted: u64,
    syncs: u64,
    windows: u64,
    early_closes: u64,
}

impl CommitterState {
    /// `true` when the open window cannot gain anything by waiting:
    /// every registered tenant already has a request queued. With no
    /// registered tenants the answer is always `false` (unknown
    /// population — wait the window out, the pre-registry behaviour).
    fn all_tenants_submitted(&self) -> bool {
        !self.tenants.is_empty()
            && self
                .tenants
                .iter()
                .all(|t| self.queue.iter().any(|r| r.key.0 == *t))
    }
}

struct CommitterShared {
    state: Mutex<CommitterState>,
    /// Wakes the sync thread when requests arrive or shutdown is set.
    work_cv: Condvar,
    /// Extra time the sync thread waits after the first request of a
    /// window, letting concurrent tenants' appends pile in. Zero = sync
    /// as soon as the thread gets the CPU (lowest latency; batching then
    /// only comes from fsync-in-progress backpressure).
    window: Duration,
    /// Telemetry hook: hears each fsync and each closed window. Behind
    /// its own mutex so installing one never contends with submitters.
    observer: Mutex<ObserverSlot>,
}

/// A shared fsync batcher: submit files, get tickets, pay one fsync per
/// distinct file per sync window. See the module docs for the contract.
#[derive(Debug)]
pub struct GroupCommitter {
    shared: Arc<CommitterShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for CommitterShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitterShared")
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl Default for GroupCommitter {
    fn default() -> Self {
        GroupCommitter::new()
    }
}

impl GroupCommitter {
    /// A committer that syncs as soon as its thread is scheduled (no
    /// artificial delay). Batching still happens whenever requests arrive
    /// faster than fsyncs complete.
    pub fn new() -> GroupCommitter {
        GroupCommitter::with_window(Duration::ZERO)
    }

    /// A committer that holds each sync window open for `window` after
    /// its first request, trading a bounded ack latency for bigger
    /// batches (more drains amortized per fsync).
    pub fn with_window(window: Duration) -> GroupCommitter {
        let shared = Arc::new(CommitterShared {
            state: Mutex::new(CommitterState::default()),
            work_cv: Condvar::new(),
            window,
            observer: Mutex::new(ObserverSlot::default()),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("anno-wal-group-commit".to_string())
            .spawn(move || committer_loop(&worker))
            .expect("spawn group-commit thread");
        GroupCommitter {
            shared,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Queue `file` (holding bytes of `(log id, segment)` = `key`) for
    /// the next sync window.
    pub(crate) fn submit(&self, key: (u64, u64), file: File) -> SyncTicket {
        let shared = Arc::new(TicketShared {
            state: Mutex::new(None),
            cv: Condvar::new(),
        });
        let mut state = self.shared.state.lock().expect("committer lock");
        state.submitted += 1;
        state.queue.push(SyncRequest {
            key,
            file,
            ticket: Arc::clone(&shared),
        });
        self.shared.work_cv.notify_one();
        drop(state);
        SyncTicket { shared }
    }

    /// Register a log as a committer tenant. While registered, its sync
    /// windows adapt: a window whose queue already covers *every*
    /// registered tenant closes immediately instead of waiting out its
    /// full duration (an idle-tenant-free round never pays the window).
    /// [`Wal::open`](crate::Wal::open) registers automatically when the
    /// policy is grouped; the matching drop deregisters.
    pub fn register_tenant(&self, log_id: u64) {
        let mut state = self.shared.state.lock().expect("committer lock");
        state.tenants.insert(log_id);
        // A currently-open window may now never satisfy the new roster;
        // that's fine — the deadline still bounds it.
        self.shared.work_cv.notify_all();
    }

    /// Remove a log from the tenant roster (its windows stop waiting for
    /// it). Idempotent.
    pub fn deregister_tenant(&self, log_id: u64) {
        let mut state = self.shared.state.lock().expect("committer lock");
        state.tenants.remove(&log_id);
        // The roster shrank: an open window may be satisfiable now.
        self.shared.work_cv.notify_all();
    }

    /// Install an observer that hears each fsync (with latency) and
    /// each closed sync window; replaces any previous one.
    pub fn set_observer(&self, observer: Arc<dyn WalObserver>) {
        self.shared
            .observer
            .lock()
            .expect("observer lock")
            .install(observer);
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> GroupCommitStats {
        let state = self.shared.state.lock().expect("committer lock");
        GroupCommitStats {
            submitted: state.submitted,
            syncs: state.syncs,
            windows: state.windows,
            early_closes: state.early_closes,
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("committer lock");
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        if let Some(handle) = self.thread.lock().expect("thread lock").take() {
            // The loop drains (and completes) everything still queued
            // before exiting, so no ticket is ever abandoned.
            let _ = handle.join();
        }
    }
}

fn committer_loop(shared: &CommitterShared) {
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("committer lock");
            while state.queue.is_empty() && !state.shutdown {
                state = shared.work_cv.wait(state).expect("committer lock");
            }
            if state.queue.is_empty() {
                debug_assert!(state.shutdown);
                return;
            }
            if !shared.window.is_zero() && !state.shutdown {
                // Window open: wait (releasing the lock so tenants keep
                // submitting) until the deadline — or close early the
                // moment every registered tenant has submitted, since no
                // further wait can grow the batch.
                let deadline = Instant::now() + shared.window;
                loop {
                    if state.shutdown {
                        break;
                    }
                    if state.all_tenants_submitted() {
                        state.early_closes += 1;
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = shared
                        .work_cv
                        .wait_timeout(state, deadline - now)
                        .expect("committer lock");
                    state = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            std::mem::take(&mut state.queue)
        };

        // Sync outside the lock: submissions for the *next* window are
        // never blocked behind this one's fsyncs.
        let observer = shared.observer.lock().expect("observer lock").clone();
        let window_start = Instant::now();
        let mut results: HashMap<(u64, u64), Result<(), String>> = HashMap::new();
        let mut syncs = 0u64;
        for req in &batch {
            results.entry(req.key).or_insert_with(|| {
                syncs += 1;
                let start = Instant::now();
                let outcome = req.file.sync_data().map_err(|e| e.to_string());
                observer.fsync(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                outcome
            });
        }
        observer.window_closed(
            batch.len() as u64,
            syncs,
            u64::try_from(window_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        for req in &batch {
            // Every key was inserted by the sync pass above; if that
            // invariant ever breaks, fail the ticket instead of the
            // committer thread.
            let outcome = results
                .get(&req.key)
                .cloned()
                .unwrap_or_else(|| Err("internal: sync result missing for ticket".to_string()));
            let mut slot = req.ticket.state.lock().expect("ticket lock");
            *slot = Some(outcome);
            req.ticket.cv.notify_all();
        }

        let mut state = shared.state.lock().expect("committer lock");
        state.syncs += syncs;
        state.windows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn policy_due_thresholds() {
        let stats = |records: u64, bytes: u64, secs: u64| WalStats {
            since_checkpoint_records: records,
            since_checkpoint_bytes: bytes,
            since_checkpoint_age: Duration::from_secs(secs),
            ..WalStats::default()
        };
        let disabled = CheckpointPolicy::default();
        assert!(!disabled.is_enabled());
        assert!(!disabled.due(&stats(1_000_000, u64::MAX, u64::MAX)));

        let by_records = CheckpointPolicy {
            replayed_records: Some(8),
            ..Default::default()
        };
        assert!(by_records.is_enabled());
        assert!(!by_records.due(&stats(7, u64::MAX, 0)));
        assert!(by_records.due(&stats(8, 0, 0)));

        let by_bytes = CheckpointPolicy {
            log_bytes: Some(1024),
            ..Default::default()
        };
        assert!(!by_bytes.due(&stats(5, 1023, 0)));
        assert!(by_bytes.due(&stats(5, 1024, 0)));

        let by_age = CheckpointPolicy {
            interval: Some(Duration::from_secs(60)),
            ..Default::default()
        };
        assert!(!by_age.due(&stats(5, 0, 59)));
        assert!(by_age.due(&stats(5, 0, 61)));
        // An empty delta never fires, whatever the clock says.
        assert!(!by_age.due(&stats(0, 0, 10_000)));
    }

    #[test]
    fn grouped_appends_ack_and_batch_fsyncs() {
        use crate::{Wal, WalOptions};
        let committer = Arc::new(GroupCommitter::with_window(Duration::from_millis(2)));
        let dirs: Vec<_> = (0..4).map(|i| test_dir(&format!("grouped-{i}"))).collect();
        // An idle fifth tenant keeps the adaptive windows open for their
        // full duration, so this test pins the batching path itself.
        let idle_dir = test_dir("grouped-idle");
        let (_idle, _) = Wal::open(
            &idle_dir,
            WalOptions {
                sync: SyncPolicy::Grouped(Arc::clone(&committer)),
                ..WalOptions::default()
            },
        )
        .unwrap();
        let mut wals: Vec<Wal> = dirs
            .iter()
            .map(|d| {
                Wal::open(
                    d,
                    WalOptions {
                        sync: SyncPolicy::Grouped(Arc::clone(&committer)),
                        ..WalOptions::default()
                    },
                )
                .unwrap()
                .0
            })
            .collect();

        // Several unacked appends per log, all landing in a couple of
        // windows: every ticket completes, and the committer issues far
        // fewer fsyncs than it got requests.
        let mut tickets = Vec::new();
        for round in 0..8 {
            for (i, wal) in wals.iter_mut().enumerate() {
                let (_, ticket) = wal
                    .append_async(format!("log-{i}-rec-{round}").as_bytes())
                    .unwrap();
                tickets.push(ticket.expect("grouped append returns a ticket"));
            }
        }
        for t in &tickets {
            t.wait().unwrap();
        }
        let stats = committer.stats();
        assert_eq!(stats.submitted, 32);
        assert!(
            stats.syncs < stats.submitted,
            "windows must dedupe per-file syncs: {stats:?}"
        );
        assert!(stats.windows >= 1);

        // Every record is on disk for a fresh (per-append) open.
        drop(wals);
        for (i, dir) in dirs.iter().enumerate() {
            let (_, rec) = Wal::open(dir, WalOptions::default()).unwrap();
            assert_eq!(rec.tail.len(), 8, "log {i} lost records");
            assert!(rec.damaged.is_none());
            std::fs::remove_dir_all(dir).unwrap();
        }
        drop(_idle);
        std::fs::remove_dir_all(&idle_dir).unwrap();
    }

    #[test]
    fn adaptive_window_closes_early_when_every_tenant_submitted() {
        use crate::{Wal, WalOptions};
        // A window far longer than the assertion bound: if the round
        // waited it out, the test fails on time alone.
        let committer = Arc::new(GroupCommitter::with_window(Duration::from_millis(500)));
        let dirs: Vec<_> = (0..3).map(|i| test_dir(&format!("adaptive-{i}"))).collect();
        let mut wals: Vec<Wal> = dirs
            .iter()
            .map(|d| {
                Wal::open(
                    d,
                    WalOptions {
                        sync: SyncPolicy::Grouped(Arc::clone(&committer)),
                        ..WalOptions::default()
                    },
                )
                .unwrap()
                .0
            })
            .collect();

        let start = Instant::now();
        let tickets: Vec<_> = wals
            .iter_mut()
            .map(|w| w.append_async(b"round").unwrap().1.expect("grouped"))
            .collect();
        for t in &tickets {
            t.wait().unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(250),
            "all tenants submitted, yet the round waited {elapsed:?} of a 500ms window"
        );
        assert!(
            committer.stats().early_closes >= 1,
            "the early close must be counted: {:?}",
            committer.stats()
        );
        drop(wals);
        for dir in &dirs {
            std::fs::remove_dir_all(dir).unwrap();
        }
    }

    #[test]
    fn idle_registered_tenant_holds_the_window_open() {
        use crate::{Wal, WalOptions};
        let window = Duration::from_millis(120);
        let committer = Arc::new(GroupCommitter::with_window(window));
        let dirs: Vec<_> = (0..2)
            .map(|i| test_dir(&format!("idle-tenant-{i}")))
            .collect();
        let mut wals: Vec<Wal> = dirs
            .iter()
            .map(|d| {
                Wal::open(
                    d,
                    WalOptions {
                        sync: SyncPolicy::Grouped(Arc::clone(&committer)),
                        ..WalOptions::default()
                    },
                )
                .unwrap()
                .0
            })
            .collect();

        // Only tenant 0 submits: the committer cannot know tenant 1 is
        // idle, so the window must run its course.
        let start = Instant::now();
        let (_, ticket) = wals[0].append_async(b"lonely").unwrap();
        ticket.expect("grouped").wait().unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(80),
            "an idle tenant must not let the window close early ({elapsed:?})"
        );
        assert_eq!(committer.stats().early_closes, 0);
        drop(wals);
        for dir in &dirs {
            std::fs::remove_dir_all(dir).unwrap();
        }
    }

    #[test]
    fn committer_drop_completes_stragglers() {
        use crate::{Wal, WalOptions};
        let committer = Arc::new(GroupCommitter::with_window(Duration::from_millis(5)));
        let dir = test_dir("committer-drop");
        let (mut wal, _) = Wal::open(
            &dir,
            WalOptions {
                sync: SyncPolicy::Grouped(Arc::clone(&committer)),
                ..WalOptions::default()
            },
        )
        .unwrap();
        let (_, ticket) = wal.append_async(b"last words").unwrap();
        let ticket = ticket.unwrap();
        drop(committer);
        drop(wal);
        // The wal's own Arc keeps the committer's *shared state* alive,
        // but the owning handle above was the thread owner: its drop must
        // have flushed the queue before joining.
        ticket.wait().unwrap();
        let (_, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rec.tail, vec![b"last words".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
