//! Crash-injection property suite: damage the log at an arbitrary byte —
//! truncation (a torn write) or a bit flip (disk rot) — then recover and
//! assert the contract the serving layer builds on:
//!
//! * the recovered records are an **exact prefix** of the committed
//!   records after the last checkpoint (never a torn, reordered, or
//!   fabricated record);
//! * the checkpoint payload itself is untouched (it is written atomically
//!   and CRC-guarded, and compaction means damaged segments can only hold
//!   post-checkpoint records);
//! * damage is **reported, not fatal** — recovery returns, and appends
//!   resume strictly after the recovered prefix.
//!
//! Case counts respect the `PROPTEST_CASES` cap, so CI can bound the
//! suite (see `.github/workflows/ci.yml`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use anno_wal::segment::{list_segments, segment_path};
use anno_wal::{SyncPolicy, Wal, WalOptions};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_dir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("anno-wal-crash-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(segment_bytes: u64) -> WalOptions {
    WalOptions {
        segment_bytes,
        sync: SyncPolicy::Never,
    }
}

/// Distinct, size-controlled payload for record `i`.
fn payload(i: usize, size: usize) -> Vec<u8> {
    (0..size.max(1))
        .map(|j| (i.wrapping_mul(31).wrapping_add(j.wrapping_mul(7)) & 0xFF) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn damage_anywhere_recovers_an_exact_prefix(
        record_sizes in proptest::collection::vec(0usize..160, 1..32),
        segment_bytes in 64u64..512,
        checkpoint_after in 0usize..32,
        damage_seed in 0u64..u64::MAX,
        flip in proptest::prelude::any::<bool>(),
    ) {
        let dir = case_dir();
        let records: Vec<Vec<u8>> = record_sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| payload(i, size))
            .collect();
        let ckpt_at = checkpoint_after.min(records.len());

        // Commit: ckpt_at records, a checkpoint, then the rest.
        {
            let (mut wal, _) = Wal::open(&dir, opts(segment_bytes)).unwrap();
            for p in &records[..ckpt_at] {
                wal.append(p).unwrap();
            }
            wal.checkpoint(format!("state@{ckpt_at}").as_bytes()).unwrap();
            for p in &records[ckpt_at..] {
                wal.append(p).unwrap();
            }
        }
        let committed: Vec<Vec<u8>> = records[ckpt_at..].to_vec();

        // Damage one arbitrary byte of the segment files (the WAL proper;
        // the checkpoint's own durability is covered by its atomic-rename
        // protocol and CRC).
        let seqs = list_segments(&dir).unwrap();
        let sizes: Vec<u64> = seqs
            .iter()
            .map(|&s| std::fs::metadata(segment_path(&dir, s)).unwrap().len())
            .collect();
        let total: u64 = sizes.iter().sum();
        let mut at = damage_seed % total;
        let mut victim = 0usize;
        while at >= sizes[victim] {
            at -= sizes[victim];
            victim += 1;
        }
        let path = segment_path(&dir, seqs[victim]);
        if flip {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[at as usize] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
        } else {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(at)
                .unwrap();
        }

        // Recover: prefix semantics, checkpoint intact, damage reported.
        let (mut wal, rec) = Wal::open(&dir, opts(segment_bytes)).unwrap();
        prop_assert_eq!(
            rec.checkpoint.as_ref().map(|c| c.payload.clone()),
            Some(format!("state@{ckpt_at}").into_bytes()),
            "checkpoint payload must survive segment damage"
        );
        prop_assert!(
            committed.starts_with(&rec.tail),
            "recovered tail must be an exact prefix: {} committed, {} recovered",
            committed.len(),
            rec.tail.len()
        );
        // A bit flip always lands in live bytes (header, framing, or
        // payload) and must be caught by a CRC, header, or chain check. A
        // truncation is caught too — except at an exact record boundary of
        // the *last* segment, which is indistinguishable from those drains
        // never having committed (there is no successor to record the
        // sealed length); the prefix property above still holds there.
        if flip {
            // The one flip CRC/header/chain checks cannot see is in the
            // first scanned segment's predecessor-length field, which is
            // unused at the chain start — provably harmless, so nothing
            // may be missing.
            if rec.damaged.is_none() {
                prop_assert_eq!(
                    rec.tail.clone(),
                    committed.clone(),
                    "an unreported flip must not have cost any record"
                );
            }
        } else if rec.damaged.is_none() {
            prop_assert_eq!(
                victim,
                seqs.len() - 1,
                "an undetected truncation can only be a record-boundary cut \
                 of the active segment"
            );
        }

        // Not fatal: the log keeps working, and the resumed record lands
        // after the recovered prefix on the next recovery.
        wal.append(b"post-recovery").unwrap();
        drop(wal);
        let (_, rec2) = Wal::open(&dir, opts(segment_bytes)).unwrap();
        let mut expect = rec.tail.clone();
        expect.push(b"post-recovery".to_vec());
        prop_assert_eq!(rec2.tail, expect);
        prop_assert!(rec2.damaged.is_none());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn undamaged_logs_always_recover_everything(
        record_sizes in proptest::collection::vec(0usize..160, 0..32),
        segment_bytes in 64u64..512,
    ) {
        let dir = case_dir();
        let records: Vec<Vec<u8>> = record_sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| payload(i, size))
            .collect();
        {
            let (mut wal, _) = Wal::open(&dir, opts(segment_bytes)).unwrap();
            for p in &records {
                wal.append(p).unwrap();
            }
        }
        let (_, rec) = Wal::open(&dir, opts(segment_bytes)).unwrap();
        prop_assert_eq!(rec.tail, records);
        prop_assert!(rec.damaged.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A pid that provably does not run right now (scanned down from a high
/// number), so a lock naming it reads as stale.
fn dead_pid() -> u32 {
    (2..99_999u32)
        .rev()
        .find(|pid| !std::path::Path::new(&format!("/proc/{pid}")).exists())
        .expect("some pid below 99999 must be unused")
}

#[test]
fn live_lock_refuses_every_concurrent_open() {
    use anno_wal::WalError;
    let dir = case_dir();
    let (holder, _) = Wal::open(&dir, opts(4096)).unwrap();

    // A stampede of opens against a *live* owner: every one must be
    // refused with `Locked`, and none may damage the owner's lock.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
    let losers: Vec<_> = (0..8)
        .map(|_| {
            let dir = dir.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                Wal::open(&dir, opts(4096))
            })
        })
        .collect();
    for t in losers {
        match t.join().unwrap() {
            Err(WalError::Locked(_)) => {}
            other => panic!("a live lock must refuse opens, got {other:?}"),
        }
    }

    // The owner is unharmed: it still appends, and releasing it frees
    // the directory for exactly the normal path.
    let mut holder = holder;
    holder.append(b"still the owner").unwrap();
    drop(holder);
    let (_, rec) = Wal::open(&dir, opts(4096)).unwrap();
    assert_eq!(rec.tail, vec![b"still the owner".to_vec()]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_lock_is_reclaimed_by_exactly_one_racer() {
    use anno_wal::{WalError, LOCK_FILE};
    // Run the race several rounds: a single lucky interleaving proves
    // little about a mutual-exclusion bug.
    for round in 0..16 {
        let dir = case_dir();
        {
            // Seed the directory with one committed record, then fake a
            // crash: the owner "dies" leaving a lock naming a dead pid.
            let (mut wal, _) = Wal::open(&dir, opts(4096)).unwrap();
            wal.append(format!("pre-crash-{round}").as_bytes()).unwrap();
            drop(wal);
        }
        std::fs::write(dir.join(LOCK_FILE), format!("{}:0", dead_pid())).unwrap();

        let barrier = std::sync::Arc::new(std::sync::Barrier::new(6));
        let racers: Vec<_> = (0..6)
            .map(|_| {
                let dir = dir.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    Wal::open(&dir, opts(4096))
                })
            })
            .collect();
        let mut winners = Vec::new();
        for t in racers {
            match t.join().unwrap() {
                Ok((wal, rec)) => {
                    // The winner sees the committed pre-crash state whole.
                    assert_eq!(rec.tail, vec![format!("pre-crash-{round}").into_bytes()]);
                    winners.push(wal);
                }
                // Losers lose cleanly: refused, never corrupted.
                Err(WalError::Locked(_)) => {}
                Err(other) => panic!("round {round}: unexpected failure {other:?}"),
            }
        }
        assert_eq!(
            winners.len(),
            1,
            "round {round}: a stale lock must be reclaimed exactly once"
        );
        // The reclaimed lock now names the live winner, so a follow-up
        // open is refused like any other double-open.
        match Wal::open(&dir, opts(4096)) {
            Err(WalError::Locked(_)) => {}
            other => panic!("round {round}: winner's lock must hold, got {other:?}"),
        }
        drop(winners);
        std::fs::remove_dir_all(&dir).ok();
    }
}
