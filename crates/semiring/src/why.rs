//! The why-provenance semiring `Why(X) = P(P(X))`: witness sets.
//!
//! An annotation is a *set of witnesses*, each witness being a set of base
//! facts that jointly suffice to derive the tuple. `+` unions the witness
//! sets (either derivation works); `·` combines every witness of one side
//! with every witness of the other (both are needed). `∅` (no witnesses) is
//! absence; `{∅}` (one empty witness) is unconditional presence.
//!
//! `Why(X)` sits strictly between the provenance polynomials `N[X]` (which
//! additionally track multiplicities and exponents) and lineage `Lin(X)`
//! (which flattens all witnesses together); see [`Why::to_lineage`].

use std::collections::BTreeSet;

use crate::lineage::Lineage;
use crate::traits::{Monus, NaturallyOrdered, Semiring, Var};

/// A single witness: a set of base facts that together derive the tuple.
pub type Witness = BTreeSet<Var>;

/// A why-provenance annotation: the set of minimal-or-not witnesses.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Why(pub BTreeSet<Witness>);

impl Why {
    /// Why-provenance of a base fact: one singleton witness.
    pub fn var(v: Var) -> Self {
        Why(BTreeSet::from([BTreeSet::from([v])]))
    }

    /// Build from an iterator of witnesses.
    pub fn from_witnesses<I>(witnesses: I) -> Self
    where
        I: IntoIterator<Item = Witness>,
    {
        Why(witnesses.into_iter().collect())
    }

    /// Number of distinct witnesses.
    pub fn witness_count(&self) -> usize {
        self.0.len()
    }

    /// Forget the witness structure, keeping only which variables appear:
    /// the canonical homomorphism `Why(X) → Lin(X)`.
    pub fn to_lineage(&self) -> Lineage {
        if self.0.is_empty() {
            Lineage::Absent
        } else {
            Lineage::Present(self.0.iter().flatten().copied().collect())
        }
    }
}

impl Semiring for Why {
    fn zero() -> Self {
        Why(BTreeSet::new())
    }
    fn one() -> Self {
        Why(BTreeSet::from([BTreeSet::new()]))
    }
    fn plus(&self, other: &Self) -> Self {
        Why(self.0.union(&other.0).cloned().collect())
    }
    fn times(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).copied().collect());
            }
        }
        Why(out)
    }
    fn is_zero(&self) -> bool {
        self.0.is_empty()
    }
}

impl NaturallyOrdered for Why {
    fn natural_leq(&self, other: &Self) -> bool {
        // a + c = b requires a ⊆ b as witness sets.
        self.0.is_subset(&other.0)
    }
}

impl Monus for Why {
    fn monus(&self, other: &Self) -> Self {
        // Natural order is witness-set inclusion: the least c with
        // a ⊆ b ∪ c is the plain set difference.
        Why(self.0.difference(&other.0).cloned().collect())
    }
}

impl std::fmt::Display for Why {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, v) in w.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(vs: &[u32]) -> Witness {
        vs.iter().map(|&v| Var(v)).collect()
    }

    #[test]
    fn plus_unions_witness_sets() {
        let a = Why::from_witnesses([w(&[1])]);
        let b = Why::from_witnesses([w(&[2, 3])]);
        let sum = a.plus(&b);
        assert_eq!(sum.witness_count(), 2);
        assert!(sum.0.contains(&w(&[1])));
        assert!(sum.0.contains(&w(&[2, 3])));
    }

    #[test]
    fn times_is_pairwise_union() {
        let a = Why::from_witnesses([w(&[1]), w(&[2])]);
        let b = Why::from_witnesses([w(&[3])]);
        let prod = a.times(&b);
        assert_eq!(prod, Why::from_witnesses([w(&[1, 3]), w(&[2, 3])]));
    }

    #[test]
    fn duplicate_witnesses_collapse() {
        let a = Why::from_witnesses([w(&[1, 2])]);
        let b = Why::from_witnesses([w(&[1]), w(&[2])]);
        // (x1·x2) from both sides collapses to a single witness.
        let prod = a.times(&b);
        assert_eq!(prod, Why::from_witnesses([w(&[1, 2])]));
    }

    #[test]
    fn identities() {
        let a = Why::var(Var(1));
        assert_eq!(a.plus(&Why::zero()), a);
        assert_eq!(a.times(&Why::one()), a);
        assert_eq!(a.times(&Why::zero()), Why::zero());
        assert!(Why::zero().is_zero());
    }

    #[test]
    fn to_lineage_flattens_witnesses() {
        let a = Why::from_witnesses([w(&[1]), w(&[2, 3])]);
        assert_eq!(a.to_lineage(), Lineage::from_vars([Var(1), Var(2), Var(3)]));
        assert_eq!(Why::zero().to_lineage(), Lineage::Absent);
        assert_eq!(Why::one().to_lineage(), Lineage::one());
    }

    #[test]
    fn to_lineage_is_a_homomorphism_on_samples() {
        let a = Why::from_witnesses([w(&[1]), w(&[2])]);
        let b = Why::from_witnesses([w(&[3])]);
        assert_eq!(
            a.plus(&b).to_lineage(),
            a.to_lineage().plus(&b.to_lineage())
        );
        assert_eq!(
            a.times(&b).to_lineage(),
            a.to_lineage().times(&b.to_lineage())
        );
    }

    #[test]
    fn natural_order_is_witness_subset() {
        let a = Why::from_witnesses([w(&[1])]);
        let ab = Why::from_witnesses([w(&[1]), w(&[2])]);
        assert!(a.natural_leq(&ab));
        assert!(!ab.natural_leq(&a));
    }
}
