//! The semiring trait family.
//!
//! A commutative semiring `(K, +, ·, 0, 1)` is two commutative monoids glued
//! together by distributivity, with `0` annihilating `·`. These laws are what
//! make provenance propagation through relational algebra well-defined
//! regardless of the plan chosen by an optimiser: `+` and `·` may be
//! reassociated and commuted freely, so equivalent plans produce equal
//! annotations. Every instance in this crate is checked against the laws by
//! the property tests in `tests/axioms.rs`.

use std::fmt::Debug;

/// A variable (base-fact identifier) in abstract provenance expressions.
///
/// Variables name the *sources* of derived data: in `annomine` a variable is
/// an interned annotation identifier, but nothing in this crate depends on
/// that interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A commutative monoid `(K, op, unit)`.
///
/// Laws (checked by property tests for every implementation shipped here):
///
/// * associativity: `op(a, op(b, c)) == op(op(a, b), c)`
/// * commutativity: `op(a, b) == op(b, a)`
/// * identity:      `op(a, unit()) == a`
pub trait CommutativeMonoid: Clone + PartialEq + Debug {
    /// The identity element of the monoid.
    fn unit() -> Self;
    /// The (commutative, associative) binary operation.
    fn op(&self, other: &Self) -> Self;
}

/// A commutative semiring `(K, +, ·, 0, 1)`.
///
/// Laws, in addition to both `(K, +, 0)` and `(K, ·, 1)` being commutative
/// monoids:
///
/// * distributivity: `a · (b + c) == a·b + a·c`
/// * annihilation:   `a · 0 == 0`
///
/// The operations take `&self` so that set-valued semirings (lineage, why,
/// polynomials) do not force clones at every call site; cheap `Copy`
/// instances compile down to the obvious scalar code.
pub trait Semiring: Clone + PartialEq + Debug {
    /// The additive identity; annotation of tuples that are absent.
    fn zero() -> Self;
    /// The multiplicative identity; annotation of unconditionally present
    /// base tuples.
    fn one() -> Self;
    /// Combine alternative derivations (`union`, duplicate elimination).
    fn plus(&self, other: &Self) -> Self;
    /// Combine joint derivations (`join`).
    fn times(&self, other: &Self) -> Self;

    /// `true` iff this value is the additive identity.
    ///
    /// Used by query operators to drop annotated tuples that have become
    /// absent; the default compares against [`Semiring::zero`].
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Fold `plus` over an iterator (∑). Returns [`Semiring::zero`] for an
    /// empty iterator.
    fn sum<'a, I>(iter: I) -> Self
    where
        Self: 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        iter.into_iter().fold(Self::zero(), |acc, x| acc.plus(x))
    }

    /// Fold `times` over an iterator (∏). Returns [`Semiring::one`] for an
    /// empty iterator.
    fn product<'a, I>(iter: I) -> Self
    where
        Self: 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        iter.into_iter().fold(Self::one(), |acc, x| acc.times(x))
    }
}

/// Semirings whose *natural order* (`a ≤ b` iff `∃c. a + c = b`) is a
/// partial order.
///
/// All provenance semirings used for query answering in practice are
/// naturally ordered; the order is what gives "more provenance" a meaning
/// and is the basis for incremental maintenance arguments (adding facts can
/// only move annotations up the order).
pub trait NaturallyOrdered: Semiring {
    /// `true` iff `self ≤ other` in the natural order.
    fn natural_leq(&self, other: &Self) -> bool;
}

/// Semirings with a *monus* (truncated difference): `a ∸ b` is the least
/// `c` in the natural order such that `a ≤ b + c`.
///
/// Monus is what gives annotated databases a principled relational
/// difference (Geerts–Poggi m-semirings): `R − S` annotates each tuple
/// with `R(t) ∸ S(t)`. Laws checked by the property tests:
///
/// * `a ≤ b + (a ∸ b)` (the defining inequality)
/// * `a ≤ b + c  ⇒  a ∸ b ≤ c` (minimality)
/// * `0 ∸ b = 0`
pub trait Monus: NaturallyOrdered {
    /// Truncated difference `self ∸ other`.
    fn monus(&self, other: &Self) -> Self;
}

/// A homomorphism between semirings: a structure-preserving map.
///
/// Laws: `map(0) = 0`, `map(1) = 1`, `map(a + b) = map(a) + map(b)`,
/// `map(a · b) = map(a) · map(b)`.
///
/// Homomorphisms are the formal counterpart of *annotation generalization*
/// (paper §4.1): replacing raw annotations by their concept labels commutes
/// with query evaluation precisely because the replacement is a homomorphism
/// on the provenance semiring.
pub trait SemiringHom<A: Semiring, B: Semiring> {
    /// Apply the homomorphism to a single annotation.
    fn map(&self, a: &A) -> B;
}

/// Every `Fn(&A) -> B` can act as a homomorphism carrier.
///
/// The *caller* is responsible for the function actually satisfying the
/// homomorphism laws; the property tests in this crate demonstrate the
/// pattern for the shipped instances.
impl<A: Semiring, B: Semiring, F: Fn(&A) -> B> SemiringHom<A, B> for F {
    fn map(&self, a: &A) -> B {
        self(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool2;
    use crate::natural::Natural;

    #[test]
    fn var_display_is_compact() {
        assert_eq!(Var(7).to_string(), "x7");
    }

    #[test]
    fn sum_of_empty_iterator_is_zero() {
        let empty: [Natural; 0] = [];
        assert_eq!(Natural::sum(empty.iter()), Natural::zero());
    }

    #[test]
    fn product_of_empty_iterator_is_one() {
        let empty: [Natural; 0] = [];
        assert_eq!(Natural::product(empty.iter()), Natural::one());
    }

    #[test]
    fn sum_and_product_fold_in_order() {
        let xs = [
            Natural::from(2u64),
            Natural::from(3u64),
            Natural::from(4u64),
        ];
        assert_eq!(Natural::sum(xs.iter()), Natural::from(9u64));
        assert_eq!(Natural::product(xs.iter()), Natural::from(24u64));
    }

    #[test]
    fn is_zero_default_matches_zero() {
        assert!(Bool2::zero().is_zero());
        assert!(!Bool2::one().is_zero());
    }

    #[test]
    fn closures_are_homomorphism_carriers() {
        let h = |b: &Bool2| -> Natural {
            if b.0 {
                Natural::one()
            } else {
                Natural::zero()
            }
        };
        assert_eq!(h.map(&Bool2::one()), Natural::one());
        assert_eq!(h.map(&Bool2::zero()), Natural::zero());
    }
}
