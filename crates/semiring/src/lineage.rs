//! The lineage semiring `Lin(X)`: which base facts contributed at all.
//!
//! `Lin(X) = P(X) ∪ {⊥}` where `⊥` annotates absent tuples, `∅` annotates
//! unconditionally-present tuples, and both `+` and `·` are set union on
//! present values. Lineage is the coarsest set-valued provenance: it forgets
//! *how* facts combine and remembers only *which* were involved.
//!
//! In `annomine`, a tuple's annotation set (paper Definition 4.1) *is* its
//! lineage over the annotation vocabulary, and applying a generalization
//! taxonomy to it is a homomorphism `Lin(X) → Lin(Y)` induced by the
//! variable map — see [`crate::hom::rename`].

use std::collections::BTreeSet;

use crate::traits::{Monus, NaturallyOrdered, Semiring, Var};

/// A lineage annotation: `Absent` (⊥) or the set of contributing variables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lineage {
    /// The tuple is absent (additive identity).
    Absent,
    /// The tuple is present, derived from exactly this set of base facts.
    /// The empty set is the multiplicative identity (present with no
    /// provenance — e.g. a constant).
    Present(BTreeSet<Var>),
}

impl Lineage {
    /// Lineage of a base fact: the singleton `{v}`.
    pub fn var(v: Var) -> Self {
        Lineage::Present(BTreeSet::from([v]))
    }

    /// Lineage from an iterator of variables.
    pub fn from_vars<I: IntoIterator<Item = Var>>(vars: I) -> Self {
        Lineage::Present(vars.into_iter().collect())
    }

    /// The contributing variables, or `None` if absent.
    pub fn vars(&self) -> Option<&BTreeSet<Var>> {
        match self {
            Lineage::Absent => None,
            Lineage::Present(s) => Some(s),
        }
    }

    /// `true` iff `v` contributed to this tuple.
    pub fn contains(&self, v: Var) -> bool {
        matches!(self, Lineage::Present(s) if s.contains(&v))
    }
}

impl Semiring for Lineage {
    fn zero() -> Self {
        Lineage::Absent
    }
    fn one() -> Self {
        Lineage::Present(BTreeSet::new())
    }
    fn plus(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Absent, x) | (x, Lineage::Absent) => x.clone(),
            (Lineage::Present(a), Lineage::Present(b)) => {
                Lineage::Present(a.union(b).copied().collect())
            }
        }
    }
    fn times(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Absent, _) | (_, Lineage::Absent) => Lineage::Absent,
            (Lineage::Present(a), Lineage::Present(b)) => {
                Lineage::Present(a.union(b).copied().collect())
            }
        }
    }
    fn is_zero(&self) -> bool {
        matches!(self, Lineage::Absent)
    }
}

impl NaturallyOrdered for Lineage {
    fn natural_leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Lineage::Absent, _) => true,
            (Lineage::Present(_), Lineage::Absent) => false,
            // a + c = b requires a ⊆ b (union can only add variables).
            (Lineage::Present(a), Lineage::Present(b)) => a.is_subset(b),
        }
    }
}

impl Monus for Lineage {
    fn monus(&self, other: &Self) -> Self {
        match (self, other) {
            (Lineage::Absent, _) => Lineage::Absent,
            (x, Lineage::Absent) => x.clone(),
            (Lineage::Present(s), Lineage::Present(t)) => {
                if s.is_subset(t) {
                    // b + ⊥ = b already dominates a: the least witness is ⊥.
                    Lineage::Absent
                } else {
                    Lineage::Present(s.difference(t).copied().collect())
                }
            }
        }
    }
}

impl std::fmt::Display for Lineage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lineage::Absent => write!(f, "⊥"),
            Lineage::Present(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(vs: &[u32]) -> Lineage {
        Lineage::from_vars(vs.iter().map(|&v| Var(v)))
    }

    #[test]
    fn plus_and_times_both_union() {
        let a = lin(&[1, 2]);
        let b = lin(&[2, 3]);
        assert_eq!(a.plus(&b), lin(&[1, 2, 3]));
        assert_eq!(a.times(&b), lin(&[1, 2, 3]));
    }

    #[test]
    fn absent_is_identity_for_plus_and_annihilator_for_times() {
        let a = lin(&[1]);
        assert_eq!(a.plus(&Lineage::Absent), a);
        assert_eq!(a.times(&Lineage::Absent), Lineage::Absent);
    }

    #[test]
    fn empty_set_differs_from_absent() {
        assert_ne!(Lineage::one(), Lineage::zero());
        let a = lin(&[4]);
        assert_eq!(a.times(&Lineage::one()), a);
    }

    #[test]
    fn contains_and_vars_accessors() {
        let a = lin(&[5, 6]);
        assert!(a.contains(Var(5)));
        assert!(!a.contains(Var(7)));
        assert!(!Lineage::Absent.contains(Var(5)));
        assert_eq!(a.vars().unwrap().len(), 2);
        assert!(Lineage::Absent.vars().is_none());
    }

    #[test]
    fn natural_order_is_subset_with_bottom() {
        assert!(Lineage::Absent.natural_leq(&lin(&[1])));
        assert!(lin(&[1]).natural_leq(&lin(&[1, 2])));
        assert!(!lin(&[1, 2]).natural_leq(&lin(&[1])));
        assert!(!lin(&[]).natural_leq(&Lineage::Absent));
    }

    #[test]
    fn display_formats_sets() {
        assert_eq!(lin(&[1, 2]).to_string(), "{x1,x2}");
        assert_eq!(Lineage::Absent.to_string(), "⊥");
    }
}
