//! The access-control (security) semiring.
//!
//! Clearance levels ordered `Public < Confidential < Secret < TopSecret <
//! Inaccessible`. `join` needs *all* inputs, so it takes the most restrictive
//! level (`max`); `union` needs *any* derivation, so it takes the least
//! restrictive (`min`). `Inaccessible` annotates absent tuples (additive
//! identity), `Public` is the multiplicative identity. This is the canonical
//! "security semiring" of Foster–Green–Tannen.

use crate::traits::{Monus, NaturallyOrdered, Semiring};

/// A clearance level required to see a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Security {
    /// Visible to everyone; the multiplicative identity.
    Public,
    /// Visible to confidential clearance and above.
    Confidential,
    /// Visible to secret clearance and above.
    Secret,
    /// Visible to top-secret clearance only.
    TopSecret,
    /// Visible to no one (absent tuple); the additive identity.
    Inaccessible,
}

impl Security {
    /// All levels in increasing restrictiveness, for iteration in tests and
    /// exhaustive property checks.
    pub const ALL: [Security; 5] = [
        Security::Public,
        Security::Confidential,
        Security::Secret,
        Security::TopSecret,
        Security::Inaccessible,
    ];

    /// `true` iff a principal with clearance `clearance` may see data
    /// annotated with `self`.
    pub fn visible_to(&self, clearance: Security) -> bool {
        *self != Security::Inaccessible && *self <= clearance
    }
}

impl Semiring for Security {
    fn zero() -> Self {
        Security::Inaccessible
    }
    fn one() -> Self {
        Security::Public
    }
    fn plus(&self, other: &Self) -> Self {
        // Any derivation suffices: least restrictive wins.
        (*self).min(*other)
    }
    fn times(&self, other: &Self) -> Self {
        // All inputs required: most restrictive wins.
        (*self).max(*other)
    }
}

impl NaturallyOrdered for Security {
    fn natural_leq(&self, other: &Self) -> bool {
        // a ≤ b iff ∃c. min(a, c) = b iff b is at most as restrictive as a.
        other <= self
    }
}

impl Monus for Security {
    fn monus(&self, other: &Self) -> Self {
        // Least c in the natural order (= most restrictive) such that
        // a ≤ b + c, i.e. min(b, c) at most as restrictive as a. When b is
        // already at most as restrictive as a, c = Inaccessible (the
        // natural zero) suffices; otherwise c must itself be ≤ a, and the
        // natural-least such c is a.
        if other <= self {
            Security::Inaccessible
        } else {
            *self
        }
    }
}

impl std::fmt::Display for Security {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Security::Public => "P",
            Security::Confidential => "C",
            Security::Secret => "S",
            Security::TopSecret => "T",
            Security::Inaccessible => "0",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_escalates_union_relaxes() {
        use Security::*;
        assert_eq!(Confidential.times(&Secret), Secret);
        assert_eq!(Confidential.plus(&Secret), Confidential);
        assert_eq!(Public.times(&TopSecret), TopSecret);
    }

    #[test]
    fn identities() {
        use Security::*;
        for level in Security::ALL {
            assert_eq!(level.plus(&Inaccessible), level);
            assert_eq!(level.times(&Public), level);
            assert_eq!(level.times(&Inaccessible), Inaccessible);
        }
    }

    #[test]
    fn distributivity_holds_exhaustively() {
        for a in Security::ALL {
            for b in Security::ALL {
                for c in Security::ALL {
                    assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
                }
            }
        }
    }

    #[test]
    fn visibility_respects_clearance() {
        use Security::*;
        assert!(Public.visible_to(Public));
        assert!(Secret.visible_to(TopSecret));
        assert!(!Secret.visible_to(Confidential));
        assert!(!Inaccessible.visible_to(TopSecret));
    }

    #[test]
    fn display_is_single_letter() {
        let s: String = Security::ALL.iter().map(|l| l.to_string()).collect();
        assert_eq!(s, "PCST0");
    }
}
