//! The Boolean semiring `(B, ∨, ∧, false, true)` — set semantics.
//!
//! Annotating every tuple with `Bool2` and propagating through queries gives
//! ordinary set-semantics relational algebra: a tuple is in the answer iff
//! its annotation evaluates to `true`. `Bool2` is the terminal object of the
//! provenance hierarchy: every other semiring here has a homomorphism onto
//! it ("does this tuple exist at all?").

use crate::traits::{Monus, NaturallyOrdered, Semiring};

/// The two-element Boolean semiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bool2(pub bool);

impl Semiring for Bool2 {
    fn zero() -> Self {
        Bool2(false)
    }
    fn one() -> Self {
        Bool2(true)
    }
    fn plus(&self, other: &Self) -> Self {
        Bool2(self.0 || other.0)
    }
    fn times(&self, other: &Self) -> Self {
        Bool2(self.0 && other.0)
    }
    fn is_zero(&self) -> bool {
        !self.0
    }
}

impl NaturallyOrdered for Bool2 {
    fn natural_leq(&self, other: &Self) -> bool {
        // false ≤ false ≤ true ≤ true; only true ≤ false fails.
        !self.0 || other.0
    }
}

impl Monus for Bool2 {
    fn monus(&self, other: &Self) -> Self {
        // Least c with a ≤ b ∨ c: false if b covers a, else a.
        Bool2(self.0 && !other.0)
    }
}

impl From<bool> for Bool2 {
    fn from(b: bool) -> Self {
        Bool2(b)
    }
}

impl std::fmt::Display for Bool2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", if self.0 { "⊤" } else { "⊥" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table() {
        let t = Bool2(true);
        let f = Bool2(false);
        assert_eq!(t.plus(&f), t);
        assert_eq!(f.plus(&f), f);
        assert_eq!(t.times(&f), f);
        assert_eq!(t.times(&t), t);
    }

    #[test]
    fn identities() {
        assert_eq!(Bool2::zero(), Bool2(false));
        assert_eq!(Bool2::one(), Bool2(true));
        assert!(Bool2::zero().is_zero());
    }

    #[test]
    fn natural_order_is_implication() {
        assert!(Bool2(false).natural_leq(&Bool2(true)));
        assert!(Bool2(false).natural_leq(&Bool2(false)));
        assert!(Bool2(true).natural_leq(&Bool2(true)));
        assert!(!Bool2(true).natural_leq(&Bool2(false)));
    }

    #[test]
    fn display_uses_lattice_symbols() {
        assert_eq!(Bool2(true).to_string(), "⊤");
        assert_eq!(Bool2(false).to_string(), "⊥");
    }
}
