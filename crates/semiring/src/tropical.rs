//! The tropical semiring `(ℕ ∪ {∞}, min, +, ∞, 0)` — cost provenance.
//!
//! Annotating base tuples with acquisition costs and propagating through
//! queries computes, for each answer, the cheapest way to derive it: `join`
//! adds costs, `union` keeps the minimum. `∞` (the additive identity) is the
//! cost of absent tuples.

use crate::traits::{Monus, NaturallyOrdered, Semiring};

/// Cost annotations: a non-negative cost or infinity.
///
/// Represented as `u64` with `u64::MAX` reserved for ∞; addition saturates
/// into ∞ which keeps the laws exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tropical(u64);

impl Tropical {
    /// The infinite cost (annotation of absent tuples).
    pub const INFINITY: Tropical = Tropical(u64::MAX);

    /// A finite cost. Panics if `cost == u64::MAX`, which is reserved for ∞.
    pub fn finite(cost: u64) -> Self {
        assert!(
            cost != u64::MAX,
            "u64::MAX is reserved for Tropical::INFINITY"
        );
        Tropical(cost)
    }

    /// The cost as `Some(finite)` or `None` for ∞.
    pub fn cost(&self) -> Option<u64> {
        (self.0 != u64::MAX).then_some(self.0)
    }

    /// `true` iff the cost is infinite.
    pub fn is_infinite(&self) -> bool {
        self.0 == u64::MAX
    }
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical::INFINITY
    }
    fn one() -> Self {
        Tropical(0)
    }
    fn plus(&self, other: &Self) -> Self {
        Tropical(self.0.min(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        // ∞ + anything = ∞; saturating_add maps exactly onto that because
        // both operands are ≤ u64::MAX and ∞ saturates.
        if self.is_infinite() || other.is_infinite() {
            Tropical::INFINITY
        } else {
            Tropical(self.0.saturating_add(other.0))
        }
    }
    fn is_zero(&self) -> bool {
        self.is_infinite()
    }
}

impl NaturallyOrdered for Tropical {
    fn natural_leq(&self, other: &Self) -> bool {
        // a ≤ b iff ∃c. min(a, c) = b, i.e. b ≤ a numerically: the natural
        // order of (min, +) is the *reverse* numeric order — cheaper is
        // "more present".
        other.0 <= self.0
    }
}

impl Monus for Tropical {
    fn monus(&self, other: &Self) -> Self {
        // Natural order is reverse-numeric (cheaper = more present); the
        // natural-least c with a ≤ min(b, c) is ∞ when b is already at
        // most a, and a itself otherwise.
        if other.0 <= self.0 {
            Tropical::INFINITY
        } else {
            *self
        }
    }
}

impl std::fmt::Display for Tropical {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cost() {
            Some(c) => write!(f, "{c}"),
            None => write!(f, "∞"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_plus_arithmetic() {
        let a = Tropical::finite(3);
        let b = Tropical::finite(5);
        assert_eq!(a.plus(&b), Tropical::finite(3));
        assert_eq!(a.times(&b), Tropical::finite(8));
    }

    #[test]
    fn infinity_is_additive_identity_and_annihilator() {
        let a = Tropical::finite(3);
        assert_eq!(a.plus(&Tropical::INFINITY), a);
        assert_eq!(a.times(&Tropical::INFINITY), Tropical::INFINITY);
        assert!(Tropical::zero().is_zero());
    }

    #[test]
    fn one_is_free() {
        let a = Tropical::finite(42);
        assert_eq!(a.times(&Tropical::one()), a);
    }

    #[test]
    fn near_infinite_costs_saturate_to_infinity() {
        let big = Tropical::finite(u64::MAX - 1);
        assert_eq!(big.times(&big), Tropical::INFINITY);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn finite_rejects_the_infinity_sentinel() {
        let _ = Tropical::finite(u64::MAX);
    }

    #[test]
    fn natural_order_is_reverse_numeric() {
        assert!(Tropical::INFINITY.natural_leq(&Tropical::finite(0)));
        assert!(Tropical::finite(9).natural_leq(&Tropical::finite(2)));
        assert!(!Tropical::finite(2).natural_leq(&Tropical::finite(9)));
    }

    #[test]
    fn monus_matches_min_plus_residual() {
        let a = Tropical::finite(5);
        let b = Tropical::finite(3);
        // b (cost 3) already beats a (cost 5): nothing left to add.
        assert_eq!(a.monus(&b), Tropical::INFINITY);
        // b (cost 7) is worse: a itself is the least completion.
        assert_eq!(a.monus(&Tropical::finite(7)), a);
        assert_eq!(Tropical::zero().monus(&b), Tropical::zero());
    }

    #[test]
    fn display_marks_infinity() {
        assert_eq!(Tropical::finite(7).to_string(), "7");
        assert_eq!(Tropical::INFINITY.to_string(), "∞");
    }
}
