//! Homomorphisms and valuations between provenance semirings.
//!
//! Two operations recur throughout annotated-database work:
//!
//! 1. **Renaming / generalization** — a map on variables `X → Y` induces a
//!    homomorphism on every set-valued semiring over those variables. The
//!    paper's annotation generalization (§4.1: raw annotations ↦ concept
//!    labels) is [`rename`] applied to tuple lineage.
//! 2. **Valuation** — a map `X → K` into a concrete semiring evaluates
//!    abstract provenance into facts about the concrete world (counts,
//!    costs, clearances…). For polynomials this is
//!    [`Polynomial::eval`](crate::polynomial::Polynomial::eval); for lineage
//!    it is [`eval_lineage`].

use crate::lineage::Lineage;
use crate::traits::{Semiring, Var};
use crate::why::Why;

/// A valuation assigns a concrete annotation to every base-fact variable.
pub trait Valuation<S: Semiring> {
    /// The concrete annotation of variable `v`.
    fn value(&self, v: Var) -> S;
}

impl<S: Semiring, F: Fn(Var) -> S> Valuation<S> for F {
    fn value(&self, v: Var) -> S {
        self(v)
    }
}

/// Apply a variable renaming to a lineage annotation: the homomorphism
/// `Lin(X) → Lin(Y)` induced by `f`. Collisions simply merge, which is
/// exactly the "a label appears at most once per tuple" rule of the paper.
pub fn rename(l: &Lineage, f: &impl Fn(Var) -> Var) -> Lineage {
    match l {
        Lineage::Absent => Lineage::Absent,
        Lineage::Present(vars) => Lineage::Present(vars.iter().map(|&v| f(v)).collect()),
    }
}

/// Apply a variable renaming to why-provenance: the homomorphism
/// `Why(X) → Why(Y)` induced by `f`.
pub fn rename_why(w: &Why, f: &impl Fn(Var) -> Var) -> Why {
    Why::from_witnesses(
        w.0.iter()
            .map(|witness| witness.iter().map(|&v| f(v)).collect()),
    )
}

/// Evaluate a lineage annotation under a valuation.
///
/// Lineage forgets the +/· structure, so the best we can state is the
/// standard reading "the tuple needs *all* of its lineage": absent ↦ 0,
/// present ↦ the product of the variables' values.
pub fn eval_lineage<S: Semiring>(l: &Lineage, valuation: &impl Valuation<S>) -> S {
    match l {
        Lineage::Absent => S::zero(),
        Lineage::Present(vars) => vars
            .iter()
            .fold(S::one(), |acc, &v| acc.times(&valuation.value(v))),
    }
}

/// Evaluate why-provenance under a valuation: sum over witnesses of the
/// product of each witness.
pub fn eval_why<S: Semiring>(w: &Why, valuation: &impl Valuation<S>) -> S {
    w.0.iter().fold(S::zero(), |acc, witness| {
        let term = witness
            .iter()
            .fold(S::one(), |t, &v| t.times(&valuation.value(v)));
        acc.plus(&term)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::natural::Natural;
    use crate::security::Security;
    use crate::traits::Var;
    use std::collections::BTreeSet;

    #[test]
    fn rename_merges_collisions() {
        let l = Lineage::from_vars([Var(1), Var(2), Var(3)]);
        // Generalize 1 and 2 to the same concept 10.
        let g = rename(&l, &|v| if v.0 <= 2 { Var(10) } else { Var(20) });
        assert_eq!(g, Lineage::from_vars([Var(10), Var(20)]));
    }

    #[test]
    fn rename_preserves_absence() {
        assert_eq!(rename(&Lineage::Absent, &|v| v), Lineage::Absent);
    }

    #[test]
    fn rename_commutes_with_plus_and_times() {
        let a = Lineage::from_vars([Var(1)]);
        let b = Lineage::from_vars([Var(2), Var(3)]);
        let f = |v: Var| Var(v.0 % 2);
        assert_eq!(
            rename(&a.plus(&b), &f),
            rename(&a, &f).plus(&rename(&b, &f))
        );
        assert_eq!(
            rename(&a.times(&b), &f),
            rename(&a, &f).times(&rename(&b, &f))
        );
    }

    #[test]
    fn rename_why_maps_each_witness() {
        let w = Why::from_witnesses([BTreeSet::from([Var(1), Var(2)]), BTreeSet::from([Var(3)])]);
        let renamed = rename_why(&w, &|v| Var(v.0 + 100));
        assert_eq!(
            renamed,
            Why::from_witnesses([
                BTreeSet::from([Var(101), Var(102)]),
                BTreeSet::from([Var(103)]),
            ])
        );
    }

    #[test]
    fn eval_lineage_multiplies_sources() {
        let l = Lineage::from_vars([Var(2), Var(3)]);
        let n = eval_lineage(&l, &|v: Var| Natural::from(u64::from(v.0)));
        assert_eq!(n, Natural::from(6u64));
        assert_eq!(
            eval_lineage(&Lineage::Absent, &|_: Var| Natural::one()),
            Natural::zero()
        );
    }

    #[test]
    fn eval_why_sums_witness_products() {
        let w = Why::from_witnesses([BTreeSet::from([Var(2), Var(3)]), BTreeSet::from([Var(5)])]);
        let n = eval_why(&w, &|v: Var| Natural::from(u64::from(v.0)));
        assert_eq!(n, Natural::from(11u64)); // 2·3 + 5
    }

    #[test]
    fn eval_lineage_into_security_takes_most_restrictive_source() {
        let l = Lineage::from_vars([Var(1), Var(2)]);
        let clearance = |v: Var| {
            if v.0 == 1 {
                Security::Confidential
            } else {
                Security::Secret
            }
        };
        assert_eq!(eval_lineage(&l, &clearance), Security::Secret);
    }
}
