//! Probability-flavoured semirings on `[0, 1]`.
//!
//! * [`Viterbi`] `([0,1], max, ·, 0, 1)` — best-derivation confidence.
//!   Annotate base tuples with confidence scores; an answer's annotation is
//!   the confidence of its most trustworthy derivation.
//! * [`Fuzzy`] `([0,1], max, min, 0, 1)` — fuzzy set membership.
//!
//! Both wrap a validated `f64`. `max`/`min` are exactly associative;
//! floating-point multiplication is associative only up to rounding, so the
//! property tests for `Viterbi` use approximate equality (documented there).

use crate::traits::{Monus, NaturallyOrdered, Semiring};

/// A probability in `[0, 1]`, the carrier of [`Viterbi`] and [`Fuzzy`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Prob(f64);

impl Prob {
    /// Construct a probability, panicking if `p` is outside `[0, 1]` or NaN.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "probability out of range: {p}"
        );
        Prob(p)
    }

    /// The raw value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// The Viterbi semiring: max-probability provenance.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Viterbi(pub Prob);

impl Viterbi {
    /// A confidence score in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        Viterbi(Prob::new(p))
    }

    /// The raw confidence.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

impl Semiring for Viterbi {
    fn zero() -> Self {
        Viterbi(Prob(0.0))
    }
    fn one() -> Self {
        Viterbi(Prob(1.0))
    }
    fn plus(&self, other: &Self) -> Self {
        Viterbi(Prob(self.0 .0.max(other.0 .0)))
    }
    fn times(&self, other: &Self) -> Self {
        Viterbi(Prob(self.0 .0 * other.0 .0))
    }
    fn is_zero(&self) -> bool {
        self.0 .0 == 0.0
    }
}

impl NaturallyOrdered for Viterbi {
    fn natural_leq(&self, other: &Self) -> bool {
        self.0 .0 <= other.0 .0
    }
}

/// The fuzzy semiring: min/max membership degrees.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Fuzzy(pub Prob);

impl Fuzzy {
    /// A membership degree in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        Fuzzy(Prob::new(p))
    }

    /// The raw membership degree.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

impl Semiring for Fuzzy {
    fn zero() -> Self {
        Fuzzy(Prob(0.0))
    }
    fn one() -> Self {
        Fuzzy(Prob(1.0))
    }
    fn plus(&self, other: &Self) -> Self {
        Fuzzy(Prob(self.0 .0.max(other.0 .0)))
    }
    fn times(&self, other: &Self) -> Self {
        Fuzzy(Prob(self.0 .0.min(other.0 .0)))
    }
    fn is_zero(&self) -> bool {
        self.0 .0 == 0.0
    }
}

impl NaturallyOrdered for Fuzzy {
    fn natural_leq(&self, other: &Self) -> bool {
        self.0 .0 <= other.0 .0
    }
}

impl Monus for Viterbi {
    fn monus(&self, other: &Self) -> Self {
        // plus is max: least c with a ≤ max(b, c) is 0 when b covers a.
        if self.0 .0 <= other.0 .0 {
            Viterbi::zero()
        } else {
            *self
        }
    }
}

impl Monus for Fuzzy {
    fn monus(&self, other: &Self) -> Self {
        // Least c with a ≤ max(b, c): 0 when b covers a, else a itself.
        if self.0 .0 <= other.0 .0 {
            Fuzzy::zero()
        } else {
            *self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viterbi_takes_best_derivation() {
        let a = Viterbi::new(0.3);
        let b = Viterbi::new(0.8);
        assert_eq!(a.plus(&b), b);
        assert!((a.times(&b).get() - 0.24).abs() < 1e-12);
    }

    #[test]
    fn viterbi_identities() {
        let a = Viterbi::new(0.5);
        assert_eq!(a.plus(&Viterbi::zero()), a);
        assert_eq!(a.times(&Viterbi::one()), a);
        assert_eq!(a.times(&Viterbi::zero()), Viterbi::zero());
    }

    #[test]
    fn fuzzy_is_min_max() {
        let a = Fuzzy::new(0.3);
        let b = Fuzzy::new(0.8);
        assert_eq!(a.plus(&b), b);
        assert_eq!(a.times(&b), a);
    }

    #[test]
    fn fuzzy_min_max_is_exactly_distributive() {
        // Unlike multiplication, min/max distributivity is exact on floats.
        let (a, b, c) = (Fuzzy::new(0.2), Fuzzy::new(0.5), Fuzzy::new(0.9));
        assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn probabilities_above_one_are_rejected() {
        let _ = Prob::new(1.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nan_probability_is_rejected() {
        let _ = Prob::new(f64::NAN);
    }

    #[test]
    fn natural_order_is_numeric() {
        assert!(Viterbi::new(0.2).natural_leq(&Viterbi::new(0.7)));
        assert!(!Fuzzy::new(0.7).natural_leq(&Fuzzy::new(0.2)));
    }
}
