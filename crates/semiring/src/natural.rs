//! The counting semiring `(ℕ, +, ·, 0, 1)` — bag semantics.
//!
//! Annotating base tuples with their multiplicities and propagating through
//! queries computes the multiplicity of each answer tuple, i.e. SQL bag
//! semantics. Arithmetic saturates at `u64::MAX` rather than wrapping:
//! provenance of a heavily-derived tuple should clamp, not silently
//! overflow. Saturating arithmetic still satisfies all semiring laws because
//! `min(MAX, ·)` is a congruence for both operations on the truncated range.

use crate::traits::{Monus, NaturallyOrdered, Semiring};

/// Natural-number annotations (tuple multiplicities), saturating at
/// `u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Natural(pub u64);

impl Semiring for Natural {
    fn zero() -> Self {
        Natural(0)
    }
    fn one() -> Self {
        Natural(1)
    }
    fn plus(&self, other: &Self) -> Self {
        Natural(self.0.saturating_add(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        Natural(self.0.saturating_mul(other.0))
    }
    fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl NaturallyOrdered for Natural {
    fn natural_leq(&self, other: &Self) -> bool {
        self.0 <= other.0
    }
}

impl Monus for Natural {
    fn monus(&self, other: &Self) -> Self {
        Natural(self.0.saturating_sub(other.0))
    }
}

impl From<u64> for Natural {
    fn from(n: u64) -> Self {
        Natural(n)
    }
}

impl std::fmt::Display for Natural {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        assert_eq!(Natural(2).plus(&Natural(3)), Natural(5));
        assert_eq!(Natural(2).times(&Natural(3)), Natural(6));
        assert_eq!(Natural(7).times(&Natural::zero()), Natural::zero());
        assert_eq!(Natural(7).times(&Natural::one()), Natural(7));
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let near_max = Natural(u64::MAX - 1);
        assert_eq!(near_max.plus(&Natural(10)), Natural(u64::MAX));
        assert_eq!(near_max.times(&Natural(2)), Natural(u64::MAX));
    }

    #[test]
    fn saturation_preserves_annihilation() {
        assert_eq!(Natural(u64::MAX).times(&Natural::zero()), Natural::zero());
    }

    #[test]
    fn natural_order_is_numeric_order() {
        assert!(Natural(3).natural_leq(&Natural(3)));
        assert!(Natural(3).natural_leq(&Natural(4)));
        assert!(!Natural(4).natural_leq(&Natural(3)));
    }
}
