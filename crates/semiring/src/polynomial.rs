//! Provenance polynomials `N[X]`: the universal provenance semiring.
//!
//! A polynomial with natural coefficients over the base-fact variables
//! records *everything* about how a tuple was derived: which facts, combined
//! how, how many times. Every other provenance semiring is a quotient of
//! `N[X]`: evaluating a polynomial under a valuation `X → K` (see
//! [`Polynomial::eval`]) factors through any homomorphism — the
//! "factorisation property" that makes `N[X]` universal, checked by the
//! property tests in `tests/axioms.rs`.

use std::collections::BTreeMap;
use std::ops::{Add, Mul};

use crate::lineage::Lineage;
use crate::traits::{Monus, NaturallyOrdered, Semiring, Var};
use crate::why::Why;

/// A monomial: a product of variables with exponents, e.g. `x1²·x3`.
///
/// Invariant: no variable maps to exponent 0.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(BTreeMap<Var, u32>);

impl Monomial {
    /// The empty monomial (the constant `1`).
    pub fn unit() -> Self {
        Monomial(BTreeMap::new())
    }

    /// The monomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        Monomial(BTreeMap::from([(v, 1)]))
    }

    /// Build from `(variable, exponent)` pairs; zero exponents are dropped.
    pub fn from_powers<I: IntoIterator<Item = (Var, u32)>>(powers: I) -> Self {
        Monomial(powers.into_iter().filter(|&(_, e)| e > 0).collect())
    }

    /// Multiply two monomials (add exponents).
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = self.0.clone();
        for (&v, &e) in &other.0 {
            *out.entry(v).or_insert(0) += e;
        }
        Monomial(out)
    }

    /// The exponent of `v` (0 if absent).
    pub fn exponent(&self, v: Var) -> u32 {
        self.0.get(&v).copied().unwrap_or(0)
    }

    /// Total degree: the sum of all exponents.
    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }

    /// Iterate `(variable, exponent)` pairs in variable order.
    pub fn powers(&self) -> impl Iterator<Item = (Var, u32)> + '_ {
        self.0.iter().map(|(&v, &e)| (v, e))
    }

    /// Rename variables; colliding variables accumulate exponents.
    pub fn map_vars(&self, f: &impl Fn(Var) -> Var) -> Self {
        let mut out: BTreeMap<Var, u32> = BTreeMap::new();
        for (&v, &e) in &self.0 {
            *out.entry(f(v)).or_insert(0) += e;
        }
        Monomial(out)
    }
}

impl std::fmt::Display for Monomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        for (i, (v, e)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A provenance polynomial: a finite sum of monomials with coefficients in
/// ℕ (saturating at `u64::MAX`).
///
/// Invariant: no monomial maps to coefficient 0.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Polynomial(BTreeMap<Monomial, u64>);

impl Polynomial {
    /// The polynomial of a base fact: the bare variable `v`.
    pub fn var(v: Var) -> Self {
        Polynomial(BTreeMap::from([(Monomial::var(v), 1)]))
    }

    /// A constant polynomial.
    pub fn constant(n: u64) -> Self {
        if n == 0 {
            Polynomial::zero()
        } else {
            Polynomial(BTreeMap::from([(Monomial::unit(), n)]))
        }
    }

    /// Build from `(monomial, coefficient)` pairs; zero coefficients are
    /// dropped, duplicate monomials accumulate.
    pub fn from_terms<I: IntoIterator<Item = (Monomial, u64)>>(terms: I) -> Self {
        let mut out: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (m, c) in terms {
            if c > 0 {
                let slot = out.entry(m).or_insert(0);
                *slot = slot.saturating_add(c);
            }
        }
        Polynomial(out)
    }

    /// Number of distinct monomials.
    pub fn term_count(&self) -> usize {
        self.0.len()
    }

    /// The coefficient of `m` (0 if absent).
    pub fn coefficient(&self, m: &Monomial) -> u64 {
        self.0.get(m).copied().unwrap_or(0)
    }

    /// Iterate `(monomial, coefficient)` pairs in monomial order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, u64)> + '_ {
        self.0.iter().map(|(m, &c)| (m, c))
    }

    /// Evaluate under a valuation of variables into any semiring `S`.
    ///
    /// This is the universal property of `N[X]`: `eval` is the unique
    /// homomorphism extending the valuation. Coefficients and exponents are
    /// expanded with doubling (`n·s`, `s^e`) so evaluation stays `O(log n)`
    /// per term even for saturated coefficients.
    pub fn eval<S: Semiring>(&self, valuation: &impl Fn(Var) -> S) -> S {
        let mut acc = S::zero();
        for (m, c) in &self.0 {
            let mut term = scale(*c, &S::one());
            for (&v, &e) in &m.0 {
                term = term.times(&pow(&valuation(v), e));
            }
            acc = acc.plus(&term);
        }
        acc
    }

    /// Rename variables (substitution of variables for variables); the
    /// homomorphism `N[X] → N[Y]` induced by `f`. Collapsing monomials
    /// accumulate coefficients.
    ///
    /// Annotation generalization is exactly this map, with `f` sending raw
    /// annotations to their concept label.
    pub fn map_vars(&self, f: &impl Fn(Var) -> Var) -> Self {
        Polynomial::from_terms(self.0.iter().map(|(m, &c)| (m.map_vars(f), c)))
    }

    /// Drop coefficients and exponents, keeping each monomial's variable set
    /// as a witness: the canonical homomorphism `N[X] → Why(X)`.
    pub fn to_why(&self) -> Why {
        Why::from_witnesses(self.0.keys().map(|m| m.0.keys().copied().collect()))
    }

    /// Flatten to the set of all variables that appear: the canonical
    /// homomorphism `N[X] → Lin(X)`.
    pub fn to_lineage(&self) -> Lineage {
        if self.0.is_empty() {
            Lineage::Absent
        } else {
            Lineage::Present(self.0.keys().flat_map(|m| m.0.keys().copied()).collect())
        }
    }
}

/// `n · s` in an arbitrary semiring, by binary decomposition of `n`.
fn scale<S: Semiring>(n: u64, s: &S) -> S {
    let mut acc = S::zero();
    let mut base = s.clone();
    let mut n = n;
    while n > 0 {
        if n & 1 == 1 {
            acc = acc.plus(&base);
        }
        n >>= 1;
        if n > 0 {
            base = base.plus(&base);
        }
    }
    acc
}

/// `s^e` in an arbitrary semiring, by binary decomposition of `e`.
fn pow<S: Semiring>(s: &S, e: u32) -> S {
    let mut acc = S::one();
    let mut base = s.clone();
    let mut e = e;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc.times(&base);
        }
        e >>= 1;
        if e > 0 {
            base = base.times(&base);
        }
    }
    acc
}

impl Semiring for Polynomial {
    fn zero() -> Self {
        Polynomial(BTreeMap::new())
    }
    fn one() -> Self {
        Polynomial::constant(1)
    }
    fn plus(&self, other: &Self) -> Self {
        let mut out = self.0.clone();
        for (m, &c) in &other.0 {
            let slot = out.entry(m.clone()).or_insert(0);
            *slot = slot.saturating_add(c);
        }
        Polynomial(out)
    }
    fn times(&self, other: &Self) -> Self {
        let mut out: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (ma, &ca) in &self.0 {
            for (mb, &cb) in &other.0 {
                let m = ma.mul(mb);
                let slot = out.entry(m).or_insert(0);
                *slot = slot.saturating_add(ca.saturating_mul(cb));
            }
        }
        Polynomial(out)
    }
    fn is_zero(&self) -> bool {
        self.0.is_empty()
    }
}

impl NaturallyOrdered for Polynomial {
    fn natural_leq(&self, other: &Self) -> bool {
        // p + q = r requires coefficient-wise ≤ (ignoring saturation).
        self.0.iter().all(|(m, &c)| c <= other.coefficient(m))
    }
}

impl Monus for Polynomial {
    fn monus(&self, other: &Self) -> Self {
        // Coefficient-wise truncated subtraction: the least polynomial c
        // with p ≤ q + c has c_m = max(0, p_m − q_m) per monomial.
        Polynomial(
            self.0
                .iter()
                .filter_map(|(m, &c)| {
                    let diff = c.saturating_sub(other.coefficient(m));
                    (diff > 0).then(|| (m.clone(), diff))
                })
                .collect(),
        )
    }
}

impl Add for Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: Polynomial) -> Polynomial {
        self.plus(&rhs)
    }
}

impl Mul for Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: Polynomial) -> Polynomial {
        self.times(&rhs)
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c != 1 || m.0.is_empty() {
                write!(f, "{c}")?;
                if !m.0.is_empty() {
                    write!(f, "·")?;
                }
            }
            if !m.0.is_empty() {
                write!(f, "{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool2;
    use crate::natural::Natural;
    use crate::tropical::Tropical;

    fn x(n: u32) -> Polynomial {
        Polynomial::var(Var(n))
    }

    #[test]
    fn polynomial_arithmetic_collects_terms() {
        // (x1 + x2)·(x1 + x2) = x1² + 2·x1·x2 + x2²
        let p = (x(1) + x(2)) * (x(1) + x(2));
        assert_eq!(p.term_count(), 3);
        assert_eq!(p.coefficient(&Monomial::from_powers([(Var(1), 2)])), 1);
        assert_eq!(
            p.coefficient(&Monomial::from_powers([(Var(1), 1), (Var(2), 1)])),
            2
        );
    }

    #[test]
    fn eval_into_naturals_counts_derivations() {
        let p = x(1) * x(2) + x(3);
        let n = p.eval(&|v| Natural::from(u64::from(v.0)));
        assert_eq!(n, Natural::from(5u64)); // 1·2 + 3
    }

    #[test]
    fn eval_into_booleans_checks_existence() {
        let p = x(1) * x(2);
        let only_x1 = |v: Var| Bool2::from(v.0 == 1);
        assert_eq!(p.eval(&only_x1), Bool2::zero());
        let both = |_: Var| Bool2::one();
        assert_eq!(p.eval(&both), Bool2::one());
    }

    #[test]
    fn eval_into_tropical_finds_cheapest_derivation() {
        let p = x(1) * x(2) + x(3);
        let cost = p.eval(&|v| Tropical::finite(u64::from(v.0 * 10)));
        assert_eq!(cost, Tropical::finite(30)); // min(10+20, 30)
    }

    #[test]
    fn eval_handles_large_coefficients_via_doubling() {
        let p = Polynomial::constant(1_000_000);
        assert_eq!(p.eval(&|_| Natural::one()), Natural::from(1_000_000u64));
    }

    #[test]
    fn map_vars_merges_collapsed_monomials() {
        // x1 + x2 under x1,x2 ↦ y collapses to 2y.
        let p = x(1) + x(2);
        let q = p.map_vars(&|_| Var(99));
        assert_eq!(q, Polynomial::from_terms([(Monomial::var(Var(99)), 2)]));
    }

    #[test]
    fn specialization_chain_reaches_lineage() {
        let p = x(1) * x(1) * x(2) + x(3);
        let why = p.to_why();
        assert_eq!(why.witness_count(), 2);
        let lin = p.to_lineage();
        assert_eq!(lin, Lineage::from_vars([Var(1), Var(2), Var(3)]));
        // Chain commutes: N[X] → Why → Lin equals N[X] → Lin.
        assert_eq!(why.to_lineage(), lin);
    }

    #[test]
    fn zero_and_one_behave() {
        let p = x(1);
        assert_eq!(p.clone() + Polynomial::zero(), p);
        assert_eq!(p.clone() * Polynomial::one(), p);
        assert!((p * Polynomial::zero()).is_zero());
    }

    #[test]
    fn constant_zero_is_canonical_zero() {
        assert_eq!(Polynomial::constant(0), Polynomial::zero());
    }

    #[test]
    fn natural_order_is_coefficientwise() {
        let p = x(1);
        let q = x(1) + x(2);
        assert!(p.natural_leq(&q));
        assert!(!q.natural_leq(&p));
    }

    #[test]
    fn monus_is_coefficientwise_truncated_subtraction() {
        let p = Polynomial::from_terms([(Monomial::var(Var(1)), 5), (Monomial::var(Var(2)), 2)]);
        let q = Polynomial::from_terms([(Monomial::var(Var(1)), 3), (Monomial::var(Var(2)), 7)]);
        let d = p.monus(&q);
        assert_eq!(d.coefficient(&Monomial::var(Var(1))), 2);
        assert_eq!(d.coefficient(&Monomial::var(Var(2))), 0);
        assert_eq!(d.term_count(), 1);
        assert!(Polynomial::zero().monus(&q).is_zero());
    }

    #[test]
    fn display_renders_readable_polynomials() {
        let p = x(1) * x(1) + Polynomial::constant(3) * x(2) + Polynomial::one();
        assert_eq!(p.to_string(), "1 + x1^2 + 3·x2");
    }

    #[test]
    fn monomial_degree_and_exponent() {
        let m = Monomial::from_powers([(Var(1), 2), (Var(2), 1)]);
        assert_eq!(m.degree(), 3);
        assert_eq!(m.exponent(Var(1)), 2);
        assert_eq!(m.exponent(Var(9)), 0);
        assert_eq!(Monomial::from_powers([(Var(1), 0)]), Monomial::unit());
    }
}
