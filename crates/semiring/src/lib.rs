//! Provenance semirings for annotated databases.
//!
//! An *annotated database* attaches extra information to every tuple: who
//! said it, how often it was derived, how trusted it is, which base facts it
//! came from. The classic way to make that precise is the provenance-semiring
//! framework of Green, Karvounarakis and Tannen (PODS 2007): annotations are
//! drawn from a commutative semiring `(K, +, ·, 0, 1)`, relational `union` /
//! `projection` combine annotations with `+`, and `join` combines them with
//! `·`. Picking different semirings recovers set semantics, bag semantics,
//! lineage, why-provenance, access control, cost, and probability — all from
//! one query evaluator.
//!
//! This crate is the foundation the rest of the `annomine` workspace builds
//! on. It provides:
//!
//! * the [`Semiring`] trait family ([`CommutativeMonoid`], [`Semiring`],
//!   [`NaturallyOrdered`], [`SemiringHom`]);
//! * nine ready-made instances:
//!   [`Bool2`](boolean::Bool2) (set semantics),
//!   [`Natural`](natural::Natural) (bag semantics / counting),
//!   [`Tropical`](tropical::Tropical) (min-cost),
//!   [`Viterbi`](viterbi::Viterbi) (max-probability),
//!   [`Fuzzy`](viterbi::Fuzzy) (min/max membership),
//!   [`Security`](security::Security) (clearance lattice),
//!   [`Lineage`](lineage::Lineage) (which base facts contributed),
//!   [`Why`](why::Why) (witness sets) and
//!   [`Polynomial`](polynomial::Polynomial) (the universal semiring `N[X]`);
//! * evaluation of the universal polynomials under a valuation of variables
//!   into any other semiring, with the factorisation property
//!   `eval ∘ h = h ∘ eval` exercised by property tests;
//! * the [`Monus`](traits::Monus) truncated difference on every instance,
//!   making each an *m-semiring* and giving annotated relational algebra a
//!   principled `difference` operator.
//!
//! The mining layer (`anno-mine`) treats a tuple's *annotation set* as its
//! lineage over the annotation vocabulary, and annotation *generalization*
//! (mapping raw annotations onto concepts) is exactly a semiring homomorphism
//! applied to that lineage — see [`hom`].
//!
//! # Example
//!
//! ```
//! use anno_semiring::prelude::*;
//!
//! // Two derivations of the same tuple: (x1·x2) + x3
//! let p = Polynomial::var(Var(1)) * Polynomial::var(Var(2)) + Polynomial::var(Var(3));
//!
//! // Under bag semantics where x1 occurs twice, x2 once, x3 three times:
//! let n = p.eval(&|v: Var| Natural::from(match v.0 { 1 => 2u64, 2 => 1, _ => 3 }));
//! assert_eq!(n, Natural::from(5u64)); // 2·1 + 3
//!
//! // Under set semantics the tuple simply exists:
//! let b = p.eval(&|_| Bool2::one());
//! assert!(b.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boolean;
pub mod hom;
pub mod lineage;
pub mod natural;
pub mod polynomial;
pub mod security;
pub mod traits;
pub mod tropical;
pub mod viterbi;
pub mod why;

pub use boolean::Bool2;
pub use hom::{eval_lineage, eval_why, rename, rename_why, Valuation};
pub use lineage::Lineage;
pub use natural::Natural;
pub use polynomial::{Monomial, Polynomial};
pub use security::Security;
pub use traits::{CommutativeMonoid, Monus, NaturallyOrdered, Semiring, SemiringHom, Var};
pub use tropical::Tropical;
pub use viterbi::{Fuzzy, Viterbi};
pub use why::Why;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::boolean::Bool2;
    pub use crate::lineage::Lineage;
    pub use crate::natural::Natural;
    pub use crate::polynomial::{Monomial, Polynomial};
    pub use crate::security::Security;
    pub use crate::traits::{
        CommutativeMonoid, Monus, NaturallyOrdered, Semiring, SemiringHom, Var,
    };
    pub use crate::tropical::Tropical;
    pub use crate::viterbi::{Fuzzy, Viterbi};
    pub use crate::why::Why;
}
