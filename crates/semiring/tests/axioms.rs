//! Property-based verification of the semiring laws for every instance.
//!
//! A generic law-checker is instantiated per semiring with a proptest
//! strategy for generating arbitrary elements. `Viterbi` multiplies floats,
//! which is associative/distributive only up to rounding, so it gets an
//! approximate variant of the checker.

use std::collections::BTreeSet;

use anno_semiring::prelude::*;
use proptest::prelude::*;

/// Assert all commutative-semiring laws on a concrete triple.
fn check_laws<S: Semiring>(a: &S, b: &S, c: &S) {
    // Additive commutative monoid.
    assert_eq!(a.plus(b), b.plus(a), "plus commutes");
    assert_eq!(a.plus(&b.plus(c)), a.plus(b).plus(c), "plus associates");
    assert_eq!(a.plus(&S::zero()), a.clone(), "zero is additive identity");
    // Multiplicative commutative monoid.
    assert_eq!(a.times(b), b.times(a), "times commutes");
    assert_eq!(
        a.times(&b.times(c)),
        a.times(b).times(c),
        "times associates"
    );
    assert_eq!(
        a.times(&S::one()),
        a.clone(),
        "one is multiplicative identity"
    );
    // Distributivity and annihilation.
    assert_eq!(
        a.times(&b.plus(c)),
        a.times(b).plus(&a.times(c)),
        "times distributes over plus"
    );
    assert_eq!(a.times(&S::zero()), S::zero(), "zero annihilates");
}

/// Assert the monus laws on a concrete pair (plus a probe for minimality).
fn check_monus<S: anno_semiring::Monus>(a: &S, b: &S, probe: &S) {
    let m = a.monus(b);
    assert!(
        a.natural_leq(&b.plus(&m)),
        "defining inequality a ≤ b + (a ∸ b) failed"
    );
    if a.natural_leq(&b.plus(probe)) {
        assert!(
            m.natural_leq(probe),
            "minimality failed: a ≤ b + c but a ∸ b ≰ c"
        );
    }
    assert_eq!(S::zero().monus(b), S::zero(), "0 ∸ b must be 0");
}

/// Assert the natural order is reflexive, transitive-ish on samples, and
/// monotone under plus.
fn check_natural_order<S: NaturallyOrdered>(a: &S, b: &S) {
    assert!(a.natural_leq(a), "natural order is reflexive");
    assert!(
        a.natural_leq(&a.plus(b)),
        "plus is inflationary for the natural order"
    );
}

fn arb_lineage() -> impl Strategy<Value = Lineage> {
    prop_oneof![
        1 => Just(Lineage::Absent),
        4 => proptest::collection::btree_set(0u32..24, 0..6)
            .prop_map(|s| Lineage::from_vars(s.into_iter().map(Var))),
    ]
}

fn arb_why() -> impl Strategy<Value = Why> {
    proptest::collection::btree_set(
        proptest::collection::btree_set((0u32..12).prop_map(Var), 0..4),
        0..4,
    )
    .prop_map(Why::from_witnesses)
}

fn arb_poly() -> impl Strategy<Value = Polynomial> {
    proptest::collection::vec(
        (
            proptest::collection::btree_map((0u32..8).prop_map(Var), 1u32..3, 0..3),
            1u64..5,
        ),
        0..4,
    )
    .prop_map(|terms| {
        Polynomial::from_terms(
            terms
                .into_iter()
                .map(|(powers, coeff)| (Monomial::from_powers(powers), coeff)),
        )
    })
}

fn arb_security() -> impl Strategy<Value = Security> {
    prop_oneof![
        Just(Security::Public),
        Just(Security::Confidential),
        Just(Security::Secret),
        Just(Security::TopSecret),
        Just(Security::Inaccessible),
    ]
}

proptest! {
    #[test]
    fn bool2_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        check_laws(&Bool2(a), &Bool2(b), &Bool2(c));
        check_natural_order(&Bool2(a), &Bool2(b));
        check_monus(&Bool2(a), &Bool2(b), &Bool2(c));
    }

    #[test]
    fn natural_laws(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        check_laws(&Natural(a), &Natural(b), &Natural(c));
        check_natural_order(&Natural(a), &Natural(b));
        check_monus(&Natural(a), &Natural(b), &Natural(c));
    }

    // Saturation keeps the laws exact even at the extremes because every
    // operand is clamped into the same truncated range.
    #[test]
    fn natural_laws_at_saturation(a in proptest::sample::select(vec![0u64, 1, u64::MAX - 1, u64::MAX])) {
        check_laws(&Natural(a), &Natural(u64::MAX), &Natural(2));
    }

    #[test]
    fn tropical_laws(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40) {
        check_laws(&Tropical::finite(a), &Tropical::finite(b), &Tropical::finite(c));
        check_laws(&Tropical::INFINITY, &Tropical::finite(b), &Tropical::finite(c));
        check_natural_order(&Tropical::finite(a), &Tropical::finite(b));
        check_monus(&Tropical::finite(a), &Tropical::finite(b), &Tropical::finite(c));
        check_monus(&Tropical::finite(a), &Tropical::INFINITY, &Tropical::finite(c));
    }

    #[test]
    fn fuzzy_laws(a in 0.0f64..=1.0, b in 0.0f64..=1.0, c in 0.0f64..=1.0) {
        // min/max on floats is exactly associative & distributive.
        check_laws(&Fuzzy::new(a), &Fuzzy::new(b), &Fuzzy::new(c));
        check_natural_order(&Fuzzy::new(a), &Fuzzy::new(b));
        check_monus(&Fuzzy::new(a), &Fuzzy::new(b), &Fuzzy::new(c));
    }

    #[test]
    fn security_laws(a in arb_security(), b in arb_security(), c in arb_security()) {
        check_laws(&a, &b, &c);
        check_natural_order(&a, &b);
        check_monus(&a, &b, &c);
    }

    #[test]
    fn lineage_laws(a in arb_lineage(), b in arb_lineage(), c in arb_lineage()) {
        check_laws(&a, &b, &c);
        check_natural_order(&a, &b);
        check_monus(&a, &b, &c);
    }

    #[test]
    fn why_laws(a in arb_why(), b in arb_why(), c in arb_why()) {
        check_laws(&a, &b, &c);
        check_natural_order(&a, &b);
        check_monus(&a, &b, &c);
    }

    #[test]
    fn polynomial_laws(a in arb_poly(), b in arb_poly(), c in arb_poly()) {
        check_laws(&a, &b, &c);
        check_natural_order(&a, &b);
        check_monus(&a, &b, &c);
    }

    // Viterbi: max is exact; times distributes only approximately.
    #[test]
    fn viterbi_laws_approximately(a in 0.0f64..=1.0, b in 0.0f64..=1.0, c in 0.0f64..=1.0) {
        let (a, b, c) = (Viterbi::new(a), Viterbi::new(b), Viterbi::new(c));
        prop_assert_eq!(a.plus(&b), b.plus(&a));
        prop_assert_eq!(a.plus(&b.plus(&c)), a.plus(&b).plus(&c));
        prop_assert_eq!(a.times(&b), b.times(&a));
        prop_assert!((a.times(&b.times(&c)).get() - a.times(&b).times(&c).get()).abs() < 1e-12);
        let lhs = a.times(&b.plus(&c)).get();
        let rhs = a.times(&b).plus(&a.times(&c)).get();
        prop_assert!((lhs - rhs).abs() < 1e-12);
        prop_assert_eq!(a.times(&Viterbi::zero()), Viterbi::zero());
    }

    // The universal property: evaluating a polynomial commutes with the
    // specialization homomorphisms N[X] → Why(X) → Lin(X).
    #[test]
    fn eval_factors_through_specializations(p in arb_poly(), q in arb_poly()) {
        // Homomorphism property of to_why and to_lineage.
        prop_assert_eq!(p.plus(&q).to_why(), p.to_why().plus(&q.to_why()));
        prop_assert_eq!(p.times(&q).to_why(), p.to_why().times(&q.to_why()));
        prop_assert_eq!(p.plus(&q).to_lineage(), p.to_lineage().plus(&q.to_lineage()));
        prop_assert_eq!(p.times(&q).to_lineage(), p.to_lineage().times(&q.to_lineage()));
        // The triangle commutes.
        prop_assert_eq!(p.to_why().to_lineage(), p.to_lineage());
    }

    // eval into Bool2 agrees with "is the polynomial satisfiable under the
    // set of present variables".
    #[test]
    fn eval_bool_matches_witness_semantics(
        p in arb_poly(),
        present in proptest::collection::btree_set(0u32..8, 0..8),
    ) {
        let present: BTreeSet<Var> = present.into_iter().map(Var).collect();
        let val = |v: Var| Bool2(present.contains(&v));
        let direct = p.eval(&val);
        let via_why = p
            .to_why()
            .0
            .iter()
            .any(|witness| witness.iter().all(|v| present.contains(v)));
        prop_assert_eq!(direct, Bool2(via_why));
    }

    // Renaming commutes with the semiring operations (generalization is a
    // homomorphism).
    #[test]
    fn rename_is_homomorphism(a in arb_lineage(), b in arb_lineage(), modulus in 1u32..6) {
        let f = |v: Var| Var(v.0 % modulus);
        prop_assert_eq!(
            anno_semiring::rename(&a.plus(&b), &f),
            anno_semiring::rename(&a, &f).plus(&anno_semiring::rename(&b, &f))
        );
        prop_assert_eq!(
            anno_semiring::rename(&a.times(&b), &f),
            anno_semiring::rename(&a, &f).times(&anno_semiring::rename(&b, &f))
        );
    }

    // map_vars on polynomials commutes with eval: evaluating the renamed
    // polynomial equals evaluating the original under the composed valuation.
    #[test]
    fn map_vars_commutes_with_eval(p in arb_poly(), modulus in 1u32..6) {
        let f = |v: Var| Var(v.0 % modulus);
        let val = |v: Var| Natural::from(u64::from(v.0) + 2);
        let lhs = p.map_vars(&f).eval(&val);
        let rhs = p.eval(&|v| val(f(v)));
        prop_assert_eq!(lhs, rhs);
    }
}
