//! `metric-drift`: the README metrics table and the exporter agree.
//!
//! Every `anno_*` metric family name that appears as a string literal in
//! production code must have exactly one row in the README's metrics
//! reference table, and every table row must correspond to a family the
//! code still emits. Dashboards and alerts are built against the table;
//! this rule makes "the docs are stale" a CI failure instead of an
//! operator surprise.
//!
//! A README row is any markdown table line whose first cell is exactly a
//! backticked family name: ``| `anno_foo_total` | … |``.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::model::{FileKind, Model};
use crate::Finding;

const RULE: &str = "metric-drift";

/// Is `s` a well-formed family name (`anno_` + lowercase snake)?
fn is_family(s: &str) -> bool {
    s.len() > "anno_".len()
        && s.starts_with("anno_")
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

pub fn run(model: &Model) -> Vec<Finding> {
    let Some(readme) = model
        .files
        .iter()
        .find(|f| f.kind == FileKind::Doc && f.path.file_name().is_some_and(|n| n == "README.md"))
    else {
        return Vec::new(); // nothing to check against (fixture runs)
    };

    // Families emitted by production code: plain string literals only
    // (raw/byte strings never hold metric names here).
    let mut emitted: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for file in &model.files {
        if file.kind != FileKind::Production {
            continue;
        }
        for tok in &file.tokens {
            if tok.kind != TokenKind::StrLit {
                continue;
            }
            if file.in_test_region(tok.start) {
                continue;
            }
            let text = tok.text(&file.text);
            let Some(inner) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) else {
                continue;
            };
            if is_family(inner) {
                let (line, _) = file.line_col(tok.start);
                emitted
                    .entry(inner.to_string())
                    .or_insert_with(|| (file.path.to_string_lossy().into_owned(), line));
            }
        }
    }

    // Families documented in README table rows.
    let mut documented: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for (i, line) in readme.text.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        let Some(cell) = first_cell(trimmed) else {
            continue;
        };
        let cell = cell.trim();
        let Some(name) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
            continue;
        };
        if is_family(name) {
            documented
                .entry(name.to_string())
                .or_default()
                .push(i as u32 + 1);
        }
    }

    let readme_path = readme.path.to_string_lossy().into_owned();
    let mut findings = Vec::new();
    for (family, (path, line)) in &emitted {
        match documented.get(family).map(Vec::len).unwrap_or(0) {
            0 => findings.push(Finding {
                rule: RULE,
                path: path.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "metric family `{family}` is emitted here but has no row in the README metrics reference table"
                ),
            }),
            1 => {}
            n => findings.push(Finding {
                rule: RULE,
                path: readme_path.clone(),
                line: documented[family][1],
                col: 1,
                message: format!("metric family `{family}` is documented {n} times; exactly one row per family"),
            }),
        }
    }
    for (family, lines) in &documented {
        if !emitted.contains_key(family) {
            findings.push(Finding {
                rule: RULE,
                path: readme_path.clone(),
                line: lines[0],
                col: 1,
                message: format!(
                    "README documents metric family `{family}` but no production code emits it (stale row?)"
                ),
            });
        }
    }
    findings
}

/// Content of the first cell of a markdown table row (`\|` escapes kept).
fn first_cell(row: &str) -> Option<&str> {
    let body = row.strip_prefix('|')?;
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            i += 2;
            continue;
        }
        if bytes[i] == b'|' {
            return Some(&body[..i]);
        }
        i += 1;
    }
    Some(body)
}
