//! `protocol-drift`: every protocol verb is documented, and every
//! documented verb exists.
//!
//! The code side is the `match` tagged with the
//! `// anno-lint: protocol-dispatch` marker (in
//! `crates/service/src/protocol.rs`): its string-literal arm patterns
//! are the verb set the daemon actually parses. The doc side is the
//! README's "protocol reference" table: the first word of each
//! backticked command in a row's first cell. The two sets must be equal
//! — a new verb without a README row fails CI, as does a README row for
//! a verb that was removed.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::model::{FileKind, Model, SourceFile};
use crate::Finding;

const RULE: &str = "protocol-drift";
const MARKER: &str = "anno-lint: protocol-dispatch";

/// The marker must be the whole comment, not a mention in prose.
fn is_marker(comment: &str) -> bool {
    crate::pragma::comment_body(comment) == MARKER
}

pub fn run(model: &Model) -> Vec<Finding> {
    // Code side: the marked dispatch match.
    let mut parsed: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // verb → (file, offset)
    let mut marker_seen = false;
    for (fi, file) in model.files.iter().enumerate() {
        if file.kind != FileKind::Production {
            continue;
        }
        for (ti, tok) in file.tokens.iter().enumerate() {
            if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            if !is_marker(tok.text(&file.text)) {
                continue;
            }
            marker_seen = true;
            for (verb, offset) in collect_match_arms(file, ti) {
                parsed.entry(verb).or_insert((fi, offset));
            }
        }
    }

    // Doc side: the README protocol-reference table.
    let Some(readme) = model
        .files
        .iter()
        .find(|f| f.kind == FileKind::Doc && f.path.file_name().is_some_and(|n| n == "README.md"))
    else {
        return Vec::new();
    };
    if !marker_seen {
        return Vec::new(); // fixture runs without a dispatch site
    }
    let mut documented: BTreeMap<String, u32> = BTreeMap::new();
    let mut in_section = false;
    for (i, line) in readme.text.lines().enumerate() {
        if line.starts_with("## ") {
            in_section = line.to_ascii_lowercase().contains("protocol reference");
            continue;
        }
        if !in_section {
            continue;
        }
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        let Some(cell) = first_cell(trimmed) else {
            continue;
        };
        for verb in verbs_in_cell(cell) {
            documented.entry(verb).or_insert(i as u32 + 1);
        }
    }

    let readme_path = readme.path.to_string_lossy().into_owned();
    let parsed_verbs: BTreeSet<&String> = parsed.keys().collect();
    let documented_verbs: BTreeSet<&String> = documented.keys().collect();
    let mut findings = Vec::new();
    for verb in parsed_verbs.difference(&documented_verbs) {
        let (fi, offset) = parsed[*verb];
        let file = &model.files[fi];
        let (line, col) = file.line_col(offset);
        findings.push(Finding {
            rule: RULE,
            path: file.path.to_string_lossy().into_owned(),
            line,
            col,
            message: format!(
                "protocol verb `{verb}` is parsed here but has no row in the README protocol reference table"
            ),
        });
    }
    for verb in documented_verbs.difference(&parsed_verbs) {
        findings.push(Finding {
            rule: RULE,
            path: readme_path.clone(),
            line: documented[*verb],
            col: 1,
            message: format!(
                "README documents protocol verb `{verb}` but the dispatch match no longer parses it"
            ),
        });
    }
    findings
}

/// String-literal arm patterns of the first `match` following token `ti`.
fn collect_match_arms(file: &SourceFile, marker_ti: usize) -> Vec<(String, usize)> {
    let marker_end = file.tokens[marker_ti].end;
    // First significant `match` after the marker.
    let mut si = match file
        .sig
        .iter()
        .position(|&i| file.tokens[i].start >= marker_end)
    {
        Some(p) => p,
        None => return Vec::new(),
    };
    let n = file.sig.len();
    while si < n && file.tokens[file.sig[si]].text(&file.text) != "match" {
        si += 1;
    }
    // Its body `{`.
    while si < n && file.tokens[file.sig[si]].text(&file.text) != "{" {
        si += 1;
    }
    if si >= n {
        return Vec::new();
    }
    let mut verbs = Vec::new();
    let mut depth = 0i32; // counts every bracket kind; arm patterns at 1
    let mut group: Vec<(String, usize)> = Vec::new();
    let mut i = si;
    while i < n {
        let tok = &file.tokens[file.sig[i]];
        let text = tok.text(&file.text);
        match text {
            "{" | "(" | "[" => {
                depth += 1;
                group.clear();
            }
            "}" | ")" | "]" => {
                depth -= 1;
                group.clear();
                if depth == 0 {
                    break;
                }
            }
            "|" if depth == 1 => {}
            "=" if depth == 1 => {
                // `=>` = adjacent `=` `>`.
                let arrow = i + 1 < n
                    && file.tokens[file.sig[i + 1]].text(&file.text) == ">"
                    && file.tokens[file.sig[i + 1]].start == tok.end;
                if arrow {
                    verbs.append(&mut group);
                    i += 1;
                } else {
                    group.clear();
                }
            }
            _ => {
                if depth == 1 && tok.kind == TokenKind::StrLit {
                    if let Some(inner) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
                        group.push((inner.to_string(), tok.start));
                    }
                } else if depth == 1 {
                    group.clear(); // ident pattern, guard, etc.
                }
            }
        }
        i += 1;
    }
    verbs
}

/// First word of each backticked span in a table cell, if verb-shaped.
fn verbs_in_cell(cell: &str) -> Vec<String> {
    let mut verbs = Vec::new();
    for (i, span) in cell.split('`').enumerate() {
        if i % 2 == 0 {
            continue; // outside backticks
        }
        if let Some(word) = span.split_whitespace().next() {
            if !word.is_empty() && word.bytes().all(|b| b.is_ascii_lowercase() || b == b'_') {
                verbs.push(word.to_string());
            }
        }
    }
    verbs
}

/// First cell of a markdown table row, `\|` escapes respected.
fn first_cell(row: &str) -> Option<&str> {
    let body = row.strip_prefix('|')?;
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            i += 2;
            continue;
        }
        if bytes[i] == b'|' {
            return Some(&body[..i]);
        }
        i += 1;
    }
    Some(body)
}
