//! `blocking-in-reactor`: shard event loops must not block.
//!
//! A reactor shard multiplexes every connection hashed to it; one
//! blocking call (a contended mutex, a blocking channel `recv`, an
//! unbounded read, a sleep) stalls *all* of them. This rule is textual
//! and file-scoped on purpose: it scans the functions that make up the
//! reactor (`reactor.rs`) and the legacy per-connection handler, not the
//! engine they call into — the engine's admission layer
//! (`try_enqueue` + typed `Overloaded`) is the approved way work crosses
//! from the event loop into the blocking world.
//!
//! Deliberate waits (the bounded idle park in `poll`) carry a pragma
//! with the reason inline.

use crate::model::{FileKind, Model};
use crate::Finding;

const RULE: &str = "blocking-in-reactor";

/// Calls that park or block the calling thread.
const BLOCKING_CALLS: [&str; 9] = [
    "sleep",
    "recv",
    "recv_timeout",
    "read_to_end",
    "read_to_string",
    "wait",
    "wait_timeout",
    "wait_while",
    "park",
];

/// The blocking write-queue entry point; event loops must use
/// `try_enqueue` (which sheds with a typed `Overloaded`) instead.
const BLOCKING_ENQUEUE: &str = "enqueue";

pub fn run(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &model.functions {
        if f.is_test {
            continue;
        }
        let file = &model.files[f.file];
        if file.kind != FileKind::Production {
            continue;
        }
        let in_scope = file.stem() == "reactor" || f.name == "handle_connection";
        if !in_scope {
            continue;
        }
        for c in &f.calls {
            let blocking = BLOCKING_CALLS.contains(&c.name.as_str());
            let blocking_enqueue = c.name == BLOCKING_ENQUEUE;
            if !(blocking || blocking_enqueue) {
                continue;
            }
            let (line, col) = file.line_col(c.offset);
            let why = if blocking_enqueue {
                "blocking `enqueue` parks the event loop on one tenant's backpressure; use `try_enqueue` and shed with `Overloaded`"
            } else {
                "this call can block the shard's event loop, stalling every connection on the shard"
            };
            findings.push(Finding {
                rule: RULE,
                path: file.path.to_string_lossy().into_owned(),
                line,
                col,
                message: format!("`{}(…)` in `{}`: {}", c.name, f.name, why),
            });
        }
        for a in &f.acquisitions {
            let (line, col) = file.line_col(a.offset);
            if a.method.starts_with("try_") {
                continue; // non-blocking by construction
            }
            findings.push(Finding {
                rule: RULE,
                path: file.path.to_string_lossy().into_owned(),
                line,
                col,
                message: format!(
                    "`{}` acquired with `.{}()` in `{}`: a contended lock blocks the shard's event loop (use a try_ variant or move the work off-loop)",
                    a.lock, a.method, f.name
                ),
            });
        }
    }
    findings
}
