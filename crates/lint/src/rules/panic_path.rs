//! `panic-path`: no panics on the long-lived service threads.
//!
//! A panic on the dataset writer thread, a reactor shard, the follower
//! tail thread, or the group-commit thread doesn't crash a request — it
//! silently kills the thread that every request depends on (and poisons
//! whatever mutex it held). This rule walks the call graph from those
//! thread loops and flags `unwrap`/`expect`/`panic!`-family macros, plus
//! indexing expressions evaluated while a lock is held (an out-of-bounds
//! panic there poisons the lock for every other thread).
//!
//! Exemptions built into the rule (not pragmas):
//! * `lock().unwrap()` / `read().unwrap()` — poison propagation: a
//!   poisoned mutex means another thread already panicked, and
//!   unwrapping is the established idiom for "don't serve on wreckage".
//! * test code (`#[cfg(test)]`, `#[test]`, `tests/`, `benches/`).
//!
//! Proven-infallible sites use a pragma:
//! `// anno-lint: allow(panic-path) -- <why it cannot fire>`.
//!
//! The root set is part of the rule: if a root function disappears in a
//! refactor, the rule *fails* rather than silently checking nothing.

use std::collections::{HashMap, VecDeque};

use crate::model::{FnId, Model};
use crate::{Finding, LintOptions};

const RULE: &str = "panic-path";

pub fn run(model: &Model, opts: &LintOptions) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Resolve roots; a missing root is a finding, not a silent no-op.
    let mut reached_from: HashMap<FnId, String> = HashMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for root in &opts.panic_roots {
        let ids: Vec<FnId> = model
            .fn_by_name
            .get(root)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| !model.functions[id].is_test)
                    .collect()
            })
            .unwrap_or_default();
        if ids.is_empty() {
            findings.push(Finding {
                rule: RULE,
                path: "(workspace)".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "panic-path root `{root}` not found in the workspace: update the root list in crates/lint (the rule refuses to silently check nothing)"
                ),
            });
            continue;
        }
        for id in ids {
            reached_from.entry(id).or_insert_with(|| root.clone());
            queue.push_back(id);
        }
    }

    // BFS over resolved calls.
    while let Some(id) = queue.pop_front() {
        let root = reached_from[&id].clone();
        let f = &model.functions[id];
        for c in &f.calls {
            if let Some(callee) = model.resolve_call(f, c) {
                if model.functions[callee].is_test {
                    continue;
                }
                reached_from.entry(callee).or_insert_with(|| {
                    queue.push_back(callee);
                    root.clone()
                });
            }
        }
    }

    for (&id, root) in &reached_from {
        let f = &model.functions[id];
        if f.is_test {
            continue;
        }
        let file = &model.files[f.file];
        for p in &f.panics {
            if p.poison_unwrap {
                continue;
            }
            let (line, col) = file.line_col(p.offset);
            findings.push(Finding {
                rule: RULE,
                path: file.path.to_string_lossy().into_owned(),
                line,
                col,
                message: format!(
                    "{} in `{}`, reachable from the `{root}` thread: a panic here kills the service thread (return a typed error, or pragma with proof of infallibility)",
                    p.kind.label(),
                    f.name
                ),
            });
        }
        for ix in &f.indexing {
            let (line, col) = file.line_col(ix.offset);
            findings.push(Finding {
                rule: RULE,
                path: file.path.to_string_lossy().into_owned(),
                line,
                col,
                message: format!(
                    "indexing while holding {} in `{}`, reachable from the `{root}` thread: an out-of-bounds panic would poison the held lock",
                    ix.held.join(" + "),
                    f.name
                ),
            });
        }
    }
    findings
}
