//! `lock-order`: the interprocedural lock-order graph must be acyclic.
//!
//! Every acquisition records the set of locks already held; holding `A`
//! while acquiring `B` adds the edge `A → B`. Calls propagate: holding
//! `A` across a call whose (transitive) body may acquire `B` also adds
//! `A → B`, attributed to the call site. A cycle in the resulting graph
//! is a deadlock-capable acquisition order — two threads walking the
//! cycle from different entry points can block each other forever.
//!
//! Suppression is per *site*: a `// anno-lint: allow(lock-order) -- …`
//! pragma on an acquisition or call site removes the edges created at
//! that site (the usual reason: the two acquisitions are provably on
//! different instances, which a static order graph cannot see).
//!
//! A direct self-edge (`A` acquired while `A` is already held, in one
//! function body) is reported as a reentrancy bug. Self-edges that only
//! arise through calls are **not** reported: across a call boundary the
//! two `A`s are usually different instances (leader vs. follower
//! datasets, two tenants), and std mutexes on different instances don't
//! interact.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use crate::model::{FnId, LockId, Model};
use crate::pragma::PragmaIndex;
use crate::Finding;

const RULE: &str = "lock-order";

#[derive(Clone)]
struct EdgeInfo {
    file: usize,
    offset: usize,
    via: Option<String>,
}

pub fn run(model: &Model, pragmas: &PragmaIndex) -> Vec<Finding> {
    let suppressed = |fn_file: usize, offset: usize| -> bool {
        let (line, _) = model.files[fn_file].line_col(offset);
        pragmas.allows(fn_file, line, RULE)
    };

    // Transitive acquisition sets per function (suppressed sites and
    // guard-returning acquisitions included — a returned guard is still
    // taken inside the callee).
    let mut acquires: Vec<BTreeSet<LockId>> = model
        .functions
        .iter()
        .map(|f| {
            f.acquisitions
                .iter()
                .filter(|a| !suppressed(f.file, a.offset))
                .map(|a| a.lock.clone())
                .collect()
        })
        .collect();
    // Fixpoint over the call graph.
    let resolved_calls: Vec<Vec<(FnId, usize)>> = model
        .functions
        .iter()
        .map(|f| {
            f.calls
                .iter()
                .filter_map(|c| model.resolve_call(f, c).map(|id| (id, c.offset)))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for (id, calls) in resolved_calls.iter().enumerate() {
            for &(callee, _) in calls {
                if callee == id {
                    continue;
                }
                let add: Vec<LockId> = acquires[callee]
                    .iter()
                    .filter(|l| !acquires[id].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    acquires[id].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge set, first-site-wins for reporting.
    let mut edges: BTreeMap<(LockId, LockId), EdgeInfo> = BTreeMap::new();
    let mut direct_self: Vec<(LockId, usize, usize)> = Vec::new();
    for f in &model.functions {
        for a in &f.acquisitions {
            if suppressed(f.file, a.offset) {
                continue;
            }
            for h in &a.held {
                if *h == a.lock {
                    direct_self.push((a.lock.clone(), f.file, a.offset));
                    continue;
                }
                edges
                    .entry((h.clone(), a.lock.clone()))
                    .or_insert(EdgeInfo {
                        file: f.file,
                        offset: a.offset,
                        via: None,
                    });
            }
        }
        for c in &f.calls {
            if c.held.is_empty() || suppressed(f.file, c.offset) {
                continue;
            }
            let Some(callee) = model.resolve_call(f, c) else {
                continue;
            };
            for h in &c.held {
                for l in &acquires[callee] {
                    if *h == *l {
                        continue; // cross-instance by default; see module doc
                    }
                    edges.entry((h.clone(), l.clone())).or_insert(EdgeInfo {
                        file: f.file,
                        offset: c.offset,
                        via: Some(format!("{}()", c.name)),
                    });
                }
            }
        }
    }

    let mut findings = Vec::new();

    // Direct reentrancy.
    let mut seen_self: HashSet<LockId> = HashSet::new();
    for (lock, file, offset) in direct_self {
        if !seen_self.insert(lock.clone()) {
            continue;
        }
        findings.push(finding_at(
            model,
            file,
            offset,
            format!("lock `{lock}` acquired while already held in the same function: a std mutex self-deadlocks on reentry"),
        ));
    }

    // Cycles: adjacency + SCCs (Kosaraju, iterative).
    let nodes: BTreeSet<LockId> = edges
        .keys()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    let index: HashMap<&LockId, usize> = nodes.iter().enumerate().map(|(i, n)| (n, i)).collect();
    let node_list: Vec<&LockId> = nodes.iter().collect();
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        let (ia, ib) = (index[a], index[b]);
        fwd[ia].push(ib);
        rev[ib].push(ia);
    }
    let sccs = kosaraju(&fwd, &rev);
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        // Reconstruct one concrete cycle inside the SCC for the report.
        let cycle = cycle_through(&fwd, &members, scc[0]);
        let mut desc = String::new();
        let mut first_site = None;
        for w in cycle.windows(2) {
            let (a, b) = (node_list[w[0]].clone(), node_list[w[1]].clone());
            let info = &edges[&(a.clone(), b.clone())];
            let (line, _) = model.files[info.file].line_col(info.offset);
            if first_site.is_none() {
                first_site = Some((info.file, info.offset));
            }
            let via = info
                .via
                .as_ref()
                .map(|v| format!(" via {v}"))
                .unwrap_or_default();
            desc.push_str(&format!(
                "\n    {a} -> {b}{via} at {}:{line}",
                model.files[info.file].path.display()
            ));
        }
        let (file, offset) = first_site.unwrap_or((0, 0));
        findings.push(finding_at(
            model,
            file,
            offset,
            format!(
                "lock-order cycle ({} locks): threads taking these locks in different orders can deadlock{desc}",
                members.len()
            ),
        ));
    }
    findings
}

fn finding_at(model: &Model, file: usize, offset: usize, message: String) -> Finding {
    let f = &model.files[file];
    let (line, col) = f.line_col(offset);
    Finding {
        rule: RULE,
        path: f.path.to_string_lossy().into_owned(),
        line,
        col,
        message,
    }
}

/// Iterative Kosaraju SCC.
fn kosaraju(fwd: &[Vec<usize>], rev: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = fwd.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Post-order DFS, iterative.
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < fwd[v].len() {
                let next = fwd[v][*ei];
                *ei += 1;
                if !seen[next] {
                    seen[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut sccs = Vec::new();
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = sccs.len();
        let mut members = vec![start];
        comp[start] = id;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in &rev[v] {
                if comp[u] == usize::MAX {
                    comp[u] = id;
                    members.push(u);
                    queue.push_back(u);
                }
            }
        }
        sccs.push(members);
    }
    sccs
}

/// A concrete cycle (node list, first == last) through `start`, staying
/// inside `members`.
fn cycle_through(fwd: &[Vec<usize>], members: &BTreeSet<usize>, start: usize) -> Vec<usize> {
    // BFS from each successor of `start` back to `start`.
    for &first in &fwd[start] {
        if !members.contains(&first) {
            continue;
        }
        if first == start {
            return vec![start, start];
        }
        let mut prev: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::from([first]);
        prev.insert(first, start);
        while let Some(v) = queue.pop_front() {
            if v == start {
                break;
            }
            for &u in &fwd[v] {
                if members.contains(&u) && !prev.contains_key(&u) {
                    prev.insert(u, v);
                    queue.push_back(u);
                }
            }
        }
        if prev.contains_key(&start) {
            let mut path = vec![start];
            let mut at = start;
            loop {
                at = prev[&at];
                path.push(at);
                if at == start {
                    break;
                }
            }
            path.reverse();
            return path;
        }
    }
    vec![start, start]
}
