//! `forbid-unsafe`: every first-party crate root carries
//! `#![forbid(unsafe_code)]`.
//!
//! The workspace is pure safe Rust by policy (the reactor's whole design
//! bends around "no unsafe, no new deps"); `forbid` — unlike `deny` —
//! cannot be overridden further down the tree, so its presence in each
//! crate root is a machine-checkable statement of that policy.

use std::path::Component;

use crate::lexer::TokenKind;
use crate::model::{FileKind, Model};
use crate::Finding;

const RULE: &str = "forbid-unsafe";

pub fn run(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &model.files {
        if file.kind != FileKind::Production || !is_crate_root(file) {
            continue;
        }
        if has_forbid_unsafe(file) {
            continue;
        }
        findings.push(Finding {
            rule: RULE,
            path: file.path.to_string_lossy().into_owned(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]` (workspace policy: every first-party crate forbids unsafe)".to_string(),
        });
    }
    findings
}

/// `src/lib.rs` of any first-party crate (vendor trees are never loaded).
fn is_crate_root(file: &crate::model::SourceFile) -> bool {
    let comps: Vec<&str> = file
        .path
        .components()
        .filter_map(|c| match c {
            Component::Normal(s) => s.to_str(),
            _ => None,
        })
        .collect();
    comps.len() >= 2 && comps[comps.len() - 2] == "src" && comps[comps.len() - 1] == "lib.rs"
}

fn has_forbid_unsafe(file: &crate::model::SourceFile) -> bool {
    // Token sequence `#` `!` `[` `forbid` `(` `unsafe_code` `)` `]`.
    let texts: Vec<&str> = file
        .sig
        .iter()
        .map(|&i| file.tokens[i].text(&file.text))
        .collect();
    texts
        .windows(8)
        .any(|w| w == ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"])
}

// Keep the TokenKind import meaningful if the matcher grows; for now the
// window match above is on significant-token text only.
#[allow(unused_imports)]
use TokenKind as _;
