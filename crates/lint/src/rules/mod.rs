//! The rule registry. Every rule is a pure function over the [`Model`]
//! (plus the pragma index for rules with site-level suppression
//! semantics); adding a rule is adding a module and a line in
//! [`run_all`].

use crate::model::Model;
use crate::pragma::PragmaIndex;
use crate::{Finding, LintOptions};

pub mod blocking_reactor;
pub mod forbid_unsafe;
pub mod lock_order;
pub mod metric_drift;
pub mod panic_path;
pub mod protocol_drift;

/// Every rule name a pragma may allow. `pragma` itself is deliberately
/// absent: a malformed suppression cannot be suppressed.
pub const RULE_NAMES: [&str; 6] = [
    "lock-order",
    "panic-path",
    "blocking-in-reactor",
    "metric-drift",
    "protocol-drift",
    "forbid-unsafe",
];

/// Run every rule; pragma suppression for line-scoped rules is applied
/// by the caller.
pub fn run_all(model: &Model, pragmas: &PragmaIndex, opts: &LintOptions) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(lock_order::run(model, pragmas));
    findings.extend(panic_path::run(model, opts));
    findings.extend(blocking_reactor::run(model));
    findings.extend(metric_drift::run(model));
    findings.extend(protocol_drift::run(model));
    findings.extend(forbid_unsafe::run(model));
    findings
}
