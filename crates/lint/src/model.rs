//! The source model the rules run against.
//!
//! One pass over each file's token stream extracts just enough structure
//! for the rules: struct definitions with their `Mutex`/`RwLock` fields,
//! `impl` contexts, function definitions with body spans, and — per
//! function body — lock-acquisition sites with the set of locks held at
//! each point, call sites, panic sites, and indexing sites. No AST: the
//! extraction is a disciplined token walk, which is exactly as much
//! parsing as a repo-local analysis can afford to maintain.
//!
//! Precision contract: the scope tracker over-approximates guard
//! lifetimes (a guard bound inside an `if let` condition is treated as
//! held to the end of the enclosing statement run) and the call resolver
//! under-approximates dispatch (a method call only resolves when its
//! name is unambiguous in the workspace). Over-approximate holds and
//! under-approximate calls keep the lock graph's false-positive rate
//! low enough to gate CI on.

use std::collections::HashMap;
use std::path::PathBuf;

use crate::lexer::{lex, Token, TokenKind};

/// How a file participates in analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// First-party library/binary code: all rules apply.
    Production,
    /// `tests/`, `benches/`, `examples/` trees: structure is modeled
    /// (for call-graph completeness) but panic/blocking rules skip it.
    TestHarness,
    /// Markdown (README): raw text only, consumed by the drift rules.
    Doc,
}

/// One loaded source file.
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub path: PathBuf,
    pub text: String,
    pub kind: FileKind,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-trivia tokens, in order.
    pub sig: Vec<usize>,
    /// Byte offset of each line start; line numbers are 1-based.
    pub line_starts: Vec<usize>,
    /// Byte ranges of `#[cfg(test)] mod … { … }` bodies.
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = self.text[self.line_starts[line]..offset].chars().count();
        (line as u32 + 1, col as u32 + 1)
    }

    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| s <= offset && offset < e)
    }

    fn tok(&self, sig_idx: usize) -> &Token {
        &self.tokens[self.sig[sig_idx]]
    }

    fn text_of(&self, sig_idx: usize) -> &str {
        self.tok(sig_idx).text(&self.text)
    }

    fn kind_of(&self, sig_idx: usize) -> TokenKind {
        self.tok(sig_idx).kind
    }

    /// File stem ("dataset" for crates/service/src/dataset.rs).
    pub fn stem(&self) -> String {
        self.path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default()
    }
}

/// A struct that owns lock fields.
#[derive(Debug)]
pub struct StructDef {
    pub file: usize,
    pub name: String,
    /// Field names whose type mentions `Mutex` or `RwLock`.
    pub lock_fields: Vec<String>,
}

/// A stable lock identity: `Struct::field`, or `file::field` when the
/// owning struct could not be resolved.
pub type LockId = String;

/// A lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct AcqSite {
    pub lock: LockId,
    /// Locks held when this acquisition happens (dedup'd, in hold order).
    pub held: Vec<LockId>,
    pub offset: usize,
    /// The method used (`lock`, `read`, `try_lock`, …).
    pub method: String,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallQual {
    /// `helper(…)` — a free function.
    Bare,
    /// `self.helper(…)` — a method on the current impl type.
    SelfMethod,
    /// `x.helper(…)` — a method on something else.
    Method,
    /// `Type::helper(…)`.
    Path(String),
}

/// A call inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub qual: CallQual,
    pub held: Vec<LockId>,
    pub offset: usize,
}

/// Kinds of panic site the panic-path rule reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    Unwrap,
    Expect,
    PanicMacro,
    UnreachableMacro,
    TodoMacro,
    UnimplementedMacro,
}

impl PanicKind {
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => ".unwrap()",
            PanicKind::Expect => ".expect(…)",
            PanicKind::PanicMacro => "panic!",
            PanicKind::UnreachableMacro => "unreachable!",
            PanicKind::TodoMacro => "todo!",
            PanicKind::UnimplementedMacro => "unimplemented!",
        }
    }
}

/// A potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub kind: PanicKind,
    pub offset: usize,
    /// `lock().unwrap()` / `read().unwrap()` — the poison-propagation
    /// idiom, exempt from panic-path by policy (a poisoned lock means
    /// another thread already panicked; unwrap merely propagates).
    pub poison_unwrap: bool,
}

/// An indexing expression (`x[i]`) evaluated while a lock is held.
#[derive(Debug, Clone)]
pub struct IndexSite {
    pub held: Vec<LockId>,
    pub offset: usize,
}

/// A function definition.
pub struct FnDef {
    pub file: usize,
    pub name: String,
    pub impl_type: Option<String>,
    pub offset: usize,
    /// Test code: `#[test]`/`#[bench]`, inside `#[cfg(test)]`, or in a
    /// test-harness file.
    pub is_test: bool,
    pub acquisitions: Vec<AcqSite>,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub indexing: Vec<IndexSite>,
    /// Set when the return type mentions a guard type: calling this
    /// function acquires the given lock in the caller's scope.
    pub returns_guard: Option<LockId>,
}

/// Identifier of a function in `Model::functions`.
pub type FnId = usize;

/// The whole-workspace model.
pub struct Model {
    pub files: Vec<SourceFile>,
    pub structs: Vec<StructDef>,
    pub functions: Vec<FnDef>,
    /// Simple name → candidate functions.
    pub fn_by_name: HashMap<String, Vec<FnId>>,
    /// (impl type, name) → function.
    pub fn_by_qual: HashMap<(String, String), FnId>,
}

const LOCK_METHODS: [&str; 6] = ["lock", "try_lock", "read", "try_read", "write", "try_write"];

/// Method names too generic to resolve across the workspace: they shadow
/// std container/iterator/Option/Result/trait methods constantly, and a
/// misresolved call would wire unrelated lock scopes together.
const UNRESOLVABLE_METHODS: &[&str] = &[
    "new",
    "clone",
    "default",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "contains",
    "extend",
    "iter",
    "into_iter",
    "next",
    "collect",
    "drain",
    "clear",
    "take",
    "replace",
    "join",
    "send",
    "recv",
    "flush",
    "write",
    "read",
    "write_all",
    "read_line",
    "wait",
    "notify_all",
    "notify_one",
    "spawn",
    "fmt",
    "from",
    "into",
    "to_string",
    "as_str",
    "name",
    "min",
    "max",
    // Iterator adapters and consumers: the receiver is an iterator, never
    // a workspace type, but closures make the names collide.
    "all",
    "any",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "find",
    "find_map",
    "for_each",
    "position",
    "count",
    "sum",
    "last",
    "rev",
    "skip",
    "chain",
    "zip",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "windows",
    "chunks",
    "peekable",
    "take_while",
    "skip_while",
    "max_by_key",
    "min_by_key",
    "max_by",
    "min_by",
    // Option/Result combinators.
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map_err",
    "and_then",
    "or_else",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "as_ref",
    "as_mut",
    "as_deref",
    "cloned",
    "copied",
    // str/slice staples.
    "split",
    "splitn",
    "trim",
    "parse",
    "lines",
    "chars",
    "bytes",
    "starts_with",
    "ends_with",
    "to_vec",
    "to_owned",
    "keys",
    "values",
    "entry",
    "get_mut",
    "contains_key",
    "first",
];

struct ImplCtx {
    ty: String,
    /// Brace depth at which this impl's body closes.
    close_depth: usize,
}

impl Model {
    /// Build the model from pre-loaded files.
    pub fn build(inputs: Vec<(PathBuf, String, FileKind)>) -> Model {
        let mut files = Vec::with_capacity(inputs.len());
        for (path, text, kind) in inputs {
            files.push(load_file(path, text, kind));
        }

        // Pass 1: structs (lock-field registry) and function skeletons.
        let mut structs = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            if file.kind == FileKind::Doc {
                continue;
            }
            collect_structs(file, fi, &mut structs);
        }
        let mut lock_fields: HashMap<&str, Vec<usize>> = HashMap::new();
        for (si, s) in structs.iter().enumerate() {
            for f in &s.lock_fields {
                lock_fields.entry(f.as_str()).or_default().push(si);
            }
        }

        // Pass 2: functions with analyzed bodies.
        let mut functions = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            if file.kind == FileKind::Doc {
                continue;
            }
            collect_functions(file, fi, &structs, &lock_fields, &mut functions);
        }

        let mut fn_by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut fn_by_qual: HashMap<(String, String), FnId> = HashMap::new();
        for (id, f) in functions.iter().enumerate() {
            fn_by_name.entry(f.name.clone()).or_default().push(id);
            if let Some(ty) = &f.impl_type {
                fn_by_qual.insert((ty.clone(), f.name.clone()), id);
            }
        }

        Model {
            files,
            structs,
            functions,
            fn_by_name,
            fn_by_qual,
        }
    }

    /// Resolve a call site to a workspace function, conservatively.
    pub fn resolve_call(&self, caller: &FnDef, call: &CallSite) -> Option<FnId> {
        match &call.qual {
            CallQual::Path(ty) => self
                .fn_by_qual
                .get(&(ty.clone(), call.name.clone()))
                .copied(),
            CallQual::SelfMethod => {
                let ty = caller.impl_type.as_ref()?;
                self.fn_by_qual
                    .get(&(ty.clone(), call.name.clone()))
                    .copied()
            }
            CallQual::Bare => {
                let cands = self.fn_by_name.get(&call.name)?;
                // Free functions in the same file win; otherwise require a
                // workspace-unique free function.
                let free: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|&id| self.functions[id].impl_type.is_none())
                    .collect();
                let same_file: Vec<FnId> = free
                    .iter()
                    .copied()
                    .filter(|&id| self.functions[id].file == caller.file)
                    .collect();
                match (same_file.len(), free.len()) {
                    (1, _) => Some(same_file[0]),
                    (0, 1) => Some(free[0]),
                    _ => None,
                }
            }
            CallQual::Method => {
                if UNRESOLVABLE_METHODS.contains(&call.name.as_str()) {
                    return None;
                }
                let cands = self.fn_by_name.get(&call.name)?;
                if cands.len() == 1 {
                    Some(cands[0])
                } else {
                    None
                }
            }
        }
    }
}

fn load_file(path: PathBuf, text: String, kind: FileKind) -> SourceFile {
    let mut line_starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let (tokens, sig) = if kind == FileKind::Doc {
        (Vec::new(), Vec::new())
    } else {
        let tokens = lex(&text);
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        (tokens, sig)
    };
    let mut file = SourceFile {
        path,
        text,
        kind,
        tokens,
        sig,
        line_starts,
        test_regions: Vec::new(),
    };
    if file.kind != FileKind::Doc {
        file.test_regions = find_test_regions(&file);
    }
    file
}

/// Find `#[cfg(test)] mod name { … }` body spans.
fn find_test_regions(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let n = file.sig.len();
    let mut i = 0;
    while i < n {
        if file.kind_of(i) == TokenKind::Punct && file.text_of(i) == "#" {
            let (attr_end, is_cfg_test) = scan_attribute(file, i);
            if is_cfg_test {
                // Expect `mod name {` next (possibly after more attrs).
                let mut j = attr_end;
                while j < n && file.text_of(j) == "#" {
                    j = scan_attribute(file, j).0;
                }
                if j < n && file.text_of(j) == "mod" {
                    // Find the opening brace, then its match.
                    let mut k = j;
                    while k < n && file.text_of(k) != "{" && file.text_of(k) != ";" {
                        k += 1;
                    }
                    if k < n && file.text_of(k) == "{" {
                        let close = matching_brace(file, k);
                        regions.push((file.tok(k).start, file.tok(close.min(n - 1)).end));
                        i = close;
                        continue;
                    }
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    regions
}

/// From a `#` at sig index `i`, skip over the attribute. Returns the sig
/// index after it and whether it was `cfg(test)`-like.
fn scan_attribute(file: &SourceFile, i: usize) -> (usize, bool) {
    let n = file.sig.len();
    let mut j = i + 1;
    if j < n && file.text_of(j) == "!" {
        j += 1;
    }
    if j >= n || file.text_of(j) != "[" {
        return (i + 1, false);
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while j < n {
        let t = file.text_of(j);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, saw_cfg && saw_test);
                }
            }
            "cfg" => saw_cfg = true,
            "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    (n, false)
}

/// Is the attribute starting at `i` a `#[test]`-like function attribute?
fn attribute_is_test(file: &SourceFile, i: usize) -> bool {
    let n = file.sig.len();
    let mut j = i + 1;
    if j >= n || file.text_of(j) != "[" {
        return false;
    }
    let mut depth = 0usize;
    while j < n {
        match file.text_of(j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "test" | "bench" => return true,
            "cfg" => {} // cfg(test) on a fn: fall through, `test` hits above
            _ => {}
        }
        j += 1;
    }
    false
}

/// Sig index of the `}` matching the `{` at sig index `open`.
fn matching_brace(file: &SourceFile, open: usize) -> usize {
    let n = file.sig.len();
    let mut depth = 0usize;
    let mut i = open;
    while i < n {
        match file.text_of(i) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    n - 1
}

fn collect_structs(file: &SourceFile, fi: usize, out: &mut Vec<StructDef>) {
    let n = file.sig.len();
    let mut i = 0;
    while i < n {
        if file.kind_of(i) == TokenKind::Ident
            && file.text_of(i) == "struct"
            && i + 1 < n
            && file.kind_of(i + 1) == TokenKind::Ident
        {
            let name = file.text_of(i + 1).to_string();
            // Skip to `{`, `;` (unit) or `(` (tuple) at angle depth 0.
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < n {
                match file.text_of(j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => break,
                    ";" | "(" if angle <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < n && file.text_of(j) == "{" {
                let close = matching_brace(file, j);
                let lock_fields = collect_lock_fields(file, j, close);
                if !lock_fields.is_empty() {
                    out.push(StructDef {
                        file: fi,
                        name,
                        lock_fields,
                    });
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Fields typed `Mutex<…>`/`RwLock<…>` (possibly nested, e.g. inside
/// `Arc<(Mutex<bool>, Condvar)>`) between braces `open..close`.
fn collect_lock_fields(file: &SourceFile, open: usize, close: usize) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = open + 1;
    while i < close {
        // Skip attributes on fields.
        if file.text_of(i) == "#" {
            i = scan_attribute(file, i).0;
            continue;
        }
        // Field pattern: [pub[(crate)]] name `:` type…(`,` at depth 1 | close)
        if file.kind_of(i) == TokenKind::Ident && i + 1 < close && file.text_of(i + 1) == ":" {
            let name = file.text_of(i).to_string();
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut has_lock = false;
            while j < close {
                match file.text_of(j) {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth <= 0 => break,
                    "Mutex" | "RwLock" => has_lock = true,
                    _ => {}
                }
                j += 1;
            }
            if has_lock {
                fields.push(name);
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    fields
}

fn collect_functions(
    file: &SourceFile,
    fi: usize,
    structs: &[StructDef],
    lock_fields: &HashMap<&str, Vec<usize>>,
    out: &mut Vec<FnDef>,
) {
    let n = file.sig.len();
    let mut impl_stack: Vec<ImplCtx> = Vec::new();
    let mut brace_depth = 0usize;
    let mut pending_test_attr = false;
    let mut i = 0;
    while i < n {
        let text = file.text_of(i);
        match text {
            "#" => {
                if attribute_is_test(file, i) {
                    pending_test_attr = true;
                }
                i = scan_attribute(file, i).0;
                continue;
            }
            "{" => {
                brace_depth += 1;
                i += 1;
                continue;
            }
            "}" => {
                brace_depth = brace_depth.saturating_sub(1);
                if impl_stack
                    .last()
                    .is_some_and(|c| c.close_depth == brace_depth)
                {
                    impl_stack.pop();
                }
                i += 1;
                continue;
            }
            "impl" => {
                if let Some((ty, body_open)) = parse_impl_header(file, i) {
                    impl_stack.push(ImplCtx {
                        ty,
                        close_depth: brace_depth,
                    });
                    brace_depth += 1;
                    i = body_open + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            "fn" => {
                if i + 1 < n && file.kind_of(i + 1) == TokenKind::Ident {
                    let name = file.text_of(i + 1).to_string();
                    let offset = file.tok(i).start;
                    let (body, ret_mentions_guard) = parse_fn_signature(file, i + 2);
                    let is_test = pending_test_attr
                        || file.kind == FileKind::TestHarness
                        || file.in_test_region(offset);
                    pending_test_attr = false;
                    let mut def = FnDef {
                        file: fi,
                        name,
                        impl_type: impl_stack.last().map(|c| c.ty.clone()),
                        offset,
                        is_test,
                        acquisitions: Vec::new(),
                        calls: Vec::new(),
                        panics: Vec::new(),
                        indexing: Vec::new(),
                        returns_guard: None,
                    };
                    if let Some((open, close)) = body {
                        analyze_body(file, &mut def, structs, lock_fields, open, close);
                        if ret_mentions_guard {
                            def.returns_guard = def.acquisitions.first().map(|a| a.lock.clone());
                        }
                        out.push(def);
                        i = close + 1;
                        continue;
                    }
                    out.push(def);
                }
                i += 1;
                continue;
            }
            _ => {
                pending_test_attr = false;
                i += 1;
            }
        }
    }
}

/// Parse from the `impl` keyword: returns (type name, sig index of body
/// `{`), or None for `impl Trait for …;`-ish malformed cases.
fn parse_impl_header(file: &SourceFile, i: usize) -> Option<(String, usize)> {
    let n = file.sig.len();
    let mut j = i + 1;
    // Skip generic params `<…>`.
    if j < n && file.text_of(j) == "<" {
        let mut depth = 0i32;
        while j < n {
            match file.text_of(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Collect tokens up to `{` at bracket depth 0; remember the segment
    // after `for` if present.
    let mut after_for: Option<usize> = None;
    let mut depth = 0i32;
    let mut body_open = None;
    let head_start = j;
    while j < n {
        match file.text_of(j) {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "for" if depth <= 0 => after_for = Some(j + 1),
            "{" if depth <= 0 => {
                body_open = Some(j);
                break;
            }
            ";" if depth <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    let body_open = body_open?;
    let ty_start = after_for.unwrap_or(head_start);
    // Type name: the last ident of the leading path (`a::b::C<T>` → C),
    // stopping at `<`, `{`, or `where`.
    let mut ty = None;
    let mut k = ty_start;
    while k < body_open {
        let t = file.text_of(k);
        if t == "<" || t == "where" {
            break;
        }
        if file.kind_of(k) == TokenKind::Ident && t != "dyn" && t != "mut" {
            ty = Some(t.to_string());
        }
        if t != "::" && file.kind_of(k) != TokenKind::Ident {
            break;
        }
        k += 1;
    }
    Some((ty?, body_open))
}

/// From just past `fn name`, skip generics/params/return type. Returns
/// (body sig-range, return type mentions a lock guard).
fn parse_fn_signature(file: &SourceFile, mut j: usize) -> (Option<(usize, usize)>, bool) {
    let n = file.sig.len();
    // Generics.
    if j < n && file.text_of(j) == "<" {
        let mut depth = 0i32;
        while j < n {
            match file.text_of(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Params.
    if j < n && file.text_of(j) == "(" {
        let mut depth = 0i32;
        while j < n {
            match file.text_of(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Return type + where clause, up to `{` or `;` at depth 0.
    let mut guard = false;
    let mut depth = 0i32;
    while j < n {
        let t = file.text_of(j);
        match t {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "{" if depth <= 0 => {
                let close = matching_brace(file, j);
                return (Some((j, close)), guard);
            }
            ";" if depth <= 0 => return (None, guard),
            "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard" => guard = true,
            _ => {}
        }
        j += 1;
    }
    (None, guard)
}

/// One live guard in the scope tracker.
struct Guard {
    lock: LockId,
    binding: Option<String>,
    /// Dropped at the next `;` in its block (a temporary, not let-bound).
    stmt_scoped: bool,
}

struct Block {
    guards: Vec<Guard>,
}

/// Walk a function body (sig indices `open..=close`, both braces),
/// filling the def's site lists.
fn analyze_body(
    file: &SourceFile,
    def: &mut FnDef,
    structs: &[StructDef],
    lock_fields: &HashMap<&str, Vec<usize>>,
    open: usize,
    close: usize,
) {
    let mut blocks: Vec<Block> = vec![Block { guards: Vec::new() }];
    let mut stmt_is_let = false;
    let mut stmt_binding: Option<String> = None;
    let mut stmt_eq: Option<usize> = None;
    let mut at_stmt_start = true;

    let held_now = |blocks: &[Block]| -> Vec<LockId> {
        let mut held = Vec::new();
        for b in blocks {
            for g in &b.guards {
                if !held.contains(&g.lock) {
                    held.push(g.lock.clone());
                }
            }
        }
        held
    };

    let mut i = open + 1;
    while i < close {
        let text = file.text_of(i);
        let kind = file.kind_of(i);

        if at_stmt_start {
            stmt_is_let = text == "let";
            stmt_binding = None;
            stmt_eq = None;
            if stmt_is_let {
                // `let [mut] name` — tuple/struct patterns yield None.
                let mut j = i + 1;
                if j < close && file.text_of(j) == "mut" {
                    j += 1;
                }
                if j < close && file.kind_of(j) == TokenKind::Ident {
                    stmt_binding = Some(file.text_of(j).to_string());
                    // Position of the initializer's `=` (bounded scan).
                    let mut k = j + 1;
                    while k < close && k < j + 12 {
                        match file.text_of(k) {
                            "=" => {
                                stmt_eq = Some(k);
                                break;
                            }
                            ";" => break,
                            _ => k += 1,
                        }
                    }
                }
            }
            at_stmt_start = false;
        }

        match text {
            "{" => {
                // A guard temporary alive when a block opens mid-statement
                // sits in a condition/scrutinee position (`if let Some(x) =
                // m.lock()….take()`): Rust keeps it alive for the whole
                // construct, i.e. to the end of this block. Move it in so
                // the matching `}` drops it.
                let carried: Vec<Guard> = match blocks.last_mut() {
                    Some(b) => {
                        let (carry, keep) = std::mem::take(&mut b.guards)
                            .into_iter()
                            .partition(|g: &Guard| g.stmt_scoped);
                        b.guards = keep;
                        carry
                    }
                    None => Vec::new(),
                };
                blocks.push(Block { guards: carried });
                at_stmt_start = true;
                i += 1;
                continue;
            }
            "}" => {
                blocks.pop();
                if blocks.is_empty() {
                    blocks.push(Block { guards: Vec::new() });
                }
                at_stmt_start = true;
                i += 1;
                continue;
            }
            ";" => {
                if let Some(b) = blocks.last_mut() {
                    b.guards.retain(|g| !g.stmt_scoped);
                }
                at_stmt_start = true;
                i += 1;
                continue;
            }
            _ => {}
        }

        // Explicit `drop(binding)` releases a named guard early.
        if kind == TokenKind::Ident
            && text == "drop"
            && i + 3 < close
            && file.text_of(i + 1) == "("
            && file.kind_of(i + 2) == TokenKind::Ident
            && file.text_of(i + 3) == ")"
        {
            let victim = file.text_of(i + 2);
            for b in blocks.iter_mut() {
                b.guards.retain(|g| g.binding.as_deref() != Some(victim));
            }
            i += 4;
            continue;
        }

        if kind == TokenKind::Ident {
            let next = if i + 1 < close {
                file.text_of(i + 1)
            } else {
                ""
            };
            let prev_is_dot = i > open && file.text_of(i - 1) == ".";

            // Lock acquisition: `recv.field.lock()` (zero-arg).
            if prev_is_dot
                && LOCK_METHODS.contains(&text)
                && next == "("
                && i + 2 < close
                && file.text_of(i + 2) == ")"
            {
                if let Some(lock) = resolve_lock(file, def, structs, lock_fields, i, text) {
                    let held = held_now(&blocks);
                    def.acquisitions.push(AcqSite {
                        lock: lock.clone(),
                        held,
                        offset: file.tok(i).start,
                        method: text.to_string(),
                    });
                    // The let binding names the guard only when this
                    // acquisition chain is the whole initializer
                    // (`let g = a.b.lock()…`). `let v = *a.lock()` or
                    // `let v = match a.lock()… {…}` bind the *value*; the
                    // guard is a temporary dying at the statement's end.
                    let binds_guard = stmt_is_let
                        && stmt_eq.is_some_and(|eq| {
                            (eq + 1..i).all(|k| {
                                let t = file.text_of(k);
                                let expr_kw = matches!(
                                    t,
                                    "match"
                                        | "if"
                                        | "else"
                                        | "loop"
                                        | "while"
                                        | "for"
                                        | "return"
                                        | "break"
                                        | "continue"
                                        | "unsafe"
                                        | "move"
                                        | "as"
                                );
                                (matches!(file.kind_of(k), TokenKind::Ident | TokenKind::Number)
                                    && !expr_kw)
                                    || matches!(t, "." | ":" | "&" | "?")
                            })
                        });
                    if let Some(b) = blocks.last_mut() {
                        b.guards.push(Guard {
                            lock,
                            binding: if binds_guard {
                                stmt_binding.clone()
                            } else {
                                None
                            },
                            stmt_scoped: !binds_guard,
                        });
                    }
                    i += 3; // past `( )`
                    continue;
                }
            }

            // Panic sites.
            if prev_is_dot && (text == "unwrap" || text == "expect") && next == "(" {
                let poison_unwrap = is_poison_propagation(file, open, i);
                def.panics.push(PanicSite {
                    kind: if text == "unwrap" {
                        PanicKind::Unwrap
                    } else {
                        PanicKind::Expect
                    },
                    offset: file.tok(i).start,
                    poison_unwrap,
                });
                i += 2;
                continue;
            }
            if next == "!" {
                let mac = match text {
                    "panic" => Some(PanicKind::PanicMacro),
                    "unreachable" => Some(PanicKind::UnreachableMacro),
                    "todo" => Some(PanicKind::TodoMacro),
                    "unimplemented" => Some(PanicKind::UnimplementedMacro),
                    _ => None,
                };
                if let Some(kind) = mac {
                    def.panics.push(PanicSite {
                        kind,
                        offset: file.tok(i).start,
                        poison_unwrap: false,
                    });
                    i += 2;
                    continue;
                }
            }

            // Call sites.
            if next == "(" && !is_keyword(text) {
                let qual = if prev_is_dot {
                    if i >= open + 2 && file.text_of(i - 2) == "self" {
                        CallQual::SelfMethod
                    } else {
                        CallQual::Method
                    }
                } else if i > open && file.text_of(i - 1) == "::" {
                    let ty = if i >= open + 2 && file.kind_of(i - 2) == TokenKind::Ident {
                        Some(file.text_of(i - 2).to_string())
                    } else {
                        None
                    };
                    match ty {
                        Some(t) => CallQual::Path(t),
                        None => CallQual::Bare,
                    }
                } else {
                    CallQual::Bare
                };
                def.calls.push(CallSite {
                    name: text.to_string(),
                    qual,
                    held: held_now(&blocks),
                    offset: file.tok(i).start,
                });
                i += 1;
                continue;
            }
        }

        // Indexing while a lock is held: `expr[` where expr just ended.
        if text == "[" && i > open {
            let prev_kind = file.kind_of(i - 1);
            let prev_text = file.text_of(i - 1);
            // `name![…]` is a macro invocation (`vec![…]`), not indexing:
            // the bang sits at i-1 and fails all three predicates below.
            let indexes = (prev_kind == TokenKind::Ident && !is_keyword(prev_text))
                || prev_text == ")"
                || prev_text == "]";
            if indexes {
                let held = held_now(&blocks);
                if !held.is_empty() {
                    def.indexing.push(IndexSite {
                        held,
                        offset: file.tok(i).start,
                    });
                }
            }
        }

        i += 1;
    }
}

/// Is the `.unwrap()`/`.expect(…)` at sig index `i` applied directly to a
/// lock/condvar poison `Result` (`m.lock().unwrap()`,
/// `cv.wait_timeout(g, d).expect(…)`)? Poison propagation is the
/// workspace idiom for "another thread already panicked; don't serve on
/// wreckage" and is exempt from panic-path by policy.
fn is_poison_propagation(file: &SourceFile, open: usize, i: usize) -> bool {
    const POISON_METHODS: &[&str] = &[
        "lock",
        "try_lock",
        "read",
        "try_read",
        "write",
        "try_write",
        "wait",
        "wait_timeout",
        "wait_while",
    ];
    // Receiver must end with `…(` args `)`: walk i-2 back to its match.
    if i < open + 4 || file.text_of(i - 2) != ")" {
        return false;
    }
    let mut depth = 0i32;
    let mut j = i - 2;
    loop {
        match file.text_of(j) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == open {
            return false;
        }
        j -= 1;
    }
    j > open + 1 && POISON_METHODS.contains(&file.text_of(j - 1)) && file.text_of(j - 2) == "."
}

fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "fn"
            | "let"
            | "mut"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "ref"
            | "move"
            | "unsafe"
            | "where"
            | "impl"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "dyn"
            | "async"
            | "await"
    )
}

/// Resolve the receiver chain of a lock call at sig index `method_idx`
/// (the ident `lock`/`read`/…) into a stable lock id.
fn resolve_lock(
    file: &SourceFile,
    def: &FnDef,
    structs: &[StructDef],
    lock_fields: &HashMap<&str, Vec<usize>>,
    method_idx: usize,
    method: &str,
) -> Option<LockId> {
    // Walk back: `.`, then components (Ident|Number) separated by `.`.
    let mut components: Vec<&str> = Vec::new();
    let mut j = method_idx - 1; // the `.` before the method
    loop {
        if j == 0 {
            break;
        }
        let prev = j - 1;
        match file.kind_of(prev) {
            TokenKind::Ident | TokenKind::Number => {
                components.push(file.text_of(prev));
                if prev == 0 || file.text_of(prev - 1) != "." {
                    break;
                }
                j = prev - 1;
            }
            _ => break,
        }
    }
    components.reverse();
    // Last alphabetic component is the field name.
    let field = components
        .iter()
        .rev()
        .find(|c| {
            c.chars()
                .next()
                .is_some_and(|ch| ch == '_' || ch.is_alphabetic())
        })
        .copied()?;
    if field == "self" && components.len() == 1 {
        return None; // `self.lock()` — not a field access we understand
    }
    let root_is_self = components.first() == Some(&"self");

    let empty = Vec::new();
    let cands = lock_fields.get(field).unwrap_or(&empty);
    if cands.is_empty() {
        // Unknown field: only `lock`/`try_lock` are distinctive enough to
        // still count (std's read/write would drown the graph in noise).
        if method == "lock" || method == "try_lock" {
            return Some(format!("{}::{}", file.stem(), field));
        }
        return None;
    }
    // Prefer the impl context's struct for `self.…` receivers.
    if root_is_self {
        if let Some(ty) = &def.impl_type {
            if let Some(&si) = cands.iter().find(|&&si| &structs[si].name == ty) {
                return Some(format!("{}::{}", structs[si].name, field));
            }
        }
    }
    if cands.len() == 1 {
        return Some(format!("{}::{}", structs[cands[0]].name, field));
    }
    // Same-file struct wins; otherwise the field name is ambiguous and we
    // give it a per-file identity rather than conflating across files.
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&si| structs[si].file == def.file)
        .collect();
    if same_file.len() == 1 {
        return Some(format!("{}::{}", structs[same_file[0]].name, field));
    }
    Some(format!("{}::{}", file.stem(), field))
}
