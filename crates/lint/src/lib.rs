//! anno-lint — the workspace's own static-analysis pass.
//!
//! Generic lints (clippy, rustc) can't know that `Inner.write` must never
//! be taken after `Inner.queue`, that a reactor shard must not block, or
//! that the README's metrics table is a contract with the dashboards.
//! This crate encodes those repo-specific invariants as six rules over a
//! token-level source model and runs as a hard CI gate:
//!
//! ```text
//! cargo run -p anno-lint -- [--json] [path-prefix …]
//! ```
//!
//! Findings are deny-by-default. The only suppression mechanism is an
//! in-source pragma naming the rule and the reason:
//!
//! ```text
//! // anno-lint: allow(panic-path) -- index bounded by the len check above
//! ```
//!
//! See the rule modules under [`rules`] for what each rule means and the
//! README's "Static analysis" section for the operator view.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod model;
pub mod pragma;
pub mod rules;

use model::FileKind;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`lock-order`, …), or `pragma` for a malformed
    /// suppression (which no pragma can silence).
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Knobs for a lint run. [`LintOptions::default`] is what CI runs.
pub struct LintOptions {
    /// Thread-loop functions the `panic-path` rule walks from. A root
    /// that no longer exists is itself a finding.
    pub panic_roots: Vec<String>,
}

impl Default for LintOptions {
    fn default() -> LintOptions {
        LintOptions {
            panic_roots: [
                "writer_loop",
                "follower_loop",
                "shard_loop",
                "committer_loop",
            ]
            .map(String::from)
            .to_vec(),
        }
    }
}

/// Lint pre-loaded files. The unit the fixture tests drive.
pub fn lint_files(inputs: Vec<(PathBuf, String, FileKind)>, opts: &LintOptions) -> Vec<Finding> {
    let model = model::Model::build(inputs);
    let pragmas = pragma::PragmaIndex::parse(&model);
    let file_index: HashMap<String, usize> = model
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.to_string_lossy().into_owned(), i))
        .collect();
    let mut findings: Vec<Finding> = rules::run_all(&model, &pragmas, opts)
        .into_iter()
        .filter(|f| {
            // Line-scoped pragma suppression. Unknown paths (e.g. the
            // synthetic "(workspace)") are never suppressible.
            file_index
                .get(&f.path)
                .is_none_or(|&fi| !pragmas.allows(fi, f.line, f.rule))
        })
        .collect();
    findings.extend(pragmas.malformed);
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
    findings.dedup();
    findings
}

/// Walk a workspace root and lint everything first-party.
///
/// Loaded: `**/*.rs` outside `target/`, `vendor/`, and `.git/`, plus the
/// root `README.md` (as [`FileKind::Doc`]). Files under a `tests/`,
/// `benches/`, or `examples/` directory are [`FileKind::TestHarness`].
/// Paths in findings are workspace-relative.
pub fn lint_workspace(root: &Path, opts: &LintOptions) -> io::Result<Vec<Finding>> {
    let mut inputs: Vec<(PathBuf, String, FileKind)> = Vec::new();
    let readme = root.join("README.md");
    if readme.is_file() {
        inputs.push((
            PathBuf::from("README.md"),
            fs::read_to_string(&readme)?,
            FileKind::Doc,
        ));
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<io::Result<_>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                let kind = if rel.components().any(|c| {
                    matches!(
                        c.as_os_str().to_str(),
                        Some("tests" | "benches" | "examples")
                    )
                }) {
                    FileKind::TestHarness
                } else {
                    FileKind::Production
                };
                inputs.push((rel, fs::read_to_string(&path)?, kind));
            }
        }
    }
    inputs.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(lint_files(inputs, opts))
}

/// Human-readable report, one block per finding.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}",
            f.path, f.line, f.col, f.rule, f.message
        );
    }
    if findings.is_empty() {
        out.push_str("anno-lint: clean\n");
    } else {
        let _ = writeln!(
            out,
            "anno-lint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Machine-readable report: a JSON array of findings. Hand-rolled —
/// the workspace takes no serialization dependency.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message)
        );
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
