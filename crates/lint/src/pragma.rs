//! Inline suppression pragmas.
//!
//! Findings are deny-by-default; the only way to silence one is an
//! in-source pragma that names the rule **and states a reason**:
//!
//! ```text
//! // anno-lint: allow(panic-path) -- length checked two lines above
//! let first = batch[0];
//! ```
//!
//! A trailing pragma (code before it on the same line) applies to its own
//! line; a standalone pragma line applies to the next line that carries
//! code. A pragma with an unknown rule name or a missing reason is itself
//! a finding (rule `pragma`) — an unreadable suppression must never
//! silently suppress.
//!
//! The marker form `// anno-lint: protocol-dispatch` tags the protocol
//! verb match for the `protocol-drift` rule and takes no reason.

use std::collections::HashMap;

use crate::lexer::TokenKind;
use crate::model::{FileKind, Model};
use crate::rules::RULE_NAMES;
use crate::Finding;

/// Strip one layer of comment introducer (`//`, `///`, `//!`, `/* */`,
/// doc-block forms) and surrounding whitespace. Directives are only
/// recognized at the start of the stripped body — prose that merely
/// mentions `anno-lint:` mid-sentence (or inside a doc example, where a
/// second `//` layer remains after stripping) is not a directive.
pub fn comment_body(text: &str) -> &str {
    let body = if let Some(rest) = text.strip_prefix("//") {
        rest.strip_prefix('/')
            .or_else(|| rest.strip_prefix('!'))
            .unwrap_or(rest)
    } else if let Some(rest) = text.strip_prefix("/*") {
        let rest = rest
            .strip_prefix('*')
            .or_else(|| rest.strip_prefix('!'))
            .unwrap_or(rest);
        rest.strip_suffix("*/").unwrap_or(rest)
    } else {
        text
    };
    body.trim()
}

/// Where suppressions apply: (file index, 1-based line) → rule names.
pub struct PragmaIndex {
    allows: HashMap<(usize, u32), Vec<String>>,
    pub malformed: Vec<Finding>,
}

impl PragmaIndex {
    /// Is `rule` allowed at this file/line?
    pub fn allows(&self, file: usize, line: u32, rule: &str) -> bool {
        self.allows
            .get(&(file, line))
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    pub fn parse(model: &Model) -> PragmaIndex {
        let mut allows: HashMap<(usize, u32), Vec<String>> = HashMap::new();
        let mut malformed = Vec::new();
        for (fi, file) in model.files.iter().enumerate() {
            if file.kind == FileKind::Doc {
                continue;
            }
            for (ti, tok) in file.tokens.iter().enumerate() {
                if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                    continue;
                }
                let body = comment_body(tok.text(&file.text));
                let Some(directive) = body.strip_prefix("anno-lint:") else {
                    continue;
                };
                let directive = directive.trim();
                let (line, _) = file.line_col(tok.start);
                if directive == "protocol-dispatch" {
                    continue; // marker, consumed by the protocol-drift rule
                }
                match parse_allow(directive) {
                    Ok(rules) => {
                        let target = target_line(model, fi, ti, line);
                        allows.entry((fi, target)).or_default().extend(rules);
                    }
                    Err(why) => {
                        let (_, col) = file.line_col(tok.start);
                        malformed.push(Finding {
                            rule: "pragma",
                            path: file.path.to_string_lossy().into_owned(),
                            line,
                            col,
                            message: format!("malformed anno-lint pragma: {why}"),
                        });
                    }
                }
            }
        }
        PragmaIndex { allows, malformed }
    }
}

/// Parse `allow(rule, rule) -- reason`. Returns the rule list.
fn parse_allow(directive: &str) -> Result<Vec<String>, String> {
    let rest = directive
        .strip_prefix("allow")
        .ok_or_else(|| {
            format!("expected `allow(rule) -- reason` or `protocol-dispatch`, got {directive:?}")
        })?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(`".to_string())?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow() names no rules".to_string());
    }
    for r in &rules {
        if !RULE_NAMES.contains(&r.as_str()) {
            return Err(format!(
                "unknown rule {r:?} (known: {})",
                RULE_NAMES.join(", ")
            ));
        }
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err("missing `-- <reason>`: every suppression must say why".to_string());
    }
    Ok(rules)
}

/// The line a pragma applies to: its own if code precedes it on the
/// line, else the next line carrying a non-trivia token.
fn target_line(model: &Model, fi: usize, comment_ti: usize, comment_line: u32) -> u32 {
    let file = &model.files[fi];
    let comment = &file.tokens[comment_ti];
    let line_start = file.line_starts[(comment_line - 1) as usize];
    let code_before = file.tokens.iter().any(|t| {
        t.start >= line_start
            && t.end <= comment.start
            && !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
    });
    if code_before {
        return comment_line;
    }
    // Standalone: first significant token after the comment.
    for &si in &file.sig {
        let t = &file.tokens[si];
        if t.start > comment.end {
            return file.line_col(t.start).0;
        }
    }
    comment_line
}
