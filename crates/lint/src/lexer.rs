//! A hand-written, loss-free Rust lexer.
//!
//! The rules downstream never need full parsing — but they do need to
//! tell a `lock()` call in code from one in a doc comment or a string
//! literal, which means the lexer must get exactly the hard cases right:
//! raw strings (`r#"…"#`, any hash depth), nested block comments,
//! byte/raw-byte strings, and the `'a` lifetime vs `'a'` char-literal
//! ambiguity.
//!
//! Contract (pinned by the property suite in `tests/lexer_props.rs`):
//!
//! * **Never panics**, on any input — including invalid UTF-8 replaced
//!   lossily, unterminated literals, and stray quotes.
//! * **Spans tile the file**: token spans are contiguous, start at 0,
//!   end at `len`, and always lie on `char` boundaries.
//!
//! Unterminated constructs extend to end of file rather than erroring:
//! the lexer's job is classification, not validation.

/// What a token is; the analysis only needs coarse classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* … */`, nested arbitrarily deep; unterminated runs to EOF.
    BlockComment,
    /// Identifiers and keywords, including raw identifiers (`r#match`).
    Ident,
    /// `'a`, `'static`, `'_` — a quote introducing a name, not a char.
    Lifetime,
    /// `'x'`, `'\n'`, `'\u{1F600}'`, `b'x'`.
    CharLit,
    /// `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##` — all string forms.
    StrLit,
    /// Integer or float literals, suffixes included (`1_000u64`, `1e-3`).
    Number,
    /// A single punctuation character (`.`, `{`, `=`, …).
    Punct,
    /// Anything unclassifiable (e.g. a lone backslash); always 1 char.
    Unknown,
}

/// A classified span of the source. `start..end` are byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Tokenize `src` completely. Infallible: every byte of input lands in
/// exactly one token.
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(src.len() / 4 + 8);
    let mut pos = 0usize;
    while pos < src.len() {
        let start = pos;
        let (kind, end) = next_token(src, pos);
        // Defensive forward-progress guarantee: a lexer bug must degrade
        // to an Unknown token, never an infinite loop.
        let end = if end <= start {
            start + char_len(src, start)
        } else {
            end
        };
        tokens.push(Token { kind, start, end });
        pos = end;
    }
    tokens
}

/// Byte length of the char starting at `pos` (assumes a char boundary).
fn char_len(src: &str, pos: usize) -> usize {
    src[pos..].chars().next().map_or(1, char::len_utf8)
}

fn char_at(src: &str, pos: usize) -> Option<char> {
    src.get(pos..).and_then(|s| s.chars().next())
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Classify the token starting at `pos`; returns (kind, end-offset).
fn next_token(src: &str, pos: usize) -> (TokenKind, usize) {
    let c = match char_at(src, pos) {
        Some(c) => c,
        None => return (TokenKind::Unknown, pos + 1),
    };
    if c.is_whitespace() {
        return (
            TokenKind::Whitespace,
            scan_while(src, pos, char::is_whitespace),
        );
    }
    if c == '/' {
        match char_at(src, pos + 1) {
            Some('/') => return (TokenKind::LineComment, scan_line_comment(src, pos)),
            Some('*') => return (TokenKind::BlockComment, scan_block_comment(src, pos)),
            _ => return (TokenKind::Punct, pos + 1),
        }
    }
    // r / b / br prefixes: raw strings, byte strings, raw identifiers —
    // or just identifiers that start with those letters.
    if c == 'r' || c == 'b' {
        if let Some((kind, end)) = scan_prefixed_literal(src, pos) {
            return (kind, end);
        }
    }
    if is_ident_start(c) {
        return (TokenKind::Ident, scan_while(src, pos, is_ident_continue));
    }
    if c.is_ascii_digit() {
        return (TokenKind::Number, scan_number(src, pos));
    }
    if c == '"' {
        return (TokenKind::StrLit, scan_string(src, pos + 1));
    }
    if c == '\'' {
        return scan_quote(src, pos);
    }
    if c.is_ascii_punctuation() {
        return (TokenKind::Punct, pos + 1);
    }
    (TokenKind::Unknown, pos + char_len(src, pos))
}

fn scan_while(src: &str, pos: usize, pred: impl Fn(char) -> bool) -> usize {
    let mut end = pos;
    while let Some(c) = char_at(src, end) {
        if !pred(c) {
            break;
        }
        end += c.len_utf8();
    }
    end
}

fn scan_line_comment(src: &str, pos: usize) -> usize {
    scan_while(src, pos, |c| c != '\n')
}

fn scan_block_comment(src: &str, pos: usize) -> usize {
    // `pos` sits on `/*`. Nested comments bump the depth.
    let mut depth = 0usize;
    let mut i = pos;
    while i < src.len() {
        if src[i..].starts_with("/*") {
            depth += 1;
            i += 2;
        } else if src[i..].starts_with("*/") {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += char_len(src, i);
        }
    }
    src.len() // unterminated: the rest of the file is comment
}

/// `r"…"`, `r#…#"…"#…#`, `b"…"`, `b'…'`, `br#"…"#`, `r#ident`.
/// Returns None when the prefix turns out to be a plain identifier.
fn scan_prefixed_literal(src: &str, pos: usize) -> Option<(TokenKind, usize)> {
    let first = char_at(src, pos)?;
    let mut i = pos + 1;
    let mut raw = first == 'r';
    if first == 'b' {
        match char_at(src, i) {
            Some('\'') => return Some((TokenKind::CharLit, scan_char_body(src, i + 1))),
            Some('"') => return Some((TokenKind::StrLit, scan_string(src, i + 1))),
            Some('r') => {
                raw = true;
                i += 1;
            }
            _ => return None,
        }
    }
    if !raw {
        return None;
    }
    // `i` sits after `r` (or `br`): count hashes.
    let hash_start = i;
    while char_at(src, i) == Some('#') {
        i += 1;
    }
    let hashes = i - hash_start;
    match char_at(src, i) {
        Some('"') => Some((TokenKind::StrLit, scan_raw_string(src, i + 1, hashes))),
        // `r#ident` — a raw identifier (only one hash is valid; be lenient).
        Some(c) if hashes >= 1 && is_ident_start(c) && first == 'r' => {
            Some((TokenKind::Ident, scan_while(src, i, is_ident_continue)))
        }
        _ => None, // plain ident starting with r/b (`rb_tree`, `break`…)
    }
}

/// Body of a normal (escaped) string; `pos` is just past the opening quote.
fn scan_string(src: &str, pos: usize) -> usize {
    let mut i = pos;
    while i < src.len() {
        match char_at(src, i) {
            Some('\\') => {
                i += 1; // skip the backslash, then the escaped char
                if i < src.len() {
                    i += char_len(src, i);
                }
            }
            Some('"') => return i + 1,
            Some(c) => i += c.len_utf8(),
            None => break,
        }
    }
    src.len()
}

/// Body of a raw string; `pos` is just past the opening quote, `hashes`
/// is the delimiter depth. Ends at `"###…` with the same hash count.
fn scan_raw_string(src: &str, pos: usize, hashes: usize) -> usize {
    let mut i = pos;
    while i < src.len() {
        if char_at(src, i) == Some('"') {
            let close_end = i + 1 + hashes;
            if src
                .get(i + 1..close_end)
                .is_some_and(|tail| tail.bytes().all(|b| b == b'#'))
            {
                return close_end;
            }
        }
        i += char_len(src, i);
    }
    src.len()
}

/// A `'`: lifetime or char literal. `pos` sits on the quote.
fn scan_quote(src: &str, pos: usize) -> (TokenKind, usize) {
    let after = pos + 1;
    match char_at(src, after) {
        // `'\n'`, `'\u{…}'`: escapes are unambiguously char literals.
        Some('\\') => (TokenKind::CharLit, scan_char_body(src, after)),
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char, `'a` (no closing quote after the ident
            // run) is a lifetime. `'_` is a lifetime too.
            let ident_end = scan_while(src, after, is_ident_continue);
            if char_at(src, ident_end) == Some('\'') {
                (TokenKind::CharLit, ident_end + 1)
            } else {
                (TokenKind::Lifetime, ident_end)
            }
        }
        // `'('`, `'1'`, `'''`…: a single char then a closing quote.
        Some(c) => {
            let content_end = after + c.len_utf8();
            if char_at(src, content_end) == Some('\'') {
                (TokenKind::CharLit, content_end + 1)
            } else {
                // Stray quote: classify just the quote and re-lex the rest.
                (TokenKind::Unknown, after)
            }
        }
        None => (TokenKind::Unknown, after),
    }
}

/// Char-literal body starting just past the opening quote (possibly at a
/// backslash). Consumes through the closing quote; bounded by line end so
/// a stray quote cannot swallow the file.
fn scan_char_body(src: &str, pos: usize) -> usize {
    let mut i = pos;
    let mut escaped = false;
    while i < src.len() {
        let c = match char_at(src, i) {
            Some(c) => c,
            None => break,
        };
        if escaped {
            escaped = false;
            i += c.len_utf8();
            continue;
        }
        match c {
            '\\' => {
                escaped = true;
                i += 1;
            }
            '\'' => return i + 1,
            '\n' => return i, // unterminated on this line: stop before it
            _ => i += c.len_utf8(),
        }
    }
    src.len()
}

/// Integer/float literal. Deliberately loose (suffixes and malformed
/// exponents just extend the token); the rules never interpret numbers.
fn scan_number(src: &str, pos: usize) -> usize {
    let mut i = scan_while(src, pos, is_ident_continue);
    // A fractional part: `1.25`, but not `1..4` (range) or `1.max(2)`
    // (method call on a literal).
    if char_at(src, i) == Some('.') {
        if let Some(c) = char_at(src, i + 1) {
            if c.is_ascii_digit() {
                i = scan_while(src, i + 1, is_ident_continue);
            }
        }
    }
    // Exponent sign: `1e-3`, `2.5E+10` (the `e` was consumed above).
    if src[pos..i].ends_with(['e', 'E'])
        && matches!(char_at(src, i), Some('+') | Some('-'))
        && char_at(src, i + 1).is_some_and(|c| c.is_ascii_digit())
    {
        i = scan_while(src, i + 1, is_ident_continue);
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::Whitespace))
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn tiles_simple_source() {
        let src = "fn main() { let x = 1; }";
        let toks = lex(src);
        assert_eq!(toks.first().unwrap().start, 0);
        assert_eq!(toks.last().unwrap().end, src.len());
        for w in toks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn raw_strings_at_any_hash_depth() {
        let src = r####"let s = r#"quote " inside"#; let t = r##"deep "# close"##;"####;
        let k = kinds(src);
        let strs: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokenKind::StrLit)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("quote \" inside"));
        assert!(strs[1].contains("deep \"# close"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let k = kinds(src);
        assert_eq!(k[0], (TokenKind::Ident, "a"));
        assert_eq!(k[1].0, TokenKind::BlockComment);
        assert_eq!(k[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let u = '\\u{1F600}'; }";
        let k = kinds(src);
        let lifetimes: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        let chars: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokenKind::CharLit)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(chars, vec!["'a'", "'\\n'", "'\\u{1F600}'"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r###"let a = b"bytes"; let b = br#"raw "bytes""#; let c = b'x';"###;
        let k = kinds(src);
        assert_eq!(
            k.iter()
                .filter(|(kind, _)| *kind == TokenKind::StrLit)
                .count(),
            2
        );
        assert!(k.contains(&(TokenKind::CharLit, "b'x'")));
    }

    #[test]
    fn code_inside_strings_and_comments_is_not_code() {
        let src = r#"// self.queue.lock()
let s = "self.write.lock()"; /* self.durability.lock() */"#;
        let idents: Vec<&str> = kinds(src)
            .into_iter()
            .filter(|(kind, _)| *kind == TokenKind::Ident)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn unterminated_forms_run_to_eof_without_panicking() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed /* nested",
            "'",
            "b\"open",
            "let x = 'a",
        ] {
            let toks = lex(src);
            assert_eq!(toks.last().unwrap().end, src.len(), "input: {src:?}");
        }
    }
}
