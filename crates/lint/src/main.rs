//! CLI for anno-lint. `cargo run -p anno-lint -- [--json] [path-prefix …]`
//!
//! Exit status: 0 when clean, 1 when any finding survives (CI gates on
//! this), 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use anno_lint::{lint_workspace, render_human, render_json, LintOptions};

fn main() -> ExitCode {
    let mut json = false;
    let mut prefixes: Vec<String> = Vec::new();
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: anno-lint [--json] [path-prefix ...]");
                println!(
                    "Lints the workspace; with path prefixes, reports only findings under them."
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("anno-lint: unknown flag {flag:?} (try --help)");
                return ExitCode::from(2);
            }
            path => prefixes.push(
                path.trim_start_matches("./")
                    .trim_end_matches('/')
                    .to_string(),
            ),
        }
    }

    let Some(root) = workspace_root() else {
        eprintln!(
            "anno-lint: no workspace root ([workspace] in Cargo.toml) above the current directory"
        );
        return ExitCode::from(2);
    };

    let findings = match lint_workspace(&root, &LintOptions::default()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("anno-lint: {e}");
            return ExitCode::from(2);
        }
    };
    // The whole workspace is always analyzed (rules are cross-file);
    // prefixes only narrow what gets *reported*.
    let findings: Vec<_> = if prefixes.is_empty() {
        findings
    } else {
        findings
            .into_iter()
            .filter(|f| {
                prefixes.iter().any(|p| {
                    f.path == *p
                        || f.path.starts_with(&format!("{p}/"))
                        || f.path.starts_with(p.as_str())
                })
            })
            .collect()
    };

    print!(
        "{}",
        if json {
            render_json(&findings)
        } else {
            render_human(&findings)
        }
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Nearest ancestor (of the current directory) whose `Cargo.toml`
/// declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
