//! Per-rule fixture tests: each rule gets a known-good snippet (zero
//! findings) and a seeded-violation snippet (the expected finding, and
//! nothing surprising alongside it). Fixtures drive [`anno_lint::lint_files`]
//! directly, so no filesystem layout is involved — paths are whatever the
//! rule keys on (`reactor.rs` stem, `src/lib.rs` suffix, `README.md`).

use std::path::PathBuf;

use anno_lint::model::FileKind;
use anno_lint::{lint_files, Finding, LintOptions};

/// Run the full engine over inline files with an explicit panic-root set.
fn run(files: &[(&str, &str, FileKind)], roots: &[&str]) -> Vec<Finding> {
    lint_files(
        files
            .iter()
            .map(|&(p, s, k)| (PathBuf::from(p), s.to_string(), k))
            .collect(),
        &LintOptions {
            panic_roots: roots.iter().map(|r| r.to_string()).collect(),
        },
    )
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- lock-order

const LOCKS_PRELUDE: &str = r#"
use std::sync::Mutex;
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
"#;

#[test]
fn lock_order_consistent_order_is_clean() {
    let src = format!(
        "{LOCKS_PRELUDE}
impl S {{
    pub fn first(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
    pub fn second(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
}}
"
    );
    let findings = run(
        &[("crates/fix/src/locks.rs", &src, FileKind::Production)],
        &[],
    );
    assert!(
        findings.is_empty(),
        "consistent A→B order must be clean: {findings:?}"
    );
}

#[test]
fn lock_order_seeded_cycle_is_reported() {
    let src = format!(
        "{LOCKS_PRELUDE}
impl S {{
    pub fn ab(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
    pub fn ba(&self) {{
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }}
}}
"
    );
    let findings = run(
        &[("crates/fix/src/locks.rs", &src, FileKind::Production)],
        &[],
    );
    assert_eq!(rules_of(&findings), ["lock-order"], "{findings:?}");
    assert!(
        findings[0].message.contains("cycle"),
        "expected a cycle report: {}",
        findings[0].message
    );
    assert!(findings[0].message.contains("S::a") && findings[0].message.contains("S::b"));
}

#[test]
fn lock_order_interprocedural_cycle_is_reported() {
    // Neither function takes two locks itself; the cycle only exists
    // through the call graph (hold A, call something that takes B; and
    // the mirror image).
    let src = format!(
        "{LOCKS_PRELUDE}
impl S {{
    pub fn hold_a_then_call(&self) {{
        let ga = self.a.lock().unwrap();
        self.take_b();
        drop(ga);
    }}
    fn take_b(&self) {{
        let _gb = self.b.lock().unwrap();
    }}
    pub fn hold_b_then_call(&self) {{
        let gb = self.b.lock().unwrap();
        self.take_a();
        drop(gb);
    }}
    fn take_a(&self) {{
        let _ga = self.a.lock().unwrap();
    }}
}}
"
    );
    let findings = run(
        &[("crates/fix/src/locks.rs", &src, FileKind::Production)],
        &[],
    );
    assert_eq!(rules_of(&findings), ["lock-order"], "{findings:?}");
    assert!(
        findings[0].message.contains("via"),
        "interprocedural edges should be attributed to the call site: {}",
        findings[0].message
    );
}

#[test]
fn lock_order_reentrancy_is_reported() {
    let src = format!(
        "{LOCKS_PRELUDE}
impl S {{
    pub fn twice(&self) {{
        let g1 = self.a.lock().unwrap();
        let g2 = self.a.lock().unwrap();
        drop(g2);
        drop(g1);
    }}
}}
"
    );
    let findings = run(
        &[("crates/fix/src/locks.rs", &src, FileKind::Production)],
        &[],
    );
    assert_eq!(rules_of(&findings), ["lock-order"], "{findings:?}");
    assert!(
        findings[0].message.contains("already held"),
        "expected a reentrancy report: {}",
        findings[0].message
    );
}

#[test]
fn lock_order_drop_releases_the_guard() {
    // Same two locks, but the first is dropped before the second is
    // taken — no edge, no cycle, even with the orders reversed.
    let src = format!(
        "{LOCKS_PRELUDE}
impl S {{
    pub fn ab(&self) {{
        let ga = self.a.lock().unwrap();
        drop(ga);
        let gb = self.b.lock().unwrap();
        drop(gb);
    }}
    pub fn ba(&self) {{
        let gb = self.b.lock().unwrap();
        drop(gb);
        let ga = self.a.lock().unwrap();
        drop(ga);
    }}
}}
"
    );
    let findings = run(
        &[("crates/fix/src/locks.rs", &src, FileKind::Production)],
        &[],
    );
    assert!(
        findings.is_empty(),
        "dropped guards must not create edges: {findings:?}"
    );
}

#[test]
fn lock_order_pragma_suppresses_the_site() {
    let src = format!(
        "{LOCKS_PRELUDE}
impl S {{
    pub fn ab(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
    pub fn ba(&self) {{
        let gb = self.b.lock().unwrap();
        // anno-lint: allow(lock-order) -- fixture: provably different instances
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }}
}}
"
    );
    let findings = run(
        &[("crates/fix/src/locks.rs", &src, FileKind::Production)],
        &[],
    );
    assert!(
        findings.is_empty(),
        "pragma'd acquisition site must drop its edges: {findings:?}"
    );
}

// ---------------------------------------------------------------- panic-path

#[test]
fn panic_path_unwrap_reachable_from_root_is_reported() {
    let src = r#"
pub fn writer_loop() {
    step();
}
fn step() {
    let v: Vec<u32> = Vec::new();
    let _ = v.first().unwrap();
}
"#;
    let findings = run(
        &[("crates/fix/src/writer.rs", src, FileKind::Production)],
        &["writer_loop"],
    );
    assert_eq!(rules_of(&findings), ["panic-path"], "{findings:?}");
    assert!(
        findings[0].message.contains("`step`") && findings[0].message.contains("writer_loop"),
        "finding should name the function and the root: {}",
        findings[0].message
    );
}

#[test]
fn panic_path_unreachable_panic_is_not_reported() {
    // Same panic, but nothing on the thread-loop call graph reaches it.
    let src = r#"
pub fn writer_loop() {}
fn offline_tool() {
    let v: Vec<u32> = Vec::new();
    let _ = v.first().unwrap();
}
"#;
    let findings = run(
        &[("crates/fix/src/writer.rs", src, FileKind::Production)],
        &["writer_loop"],
    );
    assert!(
        findings.is_empty(),
        "unreachable panics are out of scope: {findings:?}"
    );
}

#[test]
fn panic_path_poison_propagation_is_exempt() {
    let src = r#"
use std::sync::Mutex;
pub fn writer_loop(m: &Mutex<u32>) {
    let g = m.lock().unwrap();
    drop(g);
}
"#;
    let findings = run(
        &[("crates/fix/src/writer.rs", src, FileKind::Production)],
        &["writer_loop"],
    );
    assert!(
        findings.is_empty(),
        "lock().unwrap() is the poison idiom: {findings:?}"
    );
}

#[test]
fn panic_path_indexing_under_lock_is_reported() {
    let src = r#"
use std::sync::Mutex;
pub struct S { q: Mutex<Vec<u32>> }
pub fn writer_loop(s: &S, xs: &[u32]) {
    let g = s.q.lock().unwrap();
    let _ = xs[0];
    drop(g);
}
"#;
    let findings = run(
        &[("crates/fix/src/writer.rs", src, FileKind::Production)],
        &["writer_loop"],
    );
    assert_eq!(rules_of(&findings), ["panic-path"], "{findings:?}");
    assert!(
        findings[0].message.contains("indexing") && findings[0].message.contains("S::q"),
        "expected an indexing-under-lock report naming the lock: {}",
        findings[0].message
    );
}

#[test]
fn panic_path_missing_root_is_a_finding() {
    let src = "pub fn something_else() {}\n";
    let findings = run(
        &[("crates/fix/src/writer.rs", src, FileKind::Production)],
        &["writer_loop"],
    );
    assert_eq!(rules_of(&findings), ["panic-path"], "{findings:?}");
    assert_eq!(findings[0].path, "(workspace)");
    assert!(findings[0].message.contains("`writer_loop` not found"));
}

#[test]
fn panic_path_trailing_pragma_suppresses_its_line() {
    let src = r#"
pub fn writer_loop() {
    let v = vec![1u32];
    let _ = v.first().unwrap(); // anno-lint: allow(panic-path) -- fixture: v is non-empty by construction
}
"#;
    let findings = run(
        &[("crates/fix/src/writer.rs", src, FileKind::Production)],
        &["writer_loop"],
    );
    assert!(
        findings.is_empty(),
        "trailing pragma must suppress its own line: {findings:?}"
    );
}

#[test]
fn panic_path_standalone_pragma_suppresses_next_line() {
    let src = r#"
pub fn writer_loop() {
    let v = vec![1u32];
    // anno-lint: allow(panic-path) -- fixture: v is non-empty by construction
    let _ = v.first().unwrap();
}
"#;
    let findings = run(
        &[("crates/fix/src/writer.rs", src, FileKind::Production)],
        &["writer_loop"],
    );
    assert!(
        findings.is_empty(),
        "standalone pragma must suppress the next code line: {findings:?}"
    );
}

// ------------------------------------------------------------------- pragma

#[test]
fn pragma_without_reason_is_malformed_and_does_not_suppress() {
    let src = r#"
pub fn writer_loop() {
    let v = vec![1u32];
    // anno-lint: allow(panic-path)
    let _ = v.first().unwrap();
}
"#;
    let findings = run(
        &[("crates/fix/src/writer.rs", src, FileKind::Production)],
        &["writer_loop"],
    );
    let mut rules = rules_of(&findings);
    rules.sort_unstable();
    assert_eq!(rules, ["panic-path", "pragma"], "{findings:?}");
}

#[test]
fn pragma_with_unknown_rule_is_malformed() {
    let src = r#"
pub fn anything() {
    // anno-lint: allow(no-such-rule) -- reason present but rule bogus
    let _x = 1u32;
}
"#;
    let findings = run(
        &[("crates/fix/src/code.rs", src, FileKind::Production)],
        &[],
    );
    assert_eq!(rules_of(&findings), ["pragma"], "{findings:?}");
    assert!(findings[0].message.contains("unknown rule"));
}

// --------------------------------------------------------- blocking-in-reactor

#[test]
fn blocking_in_reactor_try_lock_is_clean() {
    let src = r#"
use std::sync::Mutex;
pub struct S { q: Mutex<u32> }
pub fn poll(s: &S) {
    if let Ok(g) = s.q.try_lock() {
        drop(g);
    }
}
"#;
    let findings = run(
        &[("crates/fix/src/reactor.rs", src, FileKind::Production)],
        &[],
    );
    assert!(findings.is_empty(), "try_lock never blocks: {findings:?}");
}

#[test]
fn blocking_in_reactor_sleep_and_lock_are_reported() {
    let src = r#"
use std::sync::Mutex;
pub struct S { q: Mutex<u32> }
pub fn poll(s: &S) {
    std::thread::sleep(std::time::Duration::from_millis(1));
    let g = s.q.lock().unwrap();
    drop(g);
}
"#;
    let findings = run(
        &[("crates/fix/src/reactor.rs", src, FileKind::Production)],
        &[],
    );
    assert_eq!(
        rules_of(&findings),
        ["blocking-in-reactor", "blocking-in-reactor"],
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("`sleep(…)`")));
    assert!(findings.iter().any(|f| f.message.contains(".lock()")));
}

#[test]
fn blocking_in_reactor_only_applies_to_reactor_files() {
    // The same sleep in a non-reactor file is fine (it is some worker
    // thread's business).
    let src = r#"
pub fn poll() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
"#;
    let findings = run(
        &[("crates/fix/src/worker.rs", src, FileKind::Production)],
        &[],
    );
    assert!(
        findings.is_empty(),
        "rule is scoped to the reactor: {findings:?}"
    );
}

#[test]
fn blocking_in_reactor_flags_blocking_enqueue() {
    let src = r#"
pub fn poll(q: &annomine_like::Queue) {
    q.enqueue(7u32);
}
"#;
    let findings = run(
        &[("crates/fix/src/reactor.rs", src, FileKind::Production)],
        &[],
    );
    assert_eq!(rules_of(&findings), ["blocking-in-reactor"], "{findings:?}");
    assert!(findings[0].message.contains("try_enqueue"));
}

// ------------------------------------------------------------- metric-drift

const METRIC_SRC: &str = r#"
pub fn emit() -> &'static str {
    "anno_fix_total"
}
"#;

#[test]
fn metric_drift_matching_table_is_clean() {
    let readme =
        "| Family | Type | Meaning |\n|---|---|---|\n| `anno_fix_total` | counter | fixture |\n";
    let findings = run(
        &[
            ("crates/fix/src/expose.rs", METRIC_SRC, FileKind::Production),
            ("README.md", readme, FileKind::Doc),
        ],
        &[],
    );
    assert!(
        findings.is_empty(),
        "documented family must be clean: {findings:?}"
    );
}

#[test]
fn metric_drift_undocumented_family_is_reported() {
    let readme = "| Family | Type | Meaning |\n|---|---|---|\n";
    let findings = run(
        &[
            ("crates/fix/src/expose.rs", METRIC_SRC, FileKind::Production),
            ("README.md", readme, FileKind::Doc),
        ],
        &[],
    );
    assert_eq!(rules_of(&findings), ["metric-drift"], "{findings:?}");
    assert!(findings[0].message.contains("`anno_fix_total`"));
    assert!(findings[0].message.contains("no row"));
}

#[test]
fn metric_drift_stale_row_is_reported() {
    let readme =
        "| `anno_fix_total` | counter | fixture |\n| `anno_gone_total` | counter | removed |\n";
    let findings = run(
        &[
            ("crates/fix/src/expose.rs", METRIC_SRC, FileKind::Production),
            ("README.md", readme, FileKind::Doc),
        ],
        &[],
    );
    assert_eq!(rules_of(&findings), ["metric-drift"], "{findings:?}");
    assert!(findings[0].message.contains("`anno_gone_total`"));
    assert!(findings[0].message.contains("stale"));
}

#[test]
fn metric_drift_duplicate_row_is_reported() {
    let readme =
        "| `anno_fix_total` | counter | fixture |\n| `anno_fix_total` | counter | again |\n";
    let findings = run(
        &[
            ("crates/fix/src/expose.rs", METRIC_SRC, FileKind::Production),
            ("README.md", readme, FileKind::Doc),
        ],
        &[],
    );
    assert_eq!(rules_of(&findings), ["metric-drift"], "{findings:?}");
    assert!(findings[0].message.contains("exactly one row"));
}

#[test]
fn metric_drift_ignores_families_in_test_harness_code() {
    // A fixture string in a test file is not an emitted family.
    let readme = "| `anno_fix_total` | counter | fixture |\n";
    let findings = run(
        &[
            ("crates/fix/src/expose.rs", METRIC_SRC, FileKind::Production),
            (
                "crates/fix/tests/other.rs",
                "pub fn t() -> &'static str { \"anno_testonly_total\" }\n",
                FileKind::TestHarness,
            ),
            ("README.md", readme, FileKind::Doc),
        ],
        &[],
    );
    assert!(
        findings.is_empty(),
        "test-harness literals are not emissions: {findings:?}"
    );
}

// ----------------------------------------------------------- protocol-drift

const DISPATCH_SRC: &str = r#"
pub fn dispatch(cmd: &str) -> u32 {
    // anno-lint: protocol-dispatch
    match cmd {
        "ping" => 1,
        "get" | "put" => 2,
        _ => 0,
    }
}
"#;

const PROTO_README_FULL: &str = "## Protocol reference\n\n\
| Command | Meaning |\n|---|---|\n\
| `ping` | liveness |\n| `get KEY` | read |\n| `put KEY VALUE` | write |\n";

#[test]
fn protocol_drift_matching_table_is_clean() {
    let findings = run(
        &[
            (
                "crates/fix/src/protocol.rs",
                DISPATCH_SRC,
                FileKind::Production,
            ),
            ("README.md", PROTO_README_FULL, FileKind::Doc),
        ],
        &[],
    );
    assert!(findings.is_empty(), "verbs and rows agree: {findings:?}");
}

#[test]
fn protocol_drift_undocumented_verb_is_reported() {
    let readme = "## Protocol reference\n\n| Command | Meaning |\n|---|---|\n\
| `ping` | liveness |\n| `get KEY` | read |\n";
    let findings = run(
        &[
            (
                "crates/fix/src/protocol.rs",
                DISPATCH_SRC,
                FileKind::Production,
            ),
            ("README.md", readme, FileKind::Doc),
        ],
        &[],
    );
    assert_eq!(rules_of(&findings), ["protocol-drift"], "{findings:?}");
    assert!(findings[0].message.contains("`put`"));
    assert!(
        findings[0].path.ends_with("protocol.rs"),
        "points at the parse site"
    );
}

#[test]
fn protocol_drift_stale_doc_row_is_reported() {
    let readme = "## Protocol reference\n\n| Command | Meaning |\n|---|---|\n\
| `ping` | liveness |\n| `get KEY` | read |\n| `put KEY VALUE` | write |\n\
| `quit` | close |\n";
    let findings = run(
        &[
            (
                "crates/fix/src/protocol.rs",
                DISPATCH_SRC,
                FileKind::Production,
            ),
            ("README.md", readme, FileKind::Doc),
        ],
        &[],
    );
    assert_eq!(rules_of(&findings), ["protocol-drift"], "{findings:?}");
    assert!(findings[0].message.contains("`quit`"));
    assert!(
        findings[0].path.ends_with("README.md"),
        "points at the stale row"
    );
}

#[test]
fn protocol_drift_without_marker_is_a_no_op() {
    // An unmarked match is just a match — the rule checks nothing.
    let src = DISPATCH_SRC.replace("// anno-lint: protocol-dispatch\n", "");
    let findings = run(
        &[
            ("crates/fix/src/protocol.rs", &src, FileKind::Production),
            ("README.md", PROTO_README_FULL, FileKind::Doc),
        ],
        &[],
    );
    assert!(findings.is_empty(), "no marker, no contract: {findings:?}");
}

// ------------------------------------------------------------ forbid-unsafe

#[test]
fn forbid_unsafe_missing_attribute_is_reported() {
    let findings = run(
        &[(
            "crates/fix/src/lib.rs",
            "pub fn f() {}\n",
            FileKind::Production,
        )],
        &[],
    );
    assert_eq!(rules_of(&findings), ["forbid-unsafe"], "{findings:?}");
    assert_eq!((findings[0].line, findings[0].col), (1, 1));
}

#[test]
fn forbid_unsafe_present_attribute_is_clean() {
    let findings = run(
        &[(
            "crates/fix/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            FileKind::Production,
        )],
        &[],
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn forbid_unsafe_only_applies_to_crate_roots() {
    let findings = run(
        &[(
            "crates/fix/src/module.rs",
            "pub fn f() {}\n",
            FileKind::Production,
        )],
        &[],
    );
    assert!(
        findings.is_empty(),
        "non-root modules are not checked: {findings:?}"
    );
}

// ---------------------------------------------------------------- rendering

#[test]
fn render_human_reports_clean_and_counts() {
    assert_eq!(anno_lint::render_human(&[]), "anno-lint: clean\n");
    let f = Finding {
        rule: "panic-path",
        path: "a.rs".to_string(),
        line: 3,
        col: 7,
        message: "boom".to_string(),
    };
    let out = anno_lint::render_human(&[f]);
    assert!(out.contains("a.rs:3:7: [panic-path] boom"));
    assert!(out.contains("anno-lint: 1 finding\n"));
}

#[test]
fn render_json_escapes_and_lists() {
    assert_eq!(anno_lint::render_json(&[]), "[]\n");
    let f = Finding {
        rule: "metric-drift",
        path: "R\"E.md".to_string(),
        line: 1,
        col: 1,
        message: "tab\there".to_string(),
    };
    let out = anno_lint::render_json(&[f]);
    assert!(out.contains("\"path\":\"R\\\"E.md\""), "{out}");
    assert!(out.contains("tab\\there"), "{out}");
}
