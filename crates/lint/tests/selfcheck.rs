//! The shipped workspace must be lint-clean: every invariant anno-lint
//! encodes holds for the code that ships it. This is the same check CI
//! runs via `cargo run -p anno-lint`, exercised as a unit so `cargo test`
//! alone catches drift.

use std::path::Path;

use anno_lint::{lint_workspace, render_human, LintOptions};

#[test]
fn shipped_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let findings =
        lint_workspace(&root, &LintOptions::default()).expect("workspace sources must be readable");
    assert!(
        findings.is_empty(),
        "the shipped workspace must be anno-lint clean:\n{}",
        render_human(&findings)
    );
}
