//! Property suite for the lexer's two contracts: it never panics, and
//! its token spans tile the input exactly (contiguous, starting at 0,
//! ending at `len`, every boundary a `char` boundary).
//!
//! Two generators: arbitrary byte soup (decoded lossily — the lexer must
//! survive anything a corrupt file can contain), and a fragment mixer
//! that splices the constructs the lexer exists to get right (raw
//! strings at several hash depths, nested block comments, lifetimes next
//! to char literals, byte strings, unterminated everything).

use anno_lint::lexer::{lex, Token};
use proptest::prelude::*;

fn assert_tiles(src: &str, tokens: &[Token]) {
    if src.is_empty() {
        assert!(tokens.is_empty(), "empty input must produce no tokens");
        return;
    }
    assert_eq!(tokens[0].start, 0, "first token must start at 0");
    assert_eq!(
        tokens.last().unwrap().end,
        src.len(),
        "last token must end at len"
    );
    for w in tokens.windows(2) {
        assert_eq!(
            w[0].end, w[1].start,
            "tokens must be contiguous: {:?} then {:?}",
            w[0], w[1]
        );
    }
    for t in tokens {
        assert!(t.start < t.end, "empty token span: {t:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span not on char boundaries: {t:?}"
        );
    }
}

/// The constructs worth colliding with each other.
const FRAGMENTS: &[&str] = &[
    "fn main() {}",
    "r\"raw\"",
    "r#\"hash \" raw\"#",
    "r##\"deeper \"# still\"##",
    "br#\"raw bytes\"#",
    "b\"bytes\\xff\"",
    "b'x'",
    "'a'",
    "'\\n'",
    "'\\u{1F600}'",
    "'lifetime",
    "&'a str",
    "<'a>",
    "/* nested /* deeper */ still */",
    "/* unterminated",
    "// line comment",
    "/// doc with \"string\"",
    "\"string with // not a comment\"",
    "\"escape \\\" quote\"",
    "\"unterminated",
    "r#\"unterminated raw",
    "1_000u64",
    "1e-3",
    "0xFFusize",
    "r#match",
    "ident",
    "::",
    "=>",
    "\\",
    "'",
    "\"",
    "#",
    "\n",
    " ",
    "\t",
    "é λ 中",
]; // anno-lint is its own test subject here

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Contract holds on arbitrary (lossily decoded) byte soup.
    #[test]
    fn lex_never_panics_and_tiles_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        assert_tiles(&src, &tokens);
    }

    /// Contract holds on adversarial mixes of the hard constructs.
    #[test]
    fn lex_tiles_fragment_mixes(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..64),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = lex(&src);
        assert_tiles(&src, &tokens);
    }
}

/// Re-lexing a token's own text from offset 0 must classify bytes, not
/// crash, even when the token was produced mid-context (regression net
/// for the forward-progress guarantee).
#[test]
fn relex_token_texts() {
    let src: String = FRAGMENTS.concat();
    for t in lex(&src) {
        let _ = lex(t.text(&src));
    }
}
