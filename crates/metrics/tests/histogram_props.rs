//! Property suite for the lock-free histogram: concurrent recording
//! must lose nothing, and quantile estimates must stay within one
//! bucket of an exact sorted-vector oracle.
//!
//! Case counts respect the `PROPTEST_CASES` cap, so CI can bound the
//! suite (see `.github/workflows/ci.yml`).

use std::sync::Arc;

use anno_metrics::hist::{bucket_bound, bucket_index};
use anno_metrics::Histogram;
use proptest::prelude::*;

/// Exact order statistic matching `HistogramSnapshot::quantile`'s rank
/// definition (`ceil(q * n)`-th smallest, 1-based).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn concurrent_recording_preserves_count_and_quantiles(
        values in proptest::collection::vec(0u64..u64::MAX, 16..400),
    ) {
        // Split the workload across 4 recorder threads.
        let hist = Arc::new(Histogram::new());
        let chunk = values.len().div_ceil(4);
        std::thread::scope(|scope| {
            for part in values.chunks(chunk) {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for &v in part {
                        hist.record(v);
                    }
                });
            }
        });

        let snap = hist.snapshot();
        // Nothing lost, nothing invented.
        prop_assert_eq!(snap.count(), values.len() as u64);
        let exact_sum: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(snap.sum(), exact_sum);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let estimate = snap.quantile(q);
            let exact = oracle_quantile(&sorted, q);
            let delta = bucket_index(estimate).abs_diff(bucket_index(exact));
            prop_assert!(
                delta <= 1,
                "q={} estimate {} (bucket {}) vs oracle {} (bucket {})",
                q, estimate, bucket_index(estimate), exact, bucket_index(exact)
            );
        }
        // max() is the recorded maximum's bucket bound.
        prop_assert_eq!(snap.max(), bucket_bound(bucket_index(*sorted.last().unwrap())));
    }

    #[test]
    fn single_thread_quantiles_within_one_bucket(
        values in proptest::collection::vec(0u64..1_000_000_000u64, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let estimate = hist.snapshot().quantile(q);
        let exact = oracle_quantile(&sorted, q);
        prop_assert!(
            bucket_index(estimate).abs_diff(bucket_index(exact)) <= 1,
            "q={} estimate {} vs oracle {}", q, estimate, exact
        );
    }
}
