//! A fixed-capacity time-series ring.
//!
//! A sampler thread calls [`Ring::push`] every N ms with a snapshot of
//! whatever counters it watches; the ring keeps the most recent
//! `capacity` samples, each stamped with milliseconds since the ring
//! was created. Readers pull a recent window and turn two lifetime
//! counter readings into a rate — the only way to answer "drains per
//! second *right now*" from monotone sums.
//!
//! The ring is mutex-guarded rather than lock-free: it is touched a few
//! times per second by one sampler and rarely by scrapes, never by the
//! serving hot paths.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// A bounded ring of timestamped samples. See the module docs.
#[derive(Debug)]
pub struct Ring<T> {
    epoch: Instant,
    capacity: usize,
    samples: Mutex<VecDeque<(u64, T)>>,
}

impl<T: Clone> Ring<T> {
    /// An empty ring holding at most `capacity` samples (min 2 — a
    /// single sample can never yield a rate).
    pub fn new(capacity: usize) -> Ring<T> {
        let capacity = capacity.max(2);
        Ring {
            epoch: Instant::now(),
            capacity,
            samples: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Milliseconds since the ring was created.
    pub fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Append a sample stamped with the current time, evicting the
    /// oldest once full. Returns the sample's timestamp.
    pub fn push(&self, value: T) -> u64 {
        let at = self.now_ms();
        let mut samples = self.samples.lock().expect("ring lock");
        if samples.len() == self.capacity {
            samples.pop_front();
        }
        samples.push_back((at, value));
        at
    }

    /// Samples from the trailing `window_ms`, oldest first.
    pub fn window(&self, window_ms: u64) -> Vec<(u64, T)> {
        let cutoff = self.now_ms().saturating_sub(window_ms);
        let samples = self.samples.lock().expect("ring lock");
        samples
            .iter()
            .filter(|(at, _)| *at >= cutoff)
            .cloned()
            .collect()
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<(u64, T)> {
        self.samples.lock().expect("ring lock").back().cloned()
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.lock().expect("ring lock").len()
    }

    /// `true` when no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-second rate of a monotone counter over `(timestamp ms, value)`
/// samples: `Δvalue / Δt` between the first and last sample. `None`
/// when fewer than two samples span the window, when no time elapsed
/// between them, or when the counter moved backwards (a restart).
pub fn windowed_rate(samples: &[(u64, u64)]) -> Option<f64> {
    let (t0, v0) = *samples.first()?;
    let (t1, v1) = *samples.last()?;
    if t1 <= t0 || v1 < v0 {
        return None;
    }
    Some((v1 - v0) as f64 * 1000.0 / (t1 - t0) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let ring = Ring::new(3);
        for i in 0..5u64 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        let values: Vec<u64> = ring.window(u64::MAX).into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, vec![2, 3, 4]);
        assert_eq!(ring.last().unwrap().1, 4);
    }

    #[test]
    fn rates_from_counter_samples() {
        // 100 counts over 2 seconds = 50/s, regardless of sample count.
        let samples = vec![(0u64, 0u64), (1000, 30), (2000, 100)];
        let rate = windowed_rate(&samples).unwrap();
        assert!((rate - 50.0).abs() < 1e-9, "rate={rate}");
        assert_eq!(windowed_rate(&[]), None);
        assert_eq!(windowed_rate(&[(0, 5)]), None);
        assert_eq!(windowed_rate(&[(0, 5), (0, 9)]), None, "zero elapsed");
        assert_eq!(windowed_rate(&[(0, 5), (10, 2)]), None, "counter reset");
    }

    #[test]
    fn window_filters_by_timestamp() {
        let ring: Ring<u64> = Ring::new(16);
        ring.push(1);
        // All pushes happen "now", so a zero-width window still sees
        // them and a huge window certainly does.
        assert_eq!(ring.window(u64::MAX).len(), 1);
        assert!(!ring.is_empty());
    }
}
