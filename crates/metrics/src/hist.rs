//! Lock-free log-linear histograms.
//!
//! Values are binned into a fixed array of [`BUCKETS`] relaxed
//! `AtomicU64` counters. Bucket widths are log-linear: values below 16
//! get a bucket each (exact), and every power of two above that is split
//! into 8 linear sub-buckets, so any recorded value lands in a bucket
//! whose bounds are within 12.5 % of it — tight enough for latency
//! quantiles, small enough (≈ 4 KiB per histogram) to embed one per
//! metric per dataset.
//!
//! [`Histogram::record`] is two relaxed `fetch_add`s and a handful of
//! bit operations: no locks, no allocation, no compare-and-swap loops —
//! safe to leave on in the hottest paths. All derived statistics
//! (count, quantiles, max, mean) are computed from a frozen
//! [`HistogramSnapshot`], never from the live array.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power of two splits into `1 << SUB`
/// linear buckets (8), bounding relative error at `1 / (1 << SUB)`.
const SUB: u32 = 3;

/// Values below this are binned exactly (one bucket per value).
const LINEAR_MAX: u64 = 1 << (SUB + 1);

/// Total bucket count; index [`BUCKETS`]` - 1` holds values up to
/// `u64::MAX`.
pub const BUCKETS: usize = (((63 - SUB) as usize + 1) << SUB) + (1 << SUB);

/// The bucket index `v` lands in. Monotone in `v` and total: every
/// `u64` maps to a valid index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let sub = (v >> (msb - u64::from(SUB))) & ((1 << SUB) - 1);
        (((msb - u64::from(SUB)) << SUB) + (1 << SUB) + sub) as usize
    }
}

/// Inclusive upper bound of bucket `idx` — the value quantile queries
/// report for a hit in that bucket.
#[inline]
pub fn bucket_bound(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else {
        let group = (idx >> SUB) as u64;
        let sub = (idx & ((1 << SUB) - 1)) as u64;
        let msb = group + u64::from(SUB) - 1;
        let width = 1u64 << (msb - u64::from(SUB));
        (1u64 << msb) + sub * width + (width - 1)
    }
}

/// A lock-free log-linear histogram. See the module docs.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates its bucket array once).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Two relaxed `fetch_add`s; never blocks.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Freeze the current contents. Concurrent recorders may land
    /// between bucket loads; each observation is still counted exactly
    /// once by some snapshot (the counters are monotone).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`]; all statistics read from here.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total observations recorded at snapshot time.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest observation,
    /// so the estimate is within one bucket (≤ 12.5 %) of the exact
    /// order statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(idx);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_bound)
            .unwrap_or(0)
    }

    /// `(inclusive upper bound, cumulative count)` for every non-empty
    /// bucket, in increasing bound order — the shape Prometheus
    /// histogram exposition (`le` series) wants.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_bound(idx), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_total_monotone_and_tight() {
        let mut prev = 0usize;
        let probes: Vec<u64> = (0..LINEAR_MAX)
            .chain((4..64).flat_map(|p: u32| {
                let base = 1u64 << p;
                [
                    base - 1,
                    base,
                    base + 1,
                    base + (base >> 2),
                    base + (base >> 1),
                ]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for v in sorted {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
            let upper = bucket_bound(idx);
            assert!(upper >= v, "bound {upper} below value {v}");
            // Log-linear tightness: the bound overshoots by < 12.5 %.
            assert!(
                upper - v <= v / (1 << SUB) + 1,
                "bucket too wide at {v}: bound {upper}"
            );
        }
    }

    #[test]
    fn bounds_partition_the_domain() {
        // Each bucket's bound + 1 must land in the next bucket: no gaps,
        // no overlaps.
        for idx in 0..BUCKETS - 1 {
            let upper = bucket_bound(idx);
            assert_eq!(bucket_index(upper), idx);
            assert_eq!(bucket_index(upper + 1), idx + 1);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_track_known_distributions() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        let p50 = s.quantile(0.5);
        assert!((450..=580).contains(&p50), "p50={p50}");
        let p99 = s.quantile(0.99);
        assert!((980..=1120).contains(&p99), "p99={p99}");
        assert!(s.max() >= 1000 && s.max() <= 1024 + 128);
        assert!(s.quantile(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
        assert!(s.cumulative().is_empty());
    }

    #[test]
    fn cumulative_is_increasing_and_totals() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 100, 100_000, u64::MAX] {
            h.record(v);
        }
        let cum = h.snapshot().cumulative();
        assert_eq!(cum.last().unwrap().1, 6);
        for pair in cum.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
    }
}
