//! Point-in-time level gauges.

use std::sync::atomic::{AtomicU64, Ordering};

/// A non-negative level (queue depth, segment count, backlog bytes).
/// All operations are relaxed atomics: gauges are telemetry, not
/// synchronization. `sub` saturates at zero so a racy decrement can
/// never wrap to an absurd reading.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Lower the level by `v`, saturating at zero.
    #[inline]
    pub fn sub(&self, v: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(v))
            });
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_sub_saturate() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(10);
        g.add(5);
        assert_eq!(g.get(), 15);
        g.sub(20);
        assert_eq!(g.get(), 0, "sub saturates instead of wrapping");
    }
}
