//! `anno-metrics`: observability primitives for the serving layer.
//!
//! The design follows the agent/viewer split of fleet telemetry systems:
//! recording must be cheap enough to leave on in every hot path (a
//! handful of relaxed atomic adds, no locks, no allocation), while the
//! *reading* side — snapshots, quantiles, windowed rates, exposition
//! text — pays its costs on the rare scrape, never on the recording
//! thread. Four primitives cover the serving layer's needs:
//!
//! * [`Histogram`] — a fixed array of relaxed `AtomicU64` buckets with
//!   log-linear widths: exact below 16, then 8 sub-buckets per power of
//!   two (≤ 12.5 % relative error) up to `u64::MAX`. Recording is two
//!   relaxed `fetch_add`s; p50/p90/p99/max come from a frozen
//!   [`HistogramSnapshot`].
//! * [`Gauge`] — a point-in-time level (queue depth, segment count).
//! * [`Ring`] — a fixed-capacity time-series ring a sampler thread
//!   pushes counter snapshots into every N ms, turning lifetime sums
//!   into windowed rates ("drains/s over the last minute").
//! * [`EventJournal`] — a bounded journal of rare maintenance events
//!   (auto-checkpoint fired, recovery truncated a tail, …), each with a
//!   monotonic sequence number and coarse wall-clock timestamp.
//!
//! The crate is dependency-free and knows nothing about datasets, WALs,
//! or wire formats; the serving layer composes these into its metric
//! registry and renders them for exposition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gauge;
pub mod hist;
pub mod journal;
pub mod ring;

pub use gauge::Gauge;
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use journal::{Event, EventJournal};
pub use ring::{windowed_rate, Ring};
