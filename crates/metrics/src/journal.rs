//! A bounded journal of rare maintenance events.
//!
//! Counters say *how much*; the journal says *what happened, in what
//! order*: an auto-checkpoint fired, recovery truncated a damaged tail,
//! a dataset fenced itself. Entries carry a monotonic sequence number
//! (gap-free, so a reader can tell eviction from quiescence) and a
//! coarse wall-clock timestamp. The buffer is bounded: old entries fall
//! off, the journal never grows, and recording never blocks on a
//! reader for long (one short mutex).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic 1-based sequence number within this journal.
    pub seq: u64,
    /// Milliseconds since the Unix epoch at record time (coarse: the
    /// journal is for operators, not for ordering — `seq` orders).
    pub unix_ms: u64,
    /// Stable machine-readable kind, e.g. `auto_checkpoint`.
    pub kind: &'static str,
    /// Human-readable details (`key=value` pairs by convention).
    pub detail: String,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{} t={} {} {}",
            self.seq, self.unix_ms, self.kind, self.detail
        )
    }
}

/// A bounded, append-only event journal. See the module docs.
#[derive(Debug)]
pub struct EventJournal {
    seq: AtomicU64,
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl EventJournal {
    /// An empty journal retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            seq: AtomicU64::new(0),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Append an event; evicts the oldest when full. Returns the new
    /// event's sequence number.
    pub fn record(&self, kind: &'static str, detail: String) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let event = Event {
            seq,
            unix_ms,
            kind,
            detail,
        };
        let mut events = self.events.lock().expect("journal lock");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
        seq
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let events = self.events.lock().expect("journal lock");
        events
            .iter()
            .skip(events.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Events ever recorded (≥ events currently retained).
    pub fn total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_gap_free_seqs() {
        let j = EventJournal::new(8);
        for i in 0..5 {
            j.record("tick", format!("i={i}"));
        }
        let events = j.recent(16);
        assert_eq!(events.len(), 5);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(events[0].detail, "i=0");
        assert_eq!(j.total(), 5);
    }

    #[test]
    fn bounded_capacity_evicts_oldest() {
        let j = EventJournal::new(3);
        for i in 0..10 {
            j.record("tick", format!("i={i}"));
        }
        let events = j.recent(10);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 8, "oldest retained is #8");
        assert_eq!(j.total(), 10, "total counts evicted events too");
        assert_eq!(j.recent(1).len(), 1);
        assert_eq!(j.recent(1)[0].seq, 10);
    }

    #[test]
    fn display_is_line_oriented() {
        let j = EventJournal::new(2);
        j.record("auto_checkpoint", "position=1/64".to_string());
        let line = j.recent(1)[0].to_string();
        assert!(line.starts_with("#1 t="));
        assert!(line.ends_with("auto_checkpoint position=1/64"));
    }
}
