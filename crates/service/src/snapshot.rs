//! Immutable published state: what every read-path query runs against.
//!
//! A [`RuleSnapshot`] is built by the writer after each drained batch and
//! swapped in atomically behind an `Arc`. Readers clone the `Arc` and keep
//! querying their copy for as long as they like — a long-running scan is
//! never invalidated and never blocks (or is blocked by) the writer. The
//! relation rides along as a *persistent clone*: `AnnotatedRelation` is a
//! segment store, so [`RuleSnapshot::build`] freezes the database with
//! O(#segments) pointer copies, the snapshot physically shares every
//! segment with the live relation at publish time, and later writes
//! copy-on-write only the segments they touch. Publishing costs
//! delta-scale work, never O(|D|).

use anno_mine::{
    AssociationRule, IncrementalConfig, IncrementalMiner, MaintenanceStats, RuleSet, Thresholds,
};
use anno_store::fxhash::{FxHashMap, FxHashSet};
use anno_store::{AnnotatedRelation, Item, TupleId};

/// One published, immutable view of a dataset's rules and data.
#[derive(Debug, Clone)]
pub struct RuleSnapshot {
    dataset: String,
    epoch: u64,
    relation: AnnotatedRelation,
    relation_epoch: u64,
    rules: RuleSet,
    candidates: RuleSet,
    stats: MaintenanceStats,
    config: IncrementalConfig,
    /// LHS item → indices into `rules.rules()`, the recommendation index:
    /// a rule can only fire for a tuple/item-set that holds one of its
    /// antecedent items, so queries probe only these buckets.
    by_lhs_item: FxHashMap<Item, Vec<u32>>,
}

impl RuleSnapshot {
    /// Freeze the miner's current state into a snapshot. The relation is
    /// captured by persistent clone — O(#segments + #annotations) pointer
    /// copies that share all storage with `relation` — so building a
    /// snapshot never deep-copies the database.
    pub fn build(
        dataset: &str,
        epoch: u64,
        relation: &AnnotatedRelation,
        miner: &IncrementalMiner,
    ) -> RuleSnapshot {
        let rules = miner.rules().clone();
        let mut by_lhs_item: FxHashMap<Item, Vec<u32>> = FxHashMap::default();
        for (idx, rule) in rules.rules().iter().enumerate() {
            for &item in rule.lhs.items() {
                by_lhs_item
                    .entry(item)
                    .or_default()
                    .push(u32::try_from(idx).expect("rule count fits u32"));
            }
        }
        let relation_epoch = relation.epoch();
        RuleSnapshot {
            dataset: dataset.to_string(),
            epoch,
            relation: relation.clone(),
            relation_epoch,
            rules,
            candidates: miner.candidate_rules().clone(),
            stats: miner.stats(),
            config: miner.config(),
            by_lhs_item,
        }
    }

    /// The dataset this snapshot belongs to.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// Monotonic publish sequence number (per dataset).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The relation's mutation epoch when this snapshot was published.
    pub fn relation_epoch(&self) -> u64 {
        self.relation_epoch
    }

    /// The frozen relation (tuples, vocabulary, index).
    pub fn relation(&self) -> &AnnotatedRelation {
        &self.relation
    }

    /// Number of live tuples at publish time.
    pub fn db_size(&self) -> usize {
        self.relation.len()
    }

    /// The valid rules (support ≥ α, confidence ≥ β).
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The near-threshold candidate rules retained by the miner.
    pub fn candidates(&self) -> &RuleSet {
        &self.candidates
    }

    /// Maintenance counters at publish time.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// The full mining configuration the publishing miner ran with
    /// (thresholds, retention, counting strategy) — the parameters a
    /// client needs to interpret [`RuleSnapshot::candidates`].
    pub fn config(&self) -> IncrementalConfig {
        self.config
    }

    /// The mining thresholds (α, β).
    pub fn thresholds(&self) -> Thresholds {
        self.config.thresholds
    }

    /// Rules whose antecedent contains **all** of `items`. `items` need
    /// not be sorted. An empty slice returns every rule.
    pub fn rules_with_antecedent(&self, items: &[Item]) -> Vec<&AssociationRule> {
        let all = self.rules.rules();
        let Some((&probe, rest)) = items.split_first() else {
            return all.iter().collect();
        };
        // Probe the smallest bucket, then verify the full containment.
        let mut bucket_item = probe;
        let mut bucket_len = self.bucket_len(probe);
        for &item in rest {
            let len = self.bucket_len(item);
            if len < bucket_len {
                bucket_item = item;
                bucket_len = len;
            }
        }
        let Some(bucket) = self.by_lhs_item.get(&bucket_item) else {
            return Vec::new();
        };
        bucket
            .iter()
            .map(|&idx| &all[idx as usize])
            .filter(|r| items.iter().all(|&i| r.lhs.contains(i)))
            .collect()
    }

    fn bucket_len(&self, item: Item) -> usize {
        self.by_lhs_item.get(&item).map_or(0, Vec::len)
    }

    /// Missing-annotation recommendations for an explicit item set (§5,
    /// served entirely from the snapshot): every rule whose antecedent is
    /// contained in `present` and whose consequent is absent fires; per
    /// consequent the highest-confidence rule wins; results are ordered by
    /// descending confidence, then support. `present` need not be sorted.
    pub fn recommend_for_items(&self, present: &[Item], k: usize) -> Vec<(Item, &AssociationRule)> {
        let mut sorted: Vec<Item> = present.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let all = self.rules.rules();
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut best: FxHashMap<Item, &AssociationRule> = FxHashMap::default();
        for &item in &sorted {
            let Some(bucket) = self.by_lhs_item.get(&item) else {
                continue;
            };
            for &idx in bucket {
                if !seen.insert(idx) {
                    continue;
                }
                let rule = &all[idx as usize];
                if sorted.binary_search(&rule.rhs).is_ok() || !rule.lhs.is_subset_of(&sorted) {
                    continue;
                }
                let replace = best.get(&rule.rhs).is_none_or(|cur| {
                    (rule.confidence(), rule.support()) > (cur.confidence(), cur.support())
                });
                if replace {
                    best.insert(rule.rhs, rule);
                }
            }
        }
        let mut out: Vec<(Item, &AssociationRule)> = best.into_iter().collect();
        out.sort_by(|(ann_a, a), (ann_b, b)| {
            b.confidence()
                .total_cmp(&a.confidence())
                .then(b.support().total_cmp(&a.support()))
                .then(ann_a.cmp(ann_b))
        });
        out.truncate(k);
        out
    }

    /// Missing-annotation recommendations for a live tuple, served from
    /// the snapshot's frozen relation. `None` if the tuple is dead or out
    /// of range *in this snapshot*.
    pub fn recommend_for_tuple(
        &self,
        tid: TupleId,
        k: usize,
    ) -> Option<Vec<(Item, &AssociationRule)>> {
        let tuple = self.relation.tuple(tid)?;
        Some(self.recommend_for_items(tuple.items(), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_mine::IncrementalConfig;
    use anno_store::parse_dataset;

    fn snapshot() -> RuleSnapshot {
        let rel = parse_dataset(
            "db",
            "28 85 Annot_1\n28 85 Annot_1\n28 85 Annot_1\n28 85\n17 99\n",
        )
        .unwrap();
        let miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds: Thresholds::new(0.4, 0.7),
                ..Default::default()
            },
        );
        RuleSnapshot::build("db", 1, &rel, &miner)
    }

    #[test]
    fn build_shares_storage_with_the_live_relation() {
        let rel = parse_dataset("db", "28 85 Annot_1\n17 99\n").unwrap();
        let miner = IncrementalMiner::mine_initial(&rel, IncrementalConfig::default());
        let snap = RuleSnapshot::build("db", 1, &rel, &miner);
        assert_eq!(
            snap.relation().shared_segments_with(&rel),
            rel.segments().len(),
            "publish must not deep-copy the tuple store"
        );
    }

    #[test]
    fn antecedent_filter_probes_the_index() {
        let snap = snapshot();
        assert_eq!(snap.rules().len(), 3);
        let v28 = snap
            .relation()
            .vocab()
            .get(anno_store::ItemKind::Data, "28")
            .unwrap();
        let v85 = snap
            .relation()
            .vocab()
            .get(anno_store::ItemKind::Data, "85")
            .unwrap();
        assert_eq!(snap.rules_with_antecedent(&[]).len(), 3);
        assert_eq!(snap.rules_with_antecedent(&[v28]).len(), 2); // {28}⇒A, {28,85}⇒A
        assert_eq!(snap.rules_with_antecedent(&[v28, v85]).len(), 1);
        let bogus = Item::data(9_999);
        assert!(snap.rules_with_antecedent(&[bogus]).is_empty());
    }

    #[test]
    fn recommendations_come_from_snapshot_only() {
        let snap = snapshot();
        // Tuple 3 = {28, 85} without the annotation: all three rules fire,
        // deduped to one recommendation for Annot_1.
        let recs = snap.recommend_for_tuple(TupleId(3), 5).unwrap();
        assert_eq!(recs.len(), 1);
        let ann = snap
            .relation()
            .vocab()
            .get(anno_store::ItemKind::Annotation, "Annot_1")
            .unwrap();
        assert_eq!(recs[0].0, ann);
        // The winning rule is the most confident one: {28,85} ⇒ A at 3/4.
        assert!(recs[0].1.confidence() >= 0.74);
        // Fully annotated tuple: nothing to recommend.
        assert!(snap.recommend_for_tuple(TupleId(0), 5).unwrap().is_empty());
        // k = 0 truncates everything.
        assert!(snap.recommend_for_tuple(TupleId(3), 0).unwrap().is_empty());
        // Out-of-range tuple.
        assert!(snap.recommend_for_tuple(TupleId(99), 5).is_none());
    }
}
