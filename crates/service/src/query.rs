//! Structured read-path queries over a [`RuleSnapshot`].
//!
//! The protocol layer parses commands into these types; library users can
//! build them directly. Everything here borrows from a snapshot the caller
//! already holds, so queries are pure functions — no locks, no I/O.

use anno_mine::{AssociationRule, RuleKind};
use anno_store::Item;

use crate::snapshot::RuleSnapshot;

/// Sort orders for rule listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleOrder {
    /// Descending confidence (ties: support). The default.
    #[default]
    Confidence,
    /// Descending support (ties: confidence).
    Support,
    /// Descending lift.
    Lift,
}

impl RuleOrder {
    fn key(self, rule: &AssociationRule) -> (f64, f64) {
        match self {
            RuleOrder::Confidence => (rule.confidence(), rule.support()),
            RuleOrder::Support => (rule.support(), rule.confidence()),
            RuleOrder::Lift => (rule.lift(), rule.confidence()),
        }
    }
}

/// A rule-listing query: conjunctive filters plus ordering/limit.
#[derive(Debug, Clone, Default)]
pub struct RuleFilter {
    /// Keep rules whose antecedent contains **all** of these items.
    pub antecedent: Vec<Item>,
    /// Keep rules of this shape only.
    pub kind: Option<RuleKind>,
    /// Keep rules at or above this confidence.
    pub min_confidence: Option<f64>,
    /// Sort order for the listing.
    pub order: RuleOrder,
    /// Keep only the first `top` rules after sorting.
    pub top: Option<usize>,
}

impl RuleFilter {
    /// Run the filter against a snapshot.
    pub fn apply<'s>(&self, snapshot: &'s RuleSnapshot) -> Vec<&'s AssociationRule> {
        let mut out: Vec<&AssociationRule> = snapshot
            .rules_with_antecedent(&self.antecedent)
            .into_iter()
            .filter(|r| self.kind.is_none_or(|k| r.kind() == k))
            .filter(|r| self.min_confidence.is_none_or(|c| r.confidence() >= c))
            .collect();
        out.sort_by(|a, b| {
            let (ka, kb) = (self.order.key(a), self.order.key(b));
            kb.0.total_cmp(&ka.0)
                .then(kb.1.total_cmp(&ka.1))
                .then_with(|| (a.lhs.items(), a.rhs).cmp(&(b.lhs.items(), b.rhs)))
        });
        if let Some(top) = self.top {
            out.truncate(top);
        }
        out
    }
}

/// One scored recommendation, self-contained for rendering/serialising.
#[derive(Debug, Clone, PartialEq)]
pub struct TopRecommendation {
    /// The recommended (missing) annotation.
    pub annotation: Item,
    /// Its display name.
    pub name: String,
    /// Confidence of the winning supporting rule.
    pub confidence: f64,
    /// Support of the winning supporting rule.
    pub support: f64,
    /// The winning rule, rendered for the curator (per paper Fig. 17 the
    /// justification ships with the recommendation).
    pub rule: String,
}

/// Top-k recommendations for an explicit item set, fully rendered.
pub fn top_k_for_items(
    snapshot: &RuleSnapshot,
    present: &[Item],
    k: usize,
) -> Vec<TopRecommendation> {
    render(snapshot, snapshot.recommend_for_items(present, k))
}

/// Top-k recommendations for a live tuple; `None` if the tuple is dead in
/// this snapshot.
pub fn top_k_for_tuple(
    snapshot: &RuleSnapshot,
    tid: anno_store::TupleId,
    k: usize,
) -> Option<Vec<TopRecommendation>> {
    Some(render(snapshot, snapshot.recommend_for_tuple(tid, k)?))
}

fn render(snapshot: &RuleSnapshot, picks: Vec<(Item, &AssociationRule)>) -> Vec<TopRecommendation> {
    let vocab = snapshot.relation().vocab();
    picks
        .into_iter()
        .map(|(annotation, rule)| TopRecommendation {
            annotation,
            name: vocab.name(annotation).to_string(),
            confidence: rule.confidence(),
            support: rule.support(),
            rule: rule.render(vocab),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anno_mine::{IncrementalConfig, IncrementalMiner, Thresholds};
    use anno_store::parse_dataset;

    fn snap() -> RuleSnapshot {
        let rel = parse_dataset(
            "db",
            "28 85 Annot_1\n28 85 Annot_1\n28 85 Annot_1\n28 85\n17 99 Annot_2\n17 99 Annot_2\n",
        )
        .unwrap();
        let miner = IncrementalMiner::mine_initial(
            &rel,
            IncrementalConfig {
                thresholds: Thresholds::new(0.3, 0.7),
                ..Default::default()
            },
        );
        RuleSnapshot::build("db", 1, &rel, &miner)
    }

    #[test]
    fn filter_combines_antecedent_kind_confidence_and_top() {
        let snap = snap();
        let all = RuleFilter::default().apply(&snap);
        assert!(all.len() >= 6, "got {}", all.len());
        // Confidence ordering is non-increasing.
        assert!(all
            .windows(2)
            .all(|w| w[0].confidence() >= w[1].confidence()));

        let v17 = snap
            .relation()
            .vocab()
            .get(anno_store::ItemKind::Data, "17")
            .unwrap();
        let only_17 = RuleFilter {
            antecedent: vec![v17],
            ..Default::default()
        };
        let hits = only_17.apply(&snap);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|r| r.lhs.contains(v17)));

        let d2a = RuleFilter {
            kind: Some(RuleKind::DataToAnnotation),
            min_confidence: Some(0.99),
            top: Some(2),
            ..Default::default()
        };
        let strict = d2a.apply(&snap);
        assert!(strict.len() <= 2);
        assert!(strict.iter().all(|r| r.confidence() >= 0.99));
    }

    #[test]
    fn rendered_recommendations_carry_their_rule() {
        let snap = snap();
        let recs = top_k_for_tuple(&snap, anno_store::TupleId(3), 3).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "Annot_1");
        assert!(recs[0].rule.contains("conf="), "{}", recs[0].rule);
    }
}
