//! Prometheus text exposition: every dataset's counters, gauges, and
//! histograms plus the service-level committer stats, rendered in the
//! `text/plain; version=0.0.4` format any Prometheus-compatible scraper
//! ingests.
//!
//! Rendering is **metric-major**: one `# HELP`/`# TYPE` header per
//! family, then one series line per dataset (`{dataset="…"}`), which is
//! the shape the format requires (a family's series must be contiguous).
//! Histograms render their nonzero cumulative buckets plus the `+Inf`
//! bound, `_sum`, and `_count`; the derived quantiles (p50/p90/p99/max)
//! are exposed as separate gauge families with a `quantile` label rather
//! than mixed into the histogram family, which would be invalid
//! exposition. Everything is computed from frozen
//! [`DatasetObs`](crate::metrics::DatasetObs) snapshots, so one scrape
//! line never mixes two instants of the same dataset.

use std::fmt::Write as _;
use std::sync::Arc;

use anno_metrics::HistogramSnapshot;

use crate::dataset::Dataset;
use crate::metrics::DatasetObs;
use crate::service::Service;

/// One dataset's frozen contribution to a scrape.
struct Row {
    label: String,
    obs: DatasetObs,
    live_tuples: u64,
    events_total: u64,
    windowed: Option<crate::service::WindowedRates>,
}

/// Render the whole service in Prometheus text exposition format.
pub fn render_prometheus(service: &Service) -> String {
    let datasets: Vec<Arc<Dataset>> = service.all();
    let rows: Vec<Row> = datasets
        .iter()
        .map(|ds| Row {
            label: escape_label(ds.name()),
            obs: ds.observability(),
            live_tuples: ds.live_tuples() as u64,
            events_total: ds.events_total(),
            windowed: service.windowed(ds.name()),
        })
        .collect();

    let mut out = String::with_capacity(16 * 1024);

    type Get = fn(&Row) -> u64;
    let counters: &[(&str, &str, Get)] = &[
        (
            "anno_rule_queries_total",
            "Rule-listing/filtering queries served.",
            |r| r.obs.report.rule_queries,
        ),
        (
            "anno_recommend_queries_total",
            "Recommendation queries served.",
            |r| r.obs.report.recommend_queries,
        ),
        (
            "anno_snapshot_reads_total",
            "Snapshot pointer clones handed to readers.",
            |r| r.obs.report.snapshot_reads,
        ),
        (
            "anno_ops_enqueued_total",
            "Ops accepted by the write queue.",
            |r| r.obs.report.ops_enqueued,
        ),
        (
            "anno_updates_enqueued_total",
            "Individual updates accepted by the write queue.",
            |r| r.obs.report.updates_enqueued,
        ),
        (
            "anno_drains_total",
            "Coalesced write passes the writer completed.",
            |r| r.obs.report.drains,
        ),
        (
            "anno_batches_applied_total",
            "Maintenance batches actually applied.",
            |r| r.obs.report.batches_applied,
        ),
        (
            "anno_ops_coalesced_total",
            "Ops folded into a neighbouring batch.",
            |r| r.obs.report.ops_coalesced,
        ),
        (
            "anno_snapshots_published_total",
            "Snapshots atomically published.",
            |r| r.obs.report.snapshots_published,
        ),
        ("anno_flushes_total", "Flush barriers awaited.", |r| {
            r.obs.report.flushes
        }),
        (
            "anno_checkpoints_total",
            "Durability checkpoints taken.",
            |r| r.obs.report.checkpoints,
        ),
        (
            "anno_auto_checkpoints_total",
            "Checkpoints the maintenance policy fired by itself.",
            |r| r.obs.report.auto_checkpoints,
        ),
        (
            "anno_wal_fsyncs_total",
            "fsyncs issued by the dataset's own log.",
            |r| r.obs.report.wal_fsyncs,
        ),
        (
            "anno_discover_queries_total",
            "Discovery (correlation top-k) queries served.",
            |r| r.obs.report.discover_queries,
        ),
        (
            "anno_name_cache_hits_total",
            "Protocol name resolutions answered by the lookaside cache.",
            |r| r.obs.report.name_cache_hits,
        ),
        (
            "anno_name_cache_misses_total",
            "Protocol name resolutions that fell through to the vocabulary.",
            |r| r.obs.report.name_cache_misses,
        ),
        (
            "anno_admission_shed_ops_total",
            "Writes refused with the Overloaded soft error by admission control.",
            |r| r.obs.report.admission_shed,
        ),
        (
            "anno_admission_backpressure_stalls_total",
            "Connection read suspensions the sharded front end applied.",
            |r| r.obs.report.backpressure_stalls,
        ),
        (
            "anno_events_total",
            "Maintenance journal events recorded.",
            |r| r.events_total,
        ),
    ];
    for (name, help, get) in counters {
        family(&mut out, name, help, "counter");
        for row in &rows {
            let _ = writeln!(out, "{name}{{dataset=\"{}\"}} {}", row.label, get(row));
        }
    }

    let gauges: &[(&str, &str, Get)] = &[
        (
            "anno_write_queue_depth",
            "Pending individual updates in the write queue.",
            |r| r.obs.queue_depth,
        ),
        (
            "anno_unacked_drains",
            "Applied-but-unacked pipelined drains.",
            |r| r.obs.unacked_drains,
        ),
        (
            "anno_store_segments",
            "Relation segments as of the last drain.",
            |r| r.obs.segments,
        ),
        (
            "anno_vocab_chunks",
            "Vocabulary chunks as of the last drain.",
            |r| r.obs.vocab_chunks,
        ),
        (
            "anno_wal_since_checkpoint_bytes",
            "Log bytes accumulated since the last checkpoint.",
            |r| r.obs.wal_backlog_bytes,
        ),
        (
            "anno_live_tuples",
            "Live tuples as of the last drain.",
            |r| r.live_tuples,
        ),
        (
            "anno_replication_follower",
            "1 while the dataset is a read-only follower replica.",
            |r| u64::from(r.obs.follower),
        ),
        (
            "anno_replication_applied_seq",
            "Leader log segment the follower has applied up to.",
            |r| r.obs.repl_applied_seq,
        ),
        (
            "anno_replication_leader_seq",
            "Highest segment seen in the leader's log directory.",
            |r| r.obs.repl_leader_seq,
        ),
        (
            "anno_replication_bytes_behind",
            "On-disk leader log bytes not yet applied by the follower.",
            |r| r.obs.repl_bytes_behind,
        ),
        (
            "anno_replication_records_applied",
            "Shipped log records the follower has applied since attach.",
            |r| r.obs.repl_records_applied,
        ),
        (
            "anno_replication_restarts",
            "Checkpoint restarts the follower's tail cursor performed.",
            |r| r.obs.repl_restarts,
        ),
        (
            "anno_discover_pairs_tracked",
            "Annotation pairs the discovery index tracks.",
            |r| r.obs.discover_pairs_tracked,
        ),
        (
            "anno_discover_topk_cross",
            "Entries in the published cross-namespace discovery top-k.",
            |r| r.obs.discover_topk_cross,
        ),
        (
            "anno_discover_topk_within",
            "Entries in the published within-namespace discovery top-k.",
            |r| r.obs.discover_topk_within,
        ),
        (
            "anno_discover_last_update_ns",
            "Cost of the most recent incremental discovery refresh.",
            |r| r.obs.discover_last_update_ns,
        ),
    ];
    for (name, help, get) in gauges {
        family(&mut out, name, help, "gauge");
        for row in &rows {
            let _ = writeln!(out, "{name}{{dataset=\"{}\"}} {}", row.label, get(row));
        }
    }

    // Queue depth again, labelled by the tenant's QoS class, so
    // dashboards can tell interactive saturation from bulk saturation
    // without joining against the class gauge.
    family(
        &mut out,
        "anno_admission_queue_depth",
        "Pending individual updates, labelled by the tenant's QoS class.",
        "gauge",
    );
    for row in &rows {
        let class = if row.obs.qos_bulk {
            "bulk"
        } else {
            "interactive"
        };
        let _ = writeln!(
            out,
            "anno_admission_queue_depth{{dataset=\"{}\",class=\"{class}\"}} {}",
            row.label, row.obs.queue_depth
        );
    }
    family(
        &mut out,
        "anno_admission_bulk_class",
        "1 while the tenant's QoS class is bulk.",
        "gauge",
    );
    for row in &rows {
        let _ = writeln!(
            out,
            "anno_admission_bulk_class{{dataset=\"{}\"}} {}",
            row.label,
            u64::from(row.obs.qos_bulk)
        );
    }

    type GetHist = fn(&Row) -> &HistogramSnapshot;
    let hists: &[(&str, &str, GetHist)] = &[
        (
            "anno_query_latency_ns",
            "Rule + recommend query latency.",
            |r| &r.obs.query_latency,
        ),
        (
            "anno_drain_latency_ns",
            "Drain apply+publish latency.",
            |r| &r.obs.drain_latency,
        ),
        (
            "anno_drain_batch_updates",
            "Individual updates per drained batch.",
            |r| &r.obs.drain_batch,
        ),
        (
            "anno_fsync_latency_ns",
            "The dataset's own log fsync latency.",
            |r| &r.obs.fsync_latency,
        ),
        (
            "anno_checkpoint_encode_ns",
            "Checkpoint state-encode latency.",
            |r| &r.obs.checkpoint_encode,
        ),
        (
            "anno_discover_update_ns",
            "Incremental discovery-index refresh cost per drain.",
            |r| &r.obs.discover_update,
        ),
    ];
    for (name, help, get) in hists {
        family(&mut out, name, help, "histogram");
        for row in &rows {
            histogram_series(&mut out, name, &row.label, get(row));
        }
        let qname = format!("{name}_quantile");
        family(
            &mut out,
            &qname,
            "Derived quantiles of the histogram above.",
            "gauge",
        );
        for row in &rows {
            quantile_series(&mut out, &qname, &row.label, get(row));
        }
    }

    // Windowed rates from the time-series ring (0 until two samples of
    // the dataset land in the window).
    type GetRate = fn(&crate::service::WindowedRates) -> f64;
    let rates: &[(&str, &str, GetRate)] = &[
        (
            "anno_drains_per_sec",
            "Drains per second over the ring's window.",
            |w| w.drains_per_sec,
        ),
        (
            "anno_queries_per_sec",
            "Queries per second over the ring's window.",
            |w| w.queries_per_sec,
        ),
        (
            "anno_fsyncs_per_drain",
            "Own-log fsyncs per drain over the ring's window.",
            |w| w.fsyncs_per_drain,
        ),
    ];
    for (name, help, get) in rates {
        family(&mut out, name, help, "gauge");
        for row in &rows {
            let v = row.windowed.as_ref().map_or(0.0, get);
            let _ = writeln!(out, "{name}{{dataset=\"{}\"}} {v}", row.label);
        }
    }

    // Service-level: registry size, shared committer, its fsync latency,
    // the service journal, and service-wide windowed rates.
    family(&mut out, "anno_datasets", "Registered datasets.", "gauge");
    let _ = writeln!(out, "anno_datasets {}", rows.len());
    family(
        &mut out,
        "anno_service_events_total",
        "Service-level journal events recorded (group-commit windows).",
        "counter",
    );
    let _ = writeln!(out, "anno_service_events_total {}", service.events_total());
    if let Some(gc) = service.committer_stats() {
        let committer: &[(&str, &str, u64)] = &[
            (
                "anno_grouped_submitted_total",
                "Appends submitted to the shared group committer.",
                gc.submitted,
            ),
            (
                "anno_grouped_syncs_total",
                "fsyncs the shared committer issued.",
                gc.syncs,
            ),
            (
                "anno_grouped_windows_total",
                "Sync windows the shared committer closed.",
                gc.windows,
            ),
        ];
        for (name, help, value) in committer {
            family(&mut out, name, help, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
    }
    let fsync = service.fsync_latency();
    family(
        &mut out,
        "anno_service_fsync_latency_ns",
        "Shared group committer fsync latency.",
        "histogram",
    );
    histogram_lines(&mut out, "anno_service_fsync_latency_ns", "", &fsync);
    family(
        &mut out,
        "anno_service_fsync_latency_ns_quantile",
        "Derived quantiles of the histogram above.",
        "gauge",
    );
    quantile_lines(
        &mut out,
        "anno_service_fsync_latency_ns_quantile",
        "",
        &fsync,
    );
    if let Some(w) = service.service_windowed() {
        let windowed: &[(&str, &str, f64)] = &[
            (
                "anno_service_drains_per_sec",
                "Drains per second across all datasets.",
                w.drains_per_sec,
            ),
            (
                "anno_service_queries_per_sec",
                "Queries per second across all datasets.",
                w.queries_per_sec,
            ),
            (
                "anno_service_fsyncs_per_drain",
                "All fsyncs (committer + per-dataset) per drain.",
                w.fsyncs_per_drain,
            ),
        ];
        for (name, help, value) in windowed {
            family(&mut out, name, help, "gauge");
            let _ = writeln!(out, "{name} {value}");
        }
    }
    out
}

/// Write a family's `# HELP` / `# TYPE` header.
fn family(out: &mut String, name: &str, help: &str, typ: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {typ}");
}

/// One dataset's bucket/sum/count series of a histogram family.
fn histogram_series(out: &mut String, name: &str, label: &str, snap: &HistogramSnapshot) {
    histogram_lines(out, name, &format!("dataset=\"{label}\""), snap);
}

/// Histogram series lines with an arbitrary (possibly empty) label set.
/// Buckets are cumulative and only nonzero ones render — 496 mostly-empty
/// `le` lines per histogram would drown the scrape — with the mandatory
/// `+Inf` bound always present.
fn histogram_lines(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (bound, cumulative) in snap.cumulative() {
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        snap.count()
    );
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", snap.sum());
        let _ = writeln!(out, "{name}_count {}", snap.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", snap.sum());
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", snap.count());
    }
}

/// One dataset's p50/p90/p99/max gauge series.
fn quantile_series(out: &mut String, name: &str, label: &str, snap: &HistogramSnapshot) {
    quantile_lines(out, name, &format!("dataset=\"{label}\""), snap);
}

fn quantile_lines(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let quantiles = [
        ("p50", snap.quantile(0.50)),
        ("p90", snap.quantile(0.90)),
        ("p99", snap.quantile(0.99)),
        ("max", snap.max()),
    ];
    for (q, value) in quantiles {
        let _ = writeln!(out, "{name}{{{labels}{sep}quantile=\"{q}\"}} {value}");
    }
}

/// Escape a dataset name for use inside a label value (`\` and `"`;
/// protocol names are single tokens, but embedders can use anything).
fn escape_label(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::UpdateOp;
    use crate::service::ServiceConfig;

    #[test]
    fn scrape_renders_counters_gauges_histograms_and_rates() {
        let service = Service::new();
        let ds = service.create("db", ServiceConfig::default()).unwrap();
        ds.enqueue(UpdateOp::InsertRows(vec![
            "28 85 Annot_1".into(),
            "28 85 Annot_1".into(),
            "28 85".into(),
        ]))
        .unwrap();
        ds.mine().unwrap();
        // Two explicit samples bracket the traffic deterministically; the
        // sleep keeps their millisecond timestamps distinct so the window
        // has a nonzero timespan to rate over.
        service.sample_now();
        ds.raw_metrics().record_rule_query(1_000);
        ds.raw_metrics().record_rule_query(2_000);
        std::thread::sleep(std::time::Duration::from_millis(5));
        service.sample_now();

        let text = render_prometheus(&service);
        assert!(
            text.contains("# TYPE anno_query_latency_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("anno_query_latency_ns_count{dataset=\"db\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("anno_query_latency_ns_bucket{dataset=\"db\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("anno_write_queue_depth{dataset=\"db\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("anno_drains_per_sec{dataset=\"db\"}"),
            "{text}"
        );
        assert!(
            text.contains("anno_queries_per_sec{dataset=\"db\"}"),
            "{text}"
        );
        assert!(text.contains("anno_datasets 1"), "{text}");
        assert!(
            text.contains("anno_query_latency_ns_quantile{dataset=\"db\",quantile=\"p99\"}"),
            "{text}"
        );
        // Queries-per-sec must be positive: 2 queries landed between the
        // two samples.
        let qps_line = text
            .lines()
            .find(|l| l.starts_with("anno_queries_per_sec{dataset=\"db\"}"))
            .unwrap();
        let qps: f64 = qps_line.split_whitespace().last().unwrap().parse().unwrap();
        assert!(qps > 0.0, "{qps_line}");
    }

    #[test]
    fn label_escaping_handles_quotes() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
