//! `anno-service`: a concurrent, multi-tenant correlation-serving engine.
//!
//! The paper's promise — association rules over annotated data that are
//! *maintained incrementally* as the database evolves (§4.3) and
//! *exploited online* to recommend missing annotations (§5) — only pays
//! off inside a long-lived serving layer that answers queries while
//! updates stream in. This crate is that layer, wrapping `anno-store` +
//! `anno-mine`:
//!
//! * [`Service`](service::Service) — a registry of named datasets, each an
//!   [`AnnotatedRelation`](anno_store::AnnotatedRelation) +
//!   [`IncrementalMiner`](anno_mine::IncrementalMiner) pair with its own
//!   write-behind worker thread ([`Dataset`](dataset::Dataset));
//! * **snapshot reads** — queries run against an immutable
//!   [`RuleSnapshot`](snapshot::RuleSnapshot) behind an `Arc`; readers
//!   clone the `Arc` and never block on an in-flight write batch (the
//!   relation inside each snapshot is a persistent clone of the
//!   segment-store database, sharing all storage with the live relation
//!   at publish time);
//! * **batched writes** — a coalescing [`queue`] folds streams of
//!   [`UpdateOp`](queue::UpdateOp)s into single incremental-maintenance
//!   passes (cases 1–3 of §4.3, plus the deletion cases) and atomically
//!   publishes one fresh snapshot per drain;
//! * a **query layer** ([`query`]) — rule listing/filtering by antecedent,
//!   top-k missing-annotation recommendations, stats — and per-op
//!   [`metrics`];
//! * a **line protocol** ([`protocol`]) served over TCP or a stdin REPL
//!   ([`server`]) by the `annod` binary;
//! * **durability** — a dataset opened with a directory
//!   ([`Dataset::open`], protocol `open <ds> … dir <path>`) logs every
//!   coalesced drain to an `anno-wal` write-ahead log *before* applying
//!   it, takes checkpoint/compaction cycles on demand (`checkpoint`) or
//!   **by itself** under a [`CheckpointPolicy`] (protocol
//!   `auto_checkpoint bytes=N records=N secs=N`), and recovers across
//!   process restarts by restoring the latest checkpoint and replaying
//!   the log tail. Concurrent durable tenants share one
//!   [`GroupCommitter`]'s sync windows ([`SyncPolicy::Grouped`], the
//!   [`Service::open_durable`](service::Service::open_durable) default),
//!   paying amortized fsyncs instead of one each per drain.
//!
//! See the workspace `README.md` for the `annod` protocol reference and
//! `examples/annod_session.rs` for an end-to-end walkthrough.
//!
//! # Quickstart
//!
//! ```
//! use anno_service::{Service, ServiceConfig};
//! use anno_service::queue::UpdateOp;
//!
//! let service = Service::new();
//! let config = ServiceConfig {
//!     thresholds: anno_mine::Thresholds::new(0.4, 0.7),
//!     ..Default::default()
//! };
//! let ds = service.create("db", config).unwrap();
//! ds.enqueue(UpdateOp::InsertRows(vec![
//!     "28 85 Annot_1".into(),
//!     "28 85 Annot_1".into(),
//!     "28 85 Annot_1".into(),
//!     "28 85".into(),
//!     "17 99".into(),
//! ])).unwrap();
//! ds.flush().unwrap();
//! let snap = ds.mine().unwrap();
//! assert_eq!(snap.rules().len(), 3); // {28}⇒A, {85}⇒A, {28,85}⇒A
//!
//! // Stream an update; the queue applies it incrementally and publishes
//! // a new snapshot. The old snapshot stays valid for ongoing readers.
//! ds.enqueue(UpdateOp::AnnotateNamed(vec![(anno_store::TupleId(3), "Annot_1".into())])).unwrap();
//! ds.flush().unwrap();
//! assert!(ds.snapshot().unwrap().epoch() > snap.epoch());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod expose;
pub mod metrics;
pub mod protocol;
pub mod query;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod service;
pub mod snapshot;
mod walcodec;

pub use anno_discover::{DiscoveredPair, DiscoverySnapshot, DiscoveryStats};
pub use anno_wal::{CheckpointPolicy, GroupCommitStats, GroupCommitter, SyncPolicy, WalOptions};
pub use dataset::{Dataset, DurabilityOptions, ReplicationStatus, Role};
pub use error::ServiceError;
pub use expose::render_prometheus;
pub use metrics::{DatasetObs, MetricsReport};
pub use protocol::{Engine, Reply};
pub use query::{RuleFilter, RuleOrder, TopRecommendation};
pub use queue::{QosClass, UpdateOp};
pub use service::WindowedRates;
pub use service::{DatasetSummary, Service, ServiceConfig};
pub use snapshot::RuleSnapshot;
