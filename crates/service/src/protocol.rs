//! The `annod` line protocol: one command per line, text in, text out.
//!
//! Replies are one `OK …` / `ERR …` header line; commands that return a
//! listing follow the header with payload lines and a lone `.` terminator
//! (the classic SMTP/NNTP framing, trivially scriptable with netcat).
//!
//! ```text
//! open db 0.4 0.7          -> OK open db alpha=0.4 beta=0.7 retention=0.5
//! row db 28 85 Annot_1     -> OK queued seq=1
//! mine db                  -> OK mined rules=3 epoch=1
//! rules db contains 28     -> OK 2 rules ... payload ... .
//! recommend db tuple 3     -> OK 1 recommendations ... payload ... .
//! ```
//!
//! Write commands (`row`, `annotate`, `unannotate`, `delete`) only
//! enqueue: they return as soon as the op is queued, and the writer thread
//! folds queued ops into batches. `flush` is the barrier; read commands
//! (`rules`, `recommend`, `stats`) serve from the latest published
//! snapshot and never wait on writes.

use std::sync::Arc;

use anno_mine::RuleKind;
use anno_store::{Item, ItemKind, TupleId};

use crate::error::ServiceError;
use crate::metrics::timed;
use crate::query::{top_k_for_items, top_k_for_tuple, RuleFilter, RuleOrder, TopRecommendation};
use crate::queue::{QosClass, UpdateOp};
use crate::service::{Service, ServiceConfig};
use crate::snapshot::RuleSnapshot;

/// Default `k` for `recommend` when no `top k` clause is given.
const DEFAULT_TOP_K: usize = 10;

/// Default event count for `events` when no `n` is given.
const DEFAULT_EVENTS: usize = 32;

/// One reply: the lines to send back, and whether to close the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Lines to write, in order. Multi-line listings end with `"."`.
    pub lines: Vec<String>,
    /// `true` after `quit`.
    pub quit: bool,
}

impl Reply {
    fn ok(msg: impl Into<String>) -> Reply {
        Reply {
            lines: vec![format!("OK {}", msg.into())],
            quit: false,
        }
    }

    fn block(header: impl Into<String>, mut payload: Vec<String>) -> Reply {
        let mut lines = vec![format!("OK {}", header.into())];
        lines.append(&mut payload);
        lines.push(".".to_string());
        Reply { lines, quit: false }
    }

    fn err(e: impl std::fmt::Display) -> Reply {
        Reply {
            lines: vec![format!("ERR {e}")],
            quit: false,
        }
    }

    /// The whole reply as one `\n`-terminated chunk.
    pub fn to_text(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        out
    }
}

/// A stateless command interpreter over a shared [`Service`]. One engine
/// serves any number of concurrent sessions.
#[derive(Debug, Clone)]
pub struct Engine {
    service: Arc<Service>,
    /// When set (the sharded front end), write verbs use the non-blocking
    /// [`Dataset::try_enqueue`](crate::dataset::Dataset::try_enqueue)
    /// admission path and answer overload with the typed `Overloaded`
    /// soft error; when clear (REPL, embedders, tests), writes block on
    /// backpressure as they always have.
    shed_writes: bool,
}

impl Engine {
    /// An engine over `service` whose writes block on backpressure.
    pub fn new(service: Arc<Service>) -> Engine {
        Engine {
            service,
            shed_writes: false,
        }
    }

    /// An engine whose write verbs never block: overload is shed with
    /// [`ServiceError::Overloaded`]. This is what each reactor shard
    /// runs — an event loop must not park on a tenant's condvar.
    pub fn with_admission(service: Arc<Service>) -> Engine {
        Engine {
            service,
            shed_writes: true,
        }
    }

    /// The shared registry.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Execute one command line.
    pub fn execute(&self, line: &str) -> Reply {
        self.execute_typed(line).0
    }

    /// Execute one command line, also returning the typed error (if the
    /// command failed) so transports can react to specific failures —
    /// the sharded server suspends a connection's reads on
    /// [`ServiceError::Overloaded`] without parsing the reply text.
    pub fn execute_typed(&self, line: &str) -> (Reply, Option<ServiceError>) {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&cmd, args)) = tokens.split_first() else {
            return (Reply::err("empty command; try `help`"), None);
        };
        match self.dispatch(&cmd.to_ascii_lowercase(), args) {
            Ok(reply) => (reply, None),
            Err(e) => (Reply::err(&e), Some(e)),
        }
    }

    /// Route a write op through the engine's admission mode.
    fn enqueue_op(&self, ds: &crate::dataset::Dataset, op: UpdateOp) -> Result<u64, ServiceError> {
        if self.shed_writes {
            ds.try_enqueue(op)
        } else {
            ds.enqueue(op)
        }
    }

    fn dispatch(&self, cmd: &str, args: &[&str]) -> Result<Reply, ServiceError> {
        // anno-lint: protocol-dispatch
        match cmd {
            "ping" => Ok(Reply::ok("pong")),
            "help" => Ok(help()),
            "quit" | "exit" => Ok(Reply {
                lines: vec!["OK bye".into()],
                quit: true,
            }),
            "datasets" => Ok(self.datasets()),
            "open" => self.open(args),
            "attach" => self.attach(args),
            "catchup" => {
                let [name] = expect_args::<1>(args, "catchup <dataset>")?;
                let ds = self.service.get(name)?;
                let rs = ds.catchup_now()?;
                Ok(Reply::ok(format!(
                    "catchup {name} {}",
                    render_replication(ds.role(), &rs)
                )))
            }
            "promote" => {
                let [name] = expect_args::<1>(args, "promote <dataset>")?;
                let ds = self.service.get(name)?;
                ds.promote()?;
                Ok(Reply::ok(format!(
                    "promoted {name} role={} tuples={} mined={}",
                    ds.role().label(),
                    ds.live_tuples(),
                    ds.is_mined()
                )))
            }
            "drop" => {
                let [name] = expect_args::<1>(args, "drop <dataset>")?;
                self.service.remove(name)?;
                Ok(Reply::ok(format!("dropped {name}")))
            }
            "row" => self.row(args),
            "annotate" => self.annotation_op(args, true),
            "unannotate" => self.annotation_op(args, false),
            "delete" => self.delete(args),
            "class" => self.class(args),
            "mine" => {
                let [name] = expect_args::<1>(args, "mine <dataset>")?;
                let snap = self.service.get(name)?.mine()?;
                Ok(Reply::ok(format!(
                    "mined rules={} epoch={}",
                    snap.rules().len(),
                    snap.epoch()
                )))
            }
            "flush" => {
                let [name] = expect_args::<1>(args, "flush <dataset>")?;
                let ds = self.service.get(name)?;
                ds.flush()?;
                let epoch = ds.try_snapshot().map_or(0, |s| s.epoch());
                Ok(Reply::ok(format!("flushed epoch={epoch}")))
            }
            "rules" => self.rules(args),
            "recommend" => self.recommend(args),
            "discover" => self.discover(args),
            "stats" => self.stats(args),
            "metrics" => Ok(self.metrics()),
            "events" => self.events(args),
            "checkpoint" => {
                let [name] = expect_args::<1>(args, "checkpoint <dataset>")?;
                let ds = self.service.get(name)?;
                let (pos, bytes) = ds.checkpoint()?;
                Ok(Reply::ok(format!(
                    "checkpoint {name} position={pos} bytes={bytes}"
                )))
            }
            "verify" => {
                let [name] = expect_args::<1>(args, "verify <dataset>")?;
                let exact = self.service.get(name)?.verify()?;
                Ok(Reply::ok(format!("exact={exact}")))
            }
            other => Err(ServiceError::BadCommand(format!(
                "unknown command {other:?}; try `help`"
            ))),
        }
    }

    fn datasets(&self) -> Reply {
        let payload: Vec<String> = self
            .service
            .list()
            .into_iter()
            .map(|d| {
                format!(
                    "{} tuples={} rules={} epoch={} mined={}",
                    d.name, d.tuples, d.rules, d.epoch, d.mined
                )
            })
            .collect();
        Reply::block(format!("{} datasets", payload.len()), payload)
    }

    fn open(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let usage = "open <dataset> [<alpha> <beta> [<retention>]] [dir <path>] \
                     [auto_checkpoint <bytes=N|records=N|secs=N>...] [sync grouped|per_append]";
        let (name, rest) = args.split_first().ok_or_else(|| bad(usage))?;
        let is_open_keyword = |t: &str| {
            matches!(
                t.to_ascii_lowercase().as_str(),
                "dir" | "auto_checkpoint" | "sync"
            )
        };
        // Positional thresholds first, then keyword clauses to the end.
        let first_clause = rest
            .iter()
            .position(|t| is_open_keyword(t))
            .unwrap_or(rest.len());
        let (thresholds, mut clauses) = rest.split_at(first_clause);
        let mut config = ServiceConfig::default();
        match thresholds {
            [] => {}
            [alpha, beta, rest2 @ ..] => {
                let alpha = parse_fraction(alpha, "alpha")?;
                let beta = parse_fraction(beta, "beta")?;
                config.thresholds = anno_mine::Thresholds::new(alpha, beta);
                match rest2 {
                    [] => {}
                    [retention] => config.retention = parse_fraction(retention, "retention")?,
                    _ => return Err(bad(usage)),
                }
            }
            _ => return Err(bad("open takes alpha and beta together")),
        }

        let mut dir: Option<&str> = None;
        let mut policy = anno_wal::CheckpointPolicy::default();
        let mut sync_mode: Option<String> = None;
        while let Some((&clause, after)) = clauses.split_first() {
            clauses = match clause.to_ascii_lowercase().as_str() {
                "dir" => {
                    let (&path, next) = after.split_first().ok_or_else(|| bad("dir <path>"))?;
                    dir = Some(path);
                    next
                }
                "auto_checkpoint" => {
                    let mut cursor = after;
                    let mut consumed = 0usize;
                    while let Some((&tok, next)) = cursor.split_first() {
                        if is_open_keyword(tok) {
                            break;
                        }
                        let (key, value) = tok.split_once('=').ok_or_else(|| {
                            bad(format!(
                                "auto_checkpoint takes bytes=N, records=N, or secs=N; got {tok:?}"
                            ))
                        })?;
                        let value: u64 = value.parse().map_err(|_| {
                            bad(format!("auto_checkpoint {key} must be an integer: {tok:?}"))
                        })?;
                        match key.to_ascii_lowercase().as_str() {
                            "bytes" => policy.log_bytes = Some(value),
                            "records" => policy.replayed_records = Some(value),
                            "secs" => {
                                policy.interval = Some(std::time::Duration::from_secs(value));
                            }
                            other => {
                                return Err(bad(format!(
                                    "unknown auto_checkpoint threshold {other:?}"
                                )))
                            }
                        }
                        consumed += 1;
                        cursor = next;
                    }
                    if consumed == 0 {
                        return Err(bad("auto_checkpoint needs at least one threshold"));
                    }
                    cursor
                }
                "sync" => {
                    let (&mode, next) = after
                        .split_first()
                        .ok_or_else(|| bad("sync grouped|per_append"))?;
                    match mode.to_ascii_lowercase().as_str() {
                        m @ ("grouped" | "per_append") => sync_mode = Some(m.to_string()),
                        other => return Err(bad(format!("unknown sync mode {other:?}"))),
                    }
                    next
                }
                other => return Err(bad(format!("unknown open clause {other:?}; {usage}"))),
            };
        }

        let Some(path) = dir else {
            if policy.is_enabled() || sync_mode.is_some() {
                return Err(bad(
                    "auto_checkpoint and sync apply to durable datasets; add `dir <path>`",
                ));
            }
            self.service.create(name, config)?;
            return Ok(Reply::ok(format!(
                "open {name} alpha={} beta={} retention={}",
                config.thresholds.min_support, config.thresholds.min_confidence, config.retention
            )));
        };

        // Grouped sync through the registry's shared committer is the
        // default for protocol opens; `sync per_append` opts back into
        // one inline fsync per drain.
        let sync = match sync_mode.as_deref() {
            Some("per_append") => anno_wal::SyncPolicy::PerAppend,
            _ => anno_wal::SyncPolicy::Grouped(self.service.group_committer()),
        };
        let options = crate::dataset::DurabilityOptions {
            wal: anno_wal::WalOptions {
                sync,
                ..anno_wal::WalOptions::default()
            },
            auto_checkpoint: policy,
            ..Default::default()
        };
        let ds =
            self.service
                .open_durable_with(name, config, std::path::Path::new(path), options)?;
        // Recovered mined state keeps its checkpointed thresholds;
        // report what the dataset actually runs with.
        let cfg = ds.config();
        Ok(Reply::ok(format!(
            "open {name} alpha={} beta={} retention={} dir={path} tuples={} mined={} \
             sync={} auto_checkpoint={}",
            cfg.thresholds.min_support,
            cfg.thresholds.min_confidence,
            cfg.retention,
            ds.live_tuples(),
            ds.is_mined(),
            ds.sync_policy_label().unwrap_or("per_append"),
            render_policy(&policy),
        )))
    }

    /// `attach <ds> dir <path> [poll_ms <n>]`: register a read-only
    /// follower replica tailing the leader's log directory.
    fn attach(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let usage = "attach <dataset> dir <path> [poll_ms <n>]";
        let (name, rest) = args.split_first().ok_or_else(|| bad(usage))?;
        let mut dir: Option<&str> = None;
        let mut poll = std::time::Duration::from_millis(50);
        let mut rest = rest;
        while let Some((&clause, after)) = rest.split_first() {
            rest = match clause.to_ascii_lowercase().as_str() {
                "dir" => {
                    let (&path, next) = after.split_first().ok_or_else(|| bad("dir <path>"))?;
                    dir = Some(path);
                    next
                }
                "poll_ms" => {
                    let (&ms, next) = after.split_first().ok_or_else(|| bad("poll_ms <n>"))?;
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| bad(format!("poll_ms must be an integer, got {ms:?}")))?;
                    poll = std::time::Duration::from_millis(ms);
                    next
                }
                other => return Err(bad(format!("unknown attach clause {other:?}; {usage}"))),
            };
        }
        let Some(path) = dir else {
            return Err(bad(usage));
        };
        let ds = self.service.attach_follower(
            name,
            ServiceConfig::default(),
            std::path::Path::new(path),
            poll,
        )?;
        // Catch up before replying, so `attach` against a quiet leader
        // serves its full state immediately.
        let rs = ds.catchup_now()?;
        Ok(Reply::ok(format!(
            "attach {name} dir={path} poll_ms={} {}",
            poll.as_millis(),
            render_replication(ds.role(), &rs)
        )))
    }

    fn row(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let (name, rest) = args
            .split_first()
            .ok_or_else(|| bad("row <dataset> <value|annotation>..."))?;
        if rest.is_empty() {
            return Err(bad("row needs at least one value"));
        }
        let line = rest.join(" ");
        // A line the parser skips (comment/blank/separator-only) would
        // silently vanish at apply time; err immediately instead of
        // replying `queued`.
        if !anno_store::line_has_items(&line) {
            return Err(bad(
                "row has no items (comment, blank, or separators only) and would be dropped",
            ));
        }
        let ds = self.service.get(name)?;
        let seq = self.enqueue_op(&ds, UpdateOp::InsertRows(vec![line]))?;
        Ok(Reply::ok(format!("queued seq={seq}")))
    }

    /// `class <ds> [interactive|bulk]`: set (or report) the tenant's QoS
    /// class. The class steers the sharded front end's admission policy —
    /// bulk tenants get a small per-tick command budget and absorb
    /// overload through read suspension; interactive tenants keep a large
    /// budget and are shed fast with `Overloaded` so their latency stays
    /// bounded.
    fn class(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let usage = "class <dataset> [interactive|bulk]";
        match args {
            [name] => {
                let ds = self.service.get(name)?;
                Ok(Reply::ok(format!(
                    "class {name} {} cap={}",
                    ds.qos_class().label(),
                    ds.queue_cap()
                )))
            }
            [name, class] => {
                let class = QosClass::parse(class)
                    .ok_or_else(|| bad(format!("unknown class {class:?}; {usage}")))?;
                let ds = self.service.get(name)?;
                ds.set_qos_class(class);
                Ok(Reply::ok(format!(
                    "class {name} {} cap={}",
                    class.label(),
                    ds.queue_cap()
                )))
            }
            _ => Err(bad(usage)),
        }
    }

    fn annotation_op(&self, args: &[&str], attach: bool) -> Result<Reply, ServiceError> {
        let usage = if attach {
            "annotate <dataset> <tuple-id> <annotation>..."
        } else {
            "unannotate <dataset> <tuple-id> <annotation>..."
        };
        let [name, tid, anns @ ..] = args else {
            return Err(bad(usage));
        };
        if anns.is_empty() {
            return Err(bad(usage));
        }
        let tid = parse_tid(tid)?;
        let named: Vec<(TupleId, String)> = anns.iter().map(|a| (tid, a.to_string())).collect();
        let ds = self.service.get(name)?;
        let op = if attach {
            UpdateOp::AnnotateNamed(named)
        } else {
            UpdateOp::RemoveNamed(named)
        };
        let seq = self.enqueue_op(&ds, op)?;
        Ok(Reply::ok(format!("queued seq={seq}")))
    }

    fn delete(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let [name, tids @ ..] = args else {
            return Err(bad("delete <dataset> <tuple-id>..."));
        };
        if tids.is_empty() {
            return Err(bad("delete needs at least one tuple id"));
        }
        let tids = tids
            .iter()
            .map(|t| parse_tid(t))
            .collect::<Result<Vec<_>, _>>()?;
        let ds = self.service.get(name)?;
        let seq = self.enqueue_op(&ds, UpdateOp::DeleteTuples(tids))?;
        Ok(Reply::ok(format!("queued seq={seq}")))
    }

    fn rules(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let (name, mut rest) = args.split_first().ok_or_else(|| {
            bad("rules <dataset> [contains <item>...] [kind data|ann] [minconf <x>] [top <k>]")
        })?;
        let ds = self.service.get(name)?;
        let snap = ds.snapshot()?;
        let mut filter = RuleFilter::default();
        // An unknown `contains` item means an empty result, but only after
        // the whole command parses — a success reply must never mask a
        // malformed later clause.
        let mut unknown_item = false;
        while let Some((&clause, after)) = rest.split_first() {
            rest = match clause.to_ascii_lowercase().as_str() {
                "contains" => {
                    let mut cursor = after;
                    let mut consumed = 0usize;
                    while let Some((&tok, next)) = cursor.split_first() {
                        let (item_tok, literal) = unescape_item(tok);
                        if !literal && is_clause_keyword(tok) {
                            break;
                        }
                        consumed += 1;
                        match resolve_item(&ds, &snap, item_tok) {
                            Some(item) => filter.antecedent.push(item),
                            None => unknown_item = true,
                        }
                        cursor = next;
                    }
                    if consumed == 0 {
                        return Err(bad("contains needs at least one item"));
                    }
                    cursor
                }
                "kind" => {
                    let (&kind, next) = after.split_first().ok_or_else(|| bad("kind data|ann"))?;
                    filter.kind = Some(match kind.to_ascii_lowercase().as_str() {
                        "data" | "d2a" => RuleKind::DataToAnnotation,
                        "ann" | "a2a" => RuleKind::AnnotationToAnnotation,
                        other => return Err(bad(format!("unknown rule kind {other:?}"))),
                    });
                    next
                }
                "minconf" => {
                    let (&x, next) = after.split_first().ok_or_else(|| bad("minconf <x>"))?;
                    filter.min_confidence = Some(parse_fraction(x, "minconf")?);
                    next
                }
                "top" => {
                    let (&k, next) = after.split_first().ok_or_else(|| bad("top <k>"))?;
                    filter.top = Some(parse_count(k)?);
                    next
                }
                "by" => {
                    let (&o, next) = after.split_first().ok_or_else(|| bad("by conf|sup|lift"))?;
                    filter.order = match o.to_ascii_lowercase().as_str() {
                        "conf" | "confidence" => RuleOrder::Confidence,
                        "sup" | "support" => RuleOrder::Support,
                        "lift" => RuleOrder::Lift,
                        other => return Err(bad(format!("unknown order {other:?}"))),
                    };
                    next
                }
                other => return Err(bad(format!("unknown rules clause {other:?}"))),
            };
        }
        if unknown_item {
            // Still a served rule query; count it.
            ds.raw_metrics().record_rule_query(0);
            return Ok(Reply::block("0 rules (unknown item)", vec![]));
        }
        let (payload, nanos) = timed(|| {
            let vocab = snap.relation().vocab();
            filter
                .apply(&snap)
                .into_iter()
                .map(|r| r.render(vocab))
                .collect::<Vec<String>>()
        });
        ds.raw_metrics().record_rule_query(nanos);
        Ok(Reply::block(format!("{} rules", payload.len()), payload))
    }

    fn recommend(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let usage = "recommend <dataset> tuple <id> [top <k>] | recommend <dataset> items <item>... [top <k>]";
        let [name, mode, rest @ ..] = args else {
            return Err(bad(usage));
        };
        let ds = self.service.get(name)?;
        let snap = ds.snapshot()?;
        let (recs, nanos): (Option<Vec<TopRecommendation>>, u64) =
            match mode.to_ascii_lowercase().as_str() {
                "tuple" => {
                    let [tid, k @ ..] = rest else {
                        return Err(bad(usage));
                    };
                    let tid = parse_tid(tid)?;
                    let k = parse_top_clause(k)?;
                    timed(|| top_k_for_tuple(&snap, tid, k))
                }
                "items" => {
                    let (toks, k) = split_top_clause(rest)?;
                    if toks.is_empty() {
                        return Err(bad(usage));
                    }
                    let items: Vec<Item> = toks
                        .iter()
                        .filter_map(|t| resolve_item(&ds, &snap, unescape_item(t).0))
                        .collect();
                    timed(|| Some(top_k_for_items(&snap, &items, k)))
                }
                _ => return Err(bad(usage)),
            };
        ds.raw_metrics().record_recommend_query(nanos);
        let Some(recs) = recs else {
            return Err(ServiceError::BadCommand(
                "tuple is dead or out of range in the current snapshot".into(),
            ));
        };
        let payload: Vec<String> = recs
            .into_iter()
            .map(|r| {
                format!(
                    "add {} conf={:.4} sup={:.4} [{}]",
                    r.name, r.confidence, r.support, r.rule
                )
            })
            .collect();
        Ok(Reply::block(
            format!("{} recommendations", payload.len()),
            payload,
        ))
    }

    /// Serve the ranked correlation top-k from the published discovery
    /// snapshot — O(k), never touching the write path. Cross-namespace
    /// pairs (annotation families co-firing) lead; same-namespace pairs
    /// follow unless `cross_only` drops them.
    fn discover(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let usage = "discover <dataset> [top=<k>] [min_support=<x>] [cross_only]";
        let (name, rest) = args.split_first().ok_or_else(|| bad(usage))?;
        let ds = self.service.get(name)?;
        let mut k = DEFAULT_TOP_K;
        let mut min_support = 0.0f64;
        let mut cross_only = false;
        for tok in rest {
            match tok.to_ascii_lowercase().as_str() {
                "cross_only" => cross_only = true,
                other => match other.split_once('=') {
                    Some(("top", v)) => k = parse_count(v)?,
                    Some(("min_support", v)) => min_support = parse_fraction(v, "min_support")?,
                    _ => return Err(bad(format!("unknown discover clause {tok:?}; {usage}"))),
                },
            }
        }
        let k = k.min(crate::dataset::DISCOVERY_TOPK_CAP);
        let snap = ds.discovery()?;
        let (payload, nanos) = timed(|| {
            snap.query(k, min_support, cross_only)
                .into_iter()
                .map(|p| {
                    format!(
                        "{} ~ {} count={} support={:.4} lift={:.3} leverage={:.5} \
                         significant={} cross={}",
                        p.a_name,
                        p.b_name,
                        p.count,
                        p.support,
                        p.lift,
                        p.leverage,
                        p.significant,
                        p.cross,
                    )
                })
                .collect::<Vec<String>>()
        });
        ds.raw_metrics().record_discover_query(nanos);
        Ok(Reply::block(
            format!(
                "{} correlations epoch={} pairs_tracked={}",
                payload.len(),
                snap.epoch,
                snap.pairs_tracked,
            ),
            payload,
        ))
    }

    /// The full Prometheus exposition text as a protocol block — the
    /// same bytes `GET /metrics` serves, reachable without the second
    /// listener.
    fn metrics(&self) -> Reply {
        let text = crate::expose::render_prometheus(&self.service);
        Reply::block("metrics", text.lines().map(String::from).collect())
    }

    /// The maintenance event journal: a dataset's (recovery, checkpoints,
    /// fencing) with a name, the service's (group-commit windows) bare.
    fn events(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        let usage = "events [<dataset>] [<n>]";
        let (scope, events, total) = match args {
            [] => (
                "service".to_string(),
                self.service.events(DEFAULT_EVENTS),
                self.service.events_total(),
            ),
            [name] => {
                let ds = self.service.get(name)?;
                (
                    name.to_string(),
                    ds.events(DEFAULT_EVENTS),
                    ds.events_total(),
                )
            }
            [name, n] => {
                let n = parse_count(n)?;
                let ds = self.service.get(name)?;
                (name.to_string(), ds.events(n), ds.events_total())
            }
            _ => return Err(bad(usage)),
        };
        let payload: Vec<String> = events.iter().map(|e| e.to_string()).collect();
        Ok(Reply::block(
            format!("{} events {scope} total={total}", payload.len()),
            payload,
        ))
    }

    /// `stats` with no dataset: one summary line per open dataset plus
    /// the aggregated committer and windowed-rate numbers.
    fn service_stats(&self) -> Reply {
        let datasets = self.service.all();
        let mut payload: Vec<String> = datasets
            .iter()
            .map(|ds| {
                let obs = ds.observability();
                let r = obs.report;
                format!(
                    "{} tuples={} mined={} queue_depth={} unacked_drains={} {}",
                    ds.name(),
                    ds.live_tuples(),
                    ds.is_mined(),
                    obs.queue_depth,
                    obs.unacked_drains,
                    r.render(),
                )
            })
            .collect();
        if let Some(gc) = self.service.committer_stats() {
            payload.push(format!(
                "grouped_submitted={} grouped_syncs={} grouped_windows={}",
                gc.submitted, gc.syncs, gc.windows,
            ));
        }
        let fsync = self.service.fsync_latency();
        payload.push(format!(
            "service_fsyncs={} fsync_p50_ns={} fsync_p99_ns={} service_events={}",
            fsync.count(),
            fsync.quantile(0.50),
            fsync.quantile(0.99),
            self.service.events_total(),
        ));
        if let Some(w) = self.service.service_windowed() {
            payload.push(format!(
                "drains_per_sec={:.2} queries_per_sec={:.2} fsyncs_per_drain={:.2} \
                 window_samples={}",
                w.drains_per_sec, w.queries_per_sec, w.fsyncs_per_drain, w.samples,
            ));
        }
        Reply::block(
            format!("service stats {} datasets", datasets.len()),
            payload,
        )
    }

    fn stats(&self, args: &[&str]) -> Result<Reply, ServiceError> {
        if args.is_empty() {
            return Ok(self.service_stats());
        }
        let [name] = expect_args::<1>(args, "stats [<dataset>]")?;
        let ds = self.service.get(name)?;
        let mut payload = Vec::new();
        match ds.try_snapshot() {
            Some(snap) => {
                let cfg = snap.config();
                let t = cfg.thresholds;
                let s = snap.stats();
                payload.push(format!(
                    "tuples={} rules={} candidates={} epoch={} relation_epoch={}",
                    snap.db_size(),
                    snap.rules().len(),
                    snap.candidates().len(),
                    snap.epoch(),
                    snap.relation_epoch(),
                ));
                payload.push(format!(
                    "alpha={} beta={} retention={}",
                    t.min_support, t.min_confidence, cfg.retention
                ));
                payload.push(format!(
                    "full_remines={} case1_batches={} case2_batches={} case3_batches={} \
                     deletion_batches={} discovered_itemsets={}",
                    s.full_remines,
                    s.case1_batches,
                    s.case2_batches,
                    s.case3_batches,
                    s.deletion_batches,
                    s.discovered_itemsets,
                ));
            }
            None => payload.push(format!("tuples={} (not mined)", ds.live_tuples())),
        }
        if let Some(d) = ds.try_discovery() {
            payload.push(format!(
                "discovery_epoch={} discovery_pairs={} discovery_topk_cross={} \
                 discovery_topk_within={} discovery_updates={} discovery_rebuilds={} \
                 discovery_rescored={}",
                d.epoch,
                d.pairs_tracked,
                d.cross.len(),
                d.within.len(),
                d.stats.updates,
                d.stats.rebuilds,
                d.stats.rescored,
            ));
        }
        payload.push(format!(
            "qos_class={} queue_cap={} queue_depth={}",
            ds.qos_class().label(),
            ds.queue_cap(),
            ds.observability().queue_depth,
        ));
        payload.push(ds.metrics().render());
        match ds.replication_status() {
            Some(rs) => payload.push(render_replication(ds.role(), &rs)),
            None => payload.push(format!("role={}", ds.role().label())),
        }
        if let Some(ws) = ds.wal_stats() {
            payload.push(format!(
                "wal_position={} wal_segments={} wal_appends={} wal_appended_bytes={} \
                 wal_syncs={} wal_checkpoints={} wal_replayed={} wal_damaged_tails={} \
                 wal_since_ckpt_records={} wal_since_ckpt_bytes={}",
                ws.position,
                ws.segments,
                ws.appends,
                ws.appended_bytes,
                ws.syncs,
                ws.checkpoints,
                ws.replayed_records,
                ws.damaged_tails,
                ws.since_checkpoint_records,
                ws.since_checkpoint_bytes,
            ));
            payload.push(format!(
                "wal_sync={} auto_checkpoint={}",
                ds.sync_policy_label().unwrap_or("per_append"),
                render_policy(&ds.auto_checkpoint_policy()),
            ));
            if let Some(gc) = ds.group_commit_stats() {
                payload.push(format!(
                    "grouped_submitted={} grouped_syncs={} grouped_windows={}",
                    gc.submitted, gc.syncs, gc.windows,
                ));
            }
        }
        Ok(Reply::block(format!("stats {name}"), payload))
    }
}

/// Render a follower's role + lag numbers for `attach`/`catchup`/`stats`
/// lines.
fn render_replication(
    role: crate::dataset::Role,
    rs: &crate::dataset::ReplicationStatus,
) -> String {
    let mut line = format!(
        "role={} applied_seq={} leader_seq={} bytes_behind={} records_applied={} \
         restarts={} polls={}",
        role.label(),
        rs.applied_seq,
        rs.leader_seq,
        rs.bytes_behind,
        rs.records_applied,
        rs.restarts,
        rs.polls,
    );
    if let Some(why) = &rs.failed {
        line.push_str(&format!(" failed={why:?}"));
    }
    line
}

/// Render a checkpoint policy for reply/stats lines: `off`, or the set
/// thresholds joined with `+` (e.g. `records=64+bytes=1048576`).
fn render_policy(policy: &anno_wal::CheckpointPolicy) -> String {
    let mut parts = Vec::new();
    if let Some(b) = policy.log_bytes {
        parts.push(format!("bytes={b}"));
    }
    if let Some(r) = policy.replayed_records {
        parts.push(format!("records={r}"));
    }
    if let Some(i) = policy.interval {
        parts.push(format!("secs={}", i.as_secs()));
    }
    if parts.is_empty() {
        "off".to_string()
    } else {
        parts.join("+")
    }
}

fn help() -> Reply {
    let payload = vec![
        "ping | help | quit".into(),
        "datasets".into(),
        "open <ds> [<alpha> <beta> [<retention>]] [dir <path>]".into(),
        "     [auto_checkpoint <bytes=N|records=N|secs=N>...] [sync grouped|per_append]".into(),
        "  (dir makes the dataset durable: drains are write-ahead logged and".into(),
        "   existing state under <path> is recovered before serving;".into(),
        "   auto_checkpoint makes the writer checkpoint itself once the log".into(),
        "   grows past a threshold; sync grouped — the default — batches".into(),
        "   fsyncs across all grouped datasets into shared commit windows)".into(),
        "drop <ds>".into(),
        "row <ds> <value|annotation>...        (queued write)".into(),
        "annotate <ds> <tid> <annotation>...   (queued write; names are single tokens)".into(),
        "unannotate <ds> <tid> <annotation>... (queued write; names are single tokens)".into(),
        "delete <ds> <tid>...                  (queued write)".into(),
        "class <ds> [interactive|bulk]         QoS class for admission control".into(),
        "  (bulk tenants get a small per-tick budget + read-suspension backpressure;".into(),
        "   interactive tenants are shed fast with ERR overloaded when their queue fills)"
            .into(),
        "mine <ds>     full mine + first snapshot".into(),
        "flush <ds>    wait until queued writes are published".into(),
        "rules <ds> [contains <item>...] [kind data|ann] [minconf <x>] [by conf|sup|lift] [top <k>]".into(),
        "recommend <ds> tuple <tid> [top <k>]".into(),
        "recommend <ds> items <item>... [top <k>]".into(),
        "  (item escapes: =name for keyword collisions, ann:name / data:name to force a kind)"
            .into(),
        "discover <ds> [top=<k>] [min_support=<x>] [cross_only]".into(),
        "  (ranked annotation correlations — lift/leverage over co-occurring pairs,".into(),
        "   maintained incrementally per drain; cross-namespace pairs rank first)".into(),
        "checkpoint <ds>  persist snapshot+miner at the log head, compact the wal".into(),
        "attach <ds> dir <path> [poll_ms <n>]  read-only follower tailing a leader's log".into(),
        "catchup <ds>     force a follower poll now and report replication lag".into(),
        "promote <ds>     follower -> leader: take the wal lock, recover, accept writes".into(),
        "stats [<ds>]     per-dataset counters, or a service-wide block with no name".into(),
        "metrics          Prometheus text exposition (same bytes as GET /metrics)".into(),
        "events [<ds>] [<n>]  maintenance event journal (service-level with no name)".into(),
        "verify <ds>".into(),
    ];
    Reply::block("commands", payload)
}

fn bad(msg: impl Into<String>) -> ServiceError {
    ServiceError::BadCommand(msg.into())
}

fn expect_args<'a, const N: usize>(
    args: &[&'a str],
    usage: &str,
) -> Result<[&'a str; N], ServiceError> {
    <[&str; N]>::try_from(args.to_vec()).map_err(|_| bad(usage))
}

fn parse_fraction(tok: &str, what: &str) -> Result<f64, ServiceError> {
    let x: f64 = tok
        .parse()
        .map_err(|_| bad(format!("{what} must be a number, got {tok:?}")))?;
    if !(0.0..=1.0).contains(&x) {
        return Err(bad(format!("{what} must be in [0, 1], got {x}")));
    }
    Ok(x)
}

fn parse_tid(tok: &str) -> Result<TupleId, ServiceError> {
    tok.parse::<u32>().map(TupleId).map_err(|_| {
        bad(format!(
            "tuple id must be a non-negative integer, got {tok:?}"
        ))
    })
}

fn parse_count(tok: &str) -> Result<usize, ServiceError> {
    tok.parse::<usize>()
        .map_err(|_| bad(format!("count must be a non-negative integer, got {tok:?}")))
}

/// Strip the `=` literal-item escape: `=top` names an item called `top`
/// even though bare `top` would parse as a clause keyword (annotations can
/// carry any single-token name, including the grammar's reserved words).
fn unescape_item(tok: &str) -> (&str, bool) {
    match tok.strip_prefix('=') {
        Some(rest) => (rest, true),
        None => (tok, false),
    }
}

fn is_clause_keyword(tok: &str) -> bool {
    matches!(
        tok.to_ascii_lowercase().as_str(),
        "contains" | "kind" | "minconf" | "top" | "by"
    )
}

/// Parse an optional trailing `top <k>` clause.
fn parse_top_clause(rest: &[&str]) -> Result<usize, ServiceError> {
    match rest {
        [] => Ok(DEFAULT_TOP_K),
        [kw, k] if kw.eq_ignore_ascii_case("top") => parse_count(k),
        _ => Err(bad("expected `top <k>`")),
    }
}

/// Split `tokens... [top <k>]` into the tokens and the effective k.
fn split_top_clause<'a>(rest: &[&'a str]) -> Result<(Vec<&'a str>, usize), ServiceError> {
    if let Some(pos) = rest.iter().position(|t| t.eq_ignore_ascii_case("top")) {
        let k = match &rest[pos + 1..] {
            [k] => parse_count(k)?,
            _ => return Err(bad("expected `top <k>` at end")),
        };
        Ok((rest[..pos].to_vec(), k))
    } else {
        Ok((rest.to_vec(), DEFAULT_TOP_K))
    }
}

/// Resolve a protocol token against the snapshot's vocabulary without
/// interning. `ann:<name>` / `data:<name>` force a kind (the only way to
/// reach an annotation whose digit-only name shadows a data value);
/// otherwise the shared Fig. 4 convention (`anno_store::token_kind`)
/// picks the preferred kind, falling back to the other on a miss so
/// digit-named annotations stay queryable when unambiguous.
/// Lookups go through the dataset's per-namespace lookaside cache
/// ([`crate::dataset::Dataset::resolve_cached`]): hot query names skip
/// the HAMT walk entirely, and append-only interning keeps every cached
/// hit valid forever (misses are never cached).
fn resolve_item(ds: &crate::dataset::Dataset, snap: &RuleSnapshot, tok: &str) -> Option<Item> {
    let vocab = snap.relation().vocab();
    if let Some(rest) = tok.strip_prefix("ann:") {
        return ds.resolve_cached(vocab, ItemKind::Annotation, rest);
    }
    if let Some(rest) = tok.strip_prefix("data:") {
        return ds.resolve_cached(vocab, ItemKind::Data, rest);
    }
    let preferred = anno_store::token_kind(tok);
    let fallback = match preferred {
        ItemKind::Data => ItemKind::Annotation,
        _ => ItemKind::Data,
    };
    ds.resolve_cached(vocab, preferred, tok)
        .or_else(|| ds.resolve_cached(vocab, fallback, tok))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(Arc::new(Service::new()))
    }

    fn ok(e: &Engine, line: &str) -> Vec<String> {
        let reply = e.execute(line);
        assert!(
            reply.lines[0].starts_with("OK"),
            "{line:?} -> {:?}",
            reply.lines
        );
        reply.lines
    }

    #[test]
    fn full_session_walkthrough() {
        let e = engine();
        ok(&e, "ping");
        ok(&e, "open db 0.4 0.7");
        for row in [
            "28 85 Annot_1",
            "28 85 Annot_1",
            "28 85 Annot_1",
            "28 85",
            "17 99",
        ] {
            ok(&e, &format!("row db {row}"));
        }
        let mined = ok(&e, "mine db");
        assert!(mined[0].contains("rules=3"), "{mined:?}");

        let rules = ok(&e, "rules db");
        assert_eq!(rules.len(), 3 + 2, "header + 3 rules + terminator");
        assert_eq!(rules.last().unwrap(), ".");

        let filtered = ok(&e, "rules db contains 28 top 1");
        assert!(filtered[0].starts_with("OK 1 rules") || filtered[0].starts_with("OK 2 rules"));

        let recs = ok(&e, "recommend db tuple 3");
        assert!(recs[0].contains("1 recommendations"), "{recs:?}");
        assert!(recs[1].contains("add Annot_1"), "{recs:?}");

        let by_items = ok(&e, "recommend db items 28 85 top 5");
        assert!(by_items[0].contains("1 recommendations"), "{by_items:?}");

        ok(&e, "annotate db 3 Annot_1");
        ok(&e, "flush db");
        let after = ok(&e, "recommend db tuple 3");
        assert!(after[0].contains("0 recommendations"), "{after:?}");

        let stats = ok(&e, "stats db");
        assert!(
            stats.iter().any(|l| l.contains("case3_batches=1")),
            "{stats:?}"
        );
        assert!(
            stats.iter().any(|l| l.contains("snapshots_published=")),
            "{stats:?}"
        );

        let verify = ok(&e, "verify db");
        assert!(verify[0].contains("exact=true"), "{verify:?}");

        let listing = ok(&e, "datasets");
        assert!(listing[1].starts_with("db "), "{listing:?}");

        let bye = e.execute("quit");
        assert!(bye.quit);
    }

    #[test]
    fn discover_verb_serves_the_ranked_topk() {
        let e = engine();
        assert!(e.execute("discover").lines[0].starts_with("ERR"));
        assert!(e.execute("discover nosuch").lines[0].starts_with("ERR"));
        ok(&e, "open db 0.3 0.6");
        for row in [
            "28 85 Annot_1 Annot_2",
            "28 85 Annot_1 Annot_2",
            "28 85 Annot_1",
            "17 99 Annot_3",
            "17 99",
        ] {
            ok(&e, &format!("row db {row}"));
        }
        assert!(
            e.execute("discover db").lines[0].starts_with("ERR"),
            "no top-k before mine"
        );
        ok(&e, "mine db");

        let all = ok(&e, "discover db");
        assert!(
            all[0].contains("correlations epoch=") && all[0].contains("pairs_tracked="),
            "{all:?}"
        );
        assert!(all.len() >= 3, "header + at least one pair + terminator");
        assert!(
            all[1].contains("Annot_") && all[1].contains("lift=") && all[1].contains("count="),
            "{all:?}"
        );
        assert_eq!(all.last().unwrap(), ".");

        let top1 = ok(&e, "discover db top=1");
        assert!(top1[0].starts_with("OK 1 correlations"), "{top1:?}");
        let none = ok(&e, "discover db min_support=0.99");
        assert!(none[0].starts_with("OK 0 correlations"), "{none:?}");
        // No labels in this dataset: cross_only legitimately serves zero.
        let cross = ok(&e, "discover db cross_only");
        assert!(cross[0].starts_with("OK 0 correlations"), "{cross:?}");

        assert!(e.execute("discover db banana=1").lines[0].starts_with("ERR"));
        assert!(e.execute("discover db top=zap").lines[0].starts_with("ERR"));
        assert!(e.execute("discover db min_support=7").lines[0].starts_with("ERR"));

        // A drain refreshes the ranking: the served epoch advances.
        let epoch_of = |header: &str| {
            header
                .split_whitespace()
                .find_map(|t| t.strip_prefix("epoch="))
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        ok(&e, "annotate db 4 Annot_1");
        ok(&e, "flush db");
        let after = ok(&e, "discover db");
        assert!(epoch_of(&after[0]) > epoch_of(&all[0]), "{after:?}");

        // Discovery shape and query counters reach the stats verb.
        let stats = ok(&e, "stats db");
        assert!(
            stats.iter().any(|l| l.contains("discovery_pairs=")),
            "{stats:?}"
        );
        assert!(
            stats
                .iter()
                .any(|l| l.contains("discover_queries=") && !l.contains("discover_queries=0")),
            "{stats:?}"
        );
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let e = engine();
        assert!(e.execute("").lines[0].starts_with("ERR"));
        assert!(e.execute("bogus").lines[0].starts_with("ERR"));
        assert!(e.execute("rules nosuch").lines[0].starts_with("ERR"));
        assert!(e.execute("open db 2.0 0.5").lines[0].starts_with("ERR"));
        ok(&e, "open db");
        assert!(
            e.execute("open db").lines[0].starts_with("ERR"),
            "duplicate open"
        );
        assert!(
            e.execute("rules db").lines[0].starts_with("ERR"),
            "not mined yet"
        );
        assert!(e.execute("annotate db xyz A").lines[0].starts_with("ERR"));
        assert!(e.execute("delete db").lines[0].starts_with("ERR"));
        assert!(
            e.execute("row db # comment only").lines[0].starts_with("ERR"),
            "comment-only rows would be silently dropped; must err upfront"
        );
        assert!(
            e.execute("row db ,").lines[0].starts_with("ERR"),
            "separator-only rows parse to no items and must err, not insert an empty tuple"
        );
        e.execute("row db 1 X");
        e.execute("row db 1 X");
        e.execute("mine db");
        assert!(
            e.execute("rules db contains kind ann").lines[0].starts_with("ERR"),
            "contains with no items must be a usage error, not an unfiltered listing"
        );
        ok(&e, "drop db");
        assert!(e.execute("flush db").lines[0].starts_with("ERR"));
    }

    #[test]
    fn digit_named_annotations_stay_queryable() {
        // `annotate` accepts any name, including digit-only ones that the
        // Fig. 4 convention would read as data values. Queries must fall
        // back to the annotation vocabulary and still find them.
        let e = engine();
        ok(&e, "open db 0.3 0.5");
        for _ in 0..3 {
            ok(&e, "row db 1 2");
        }
        ok(&e, "annotate db 0 123 Annot_X");
        ok(&e, "annotate db 1 123 Annot_X");
        ok(&e, "annotate db 2 123");
        ok(&e, "mine db");
        // {123} ⇒ Annot_X holds at conf 2/3 ≥ 0.5; `contains 123` must
        // resolve 123 as the annotation, not a nonexistent data value.
        let rules = ok(&e, "rules db contains 123 kind ann");
        assert!(!rules[0].contains("0 rules"), "{rules:?}");
        let recs = ok(&e, "recommend db items 123");
        assert!(recs.iter().any(|l| l.contains("add Annot_X")), "{recs:?}");
    }

    #[test]
    fn keyword_named_items_are_queryable_with_equals_escape() {
        let e = engine();
        ok(&e, "open db 0.3 0.5");
        for _ in 0..3 {
            ok(&e, "row db 1 2");
        }
        ok(&e, "annotate db 0 top Annot_X");
        ok(&e, "annotate db 1 top Annot_X");
        ok(&e, "annotate db 2 top");
        ok(&e, "mine db");
        // Bare `top` parses as a clause keyword; `=top` names the item.
        assert!(e.execute("rules db contains top").lines[0].starts_with("ERR"));
        let rules = ok(&e, "rules db contains =top kind ann");
        assert!(!rules[0].contains("0 rules"), "{rules:?}");
        let recs = ok(&e, "recommend db items =top");
        assert!(recs.iter().any(|l| l.contains("add Annot_X")), "{recs:?}");
    }

    #[test]
    fn durable_open_checkpoint_and_reopen_flow() {
        let dir =
            std::env::temp_dir().join(format!("anno-protocol-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_tok = dir.to_str().unwrap().to_string();

        let e = engine();
        let opened = ok(&e, &format!("open db 0.4 0.7 dir {dir_tok}"));
        assert!(opened[0].contains("mined=false"), "{opened:?}");
        for row in ["28 85 Annot_1", "28 85 Annot_1", "28 85 Annot_1", "28 85"] {
            ok(&e, &format!("row db {row}"));
        }
        ok(&e, "mine db");
        let ck = ok(&e, "checkpoint db");
        assert!(ck[0].contains("position="), "{ck:?}");
        ok(&e, "annotate db 3 Annot_1");
        ok(&e, "flush db");
        let stats = ok(&e, "stats db");
        assert!(
            stats.iter().any(|l| l.contains("wal_position=")),
            "stats must carry wal counters: {stats:?}"
        );
        assert!(
            stats.iter().any(|l| l.contains("checkpoints=1")),
            "{stats:?}"
        );
        // `checkpoint` on a memory-only dataset is a client error.
        ok(&e, "open mem");
        assert!(e.execute("checkpoint mem").lines[0].starts_with("ERR"));

        // Drop the dataset (stops its writer), then reopen from disk:
        // the protocol round-trips durable state without any embedding.
        ok(&e, "drop db");
        let reopened = ok(&e, &format!("open db dir {dir_tok}"));
        assert!(reopened[0].contains("mined=true"), "{reopened:?}");
        assert!(reopened[0].contains("tuples=4"), "{reopened:?}");
        // Checkpointed thresholds win over the (defaulted) open args.
        assert!(reopened[0].contains("alpha=0.4"), "{reopened:?}");
        let verify = ok(&e, "verify db");
        assert!(verify[0].contains("exact=true"), "{verify:?}");
        let recs = ok(&e, "recommend db tuple 3");
        assert!(
            recs[0].contains("0 recommendations"),
            "post-crash state serves"
        );
        ok(&e, "drop db");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_maintenance_clauses_parse_and_report() {
        let dir =
            std::env::temp_dir().join(format!("anno-protocol-maintenance-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_tok = dir.to_str().unwrap().to_string();
        let e = engine();

        // Maintenance clauses demand a durable dataset.
        assert!(e.execute("open db auto_checkpoint records=4").lines[0].starts_with("ERR"));
        assert!(e.execute("open db sync grouped").lines[0].starts_with("ERR"));
        assert!(e
            .execute(&format!("open db dir {dir_tok} auto_checkpoint"))
            .lines[0]
            .starts_with("ERR"));
        assert!(e
            .execute(&format!("open db dir {dir_tok} auto_checkpoint banana=1"))
            .lines[0]
            .starts_with("ERR"));
        assert!(e
            .execute(&format!("open db dir {dir_tok} sync sometimes"))
            .lines[0]
            .starts_with("ERR"));

        let opened = ok(
            &e,
            &format!("open db 0.4 0.7 dir {dir_tok} auto_checkpoint records=3 bytes=1048576"),
        );
        assert!(
            opened[0].contains("sync=grouped"),
            "grouped sync is the durable default: {opened:?}"
        );
        assert!(
            opened[0].contains("auto_checkpoint=bytes=1048576+records=3"),
            "{opened:?}"
        );
        for row in ["28 85 Annot_1", "28 85 Annot_1", "28 85 Annot_1", "28 85"] {
            ok(&e, &format!("row db {row}"));
        }
        ok(&e, "mine db");
        ok(&e, "annotate db 3 Annot_1");
        ok(&e, "flush db");
        let stats = ok(&e, "stats db");
        assert!(
            stats
                .iter()
                .any(|l| l.contains("wal_sync=grouped") && l.contains("auto_checkpoint=")),
            "{stats:?}"
        );
        assert!(
            stats.iter().any(|l| l.contains("grouped_submitted=")),
            "grouped datasets report committer counters: {stats:?}"
        );
        assert!(
            stats.iter().any(|l| l.contains("wal_since_ckpt_records=")),
            "{stats:?}"
        );
        // records=3: the appends crossed it at least once. How many times
        // depends on how the un-flushed rows coalesced (1–4 drains), so
        // pin only "fired at all". The commit runs on a helper thread, so
        // poll briefly for the counter to land.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = ok(&e, "stats db");
            if stats
                .iter()
                .any(|l| l.contains("auto_checkpoints=") && !l.contains("auto_checkpoints=0"))
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "the policy fired without any checkpoint command: {stats:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // Reopen with per-append sync: clauses parse, recovery holds.
        ok(&e, "drop db");
        let reopened = ok(&e, &format!("open db dir {dir_tok} sync per_append"));
        assert!(reopened[0].contains("sync=per_append"), "{reopened:?}");
        assert!(reopened[0].contains("mined=true"), "{reopened:?}");
        assert!(reopened[0].contains("auto_checkpoint=off"), "{reopened:?}");
        let verify = ok(&e, "verify db");
        assert!(verify[0].contains("exact=true"), "{verify:?}");
        ok(&e, "drop db");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observability_verbs_report_metrics_and_events() {
        let dir = std::env::temp_dir().join(format!("anno-protocol-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_tok = dir.to_str().unwrap().to_string();
        let e = engine();
        ok(
            &e,
            &format!("open db 0.4 0.7 dir {dir_tok} auto_checkpoint records=2"),
        );
        for row in ["28 85 Annot_1", "28 85 Annot_1", "28 85 Annot_1", "28 85"] {
            ok(&e, &format!("row db {row}"));
            ok(&e, "flush db");
        }
        ok(&e, "mine db");
        ok(&e, "rules db");

        // `events db`: recovery is journaled at open; the auto-checkpoint
        // policy (records=2) fired during the flushed row stream.
        let events = ok(&e, "events db");
        assert!(events.iter().any(|l| l.contains("recovery")), "{events:?}");
        assert!(
            events.iter().any(|l| l.contains("auto_checkpoint")),
            "{events:?}"
        );
        // Bounded form.
        let one = ok(&e, "events db 1");
        assert!(one[0].starts_with("OK 1 events db"), "{one:?}");
        assert_eq!(one.len(), 3, "header + 1 event + terminator: {one:?}");

        // `metrics` carries the Prometheus families.
        let metrics = ok(&e, "metrics");
        assert!(
            metrics
                .iter()
                .any(|l| l.contains("anno_query_latency_ns_count{dataset=\"db\"} 1")),
            "{metrics:?}"
        );
        assert!(
            metrics
                .iter()
                .any(|l| l.starts_with("anno_write_queue_depth{dataset=\"db\"}")),
            "{metrics:?}"
        );

        // Argless `stats`: one line per dataset + service-level lines.
        ok(&e, "open mem");
        let stats = ok(&e, "stats");
        assert!(stats[0].contains("service stats 2 datasets"), "{stats:?}");
        assert!(
            stats
                .iter()
                .any(|l| l.starts_with("db ") && l.contains("fsyncs_per_drain=")),
            "{stats:?}"
        );
        assert!(
            stats
                .iter()
                .any(|l| l.starts_with("mem ") && l.contains("mined=false")),
            "{stats:?}"
        );
        assert!(
            stats.iter().any(|l| l.contains("grouped_submitted=")),
            "{stats:?}"
        );

        // Service-level events: grouped sync closed at least one window.
        let svc_events = ok(&e, "events");
        assert!(svc_events[0].contains("events service"), "{svc_events:?}");
        assert!(
            svc_events.iter().any(|l| l.contains("group_commit_window")),
            "{svc_events:?}"
        );

        assert!(e.execute("events nosuch").lines[0].starts_with("ERR"));
        ok(&e, "drop db");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replication_verbs_attach_fence_catchup_and_promote() {
        let dir = std::env::temp_dir().join(format!("anno-protocol-repl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_tok = dir.to_str().unwrap().to_string();
        let e = engine();

        // Leader: durable, per-append sync (every record durable at ack).
        ok(
            &e,
            &format!("open db 0.4 0.7 dir {dir_tok} sync per_append"),
        );
        for row in ["28 85 Annot_1", "28 85 Annot_1", "28 85 Annot_1", "28 85"] {
            ok(&e, &format!("row db {row}"));
        }
        ok(&e, "mine db");
        ok(&e, "flush db");

        // Attach grammar errors first.
        assert!(e.execute("attach f").lines[0].starts_with("ERR"));
        assert!(e
            .execute(&format!("attach f dir {dir_tok} poll_ms abc"))
            .lines[0]
            .starts_with("ERR"));

        // Follower tails the same directory while the leader is live.
        let attached = ok(&e, &format!("attach f dir {dir_tok} poll_ms 10"));
        assert!(attached[0].contains("role=follower"), "{attached:?}");
        let caught = ok(&e, "catchup f");
        assert!(
            caught[0].contains("role=follower") && caught[0].contains("bytes_behind=0"),
            "{caught:?}"
        );

        // The follower serves the leader's mined state read-only.
        let rules = ok(&e, "rules f");
        assert!(rules[0].contains("3 rules"), "{rules:?}");
        // Every write verb is fenced with the *typed* read-only error —
        // not ShutDown: the follower is healthy, just not the leader.
        for verb in [
            "row f 1 2",
            "annotate f 0 X",
            "unannotate f 0 Annot_1",
            "delete f 0",
            "mine f",
            "checkpoint f",
        ] {
            let reply = e.execute(verb);
            assert!(
                reply.lines[0].starts_with("ERR") && reply.lines[0].contains("read-only follower"),
                "{verb:?} -> {:?}",
                reply.lines
            );
        }
        // `stats` on a follower renders the role and lag fields.
        let stats = ok(&e, "stats f");
        assert!(
            stats
                .iter()
                .any(|l| l.contains("role=follower") && l.contains("applied_seq=")),
            "{stats:?}"
        );
        // `catchup` against a leader is a client error.
        assert!(e.execute("catchup db").lines[0].starts_with("ERR"));
        // Promote against a live leader is refused (wal.lock held) and
        // the follower keeps serving.
        assert!(e.execute("promote f").lines[0].starts_with("ERR"));
        assert!(ok(&e, "rules f")[0].contains("3 rules"));

        // Kill the leader; promote the follower; writes flow again.
        ok(&e, "drop db");
        let promoted = ok(&e, "promote f");
        assert!(promoted[0].contains("role=leader"), "{promoted:?}");
        assert!(promoted[0].contains("mined=true"), "{promoted:?}");
        let stats = ok(&e, "stats f");
        assert!(stats.iter().any(|l| l == "role=leader"), "{stats:?}");
        ok(&e, "annotate f 3 Annot_1");
        ok(&e, "flush f");
        assert!(ok(&e, "verify f")[0].contains("exact=true"));
        // Re-promote and catchup are now client errors.
        assert!(e.execute("promote f").lines[0].starts_with("ERR"));
        assert!(e.execute("catchup f").lines[0].starts_with("ERR"));

        ok(&e, "drop f");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_query_items_yield_empty_results() {
        let e = engine();
        ok(&e, "open db 0.4 0.7");
        ok(&e, "row db 1 2 X");
        ok(&e, "row db 1 2 X");
        ok(&e, "mine db");
        let rules = ok(&e, "rules db contains 999999");
        assert!(rules[0].contains("0 rules"), "{rules:?}");
        let recs = ok(&e, "recommend db items NoSuchAnnotation");
        assert!(recs[0].contains("0 recommendations"), "{recs:?}");
    }
}
