//! Lock-free per-dataset operation counters.
//!
//! Every counter is a relaxed [`AtomicU64`]: the numbers are service
//! telemetry, not synchronization, so the cheapest ordering is correct.
//! [`Metrics::report`] takes a point-in-time copy for rendering.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Live counters for one dataset.
#[derive(Debug, Default)]
pub struct Metrics {
    rule_queries: AtomicU64,
    recommend_queries: AtomicU64,
    snapshot_reads: AtomicU64,
    read_nanos: AtomicU64,
    ops_enqueued: AtomicU64,
    updates_enqueued: AtomicU64,
    batches_applied: AtomicU64,
    ops_coalesced: AtomicU64,
    snapshots_published: AtomicU64,
    write_nanos: AtomicU64,
    flushes: AtomicU64,
    checkpoints: AtomicU64,
    auto_checkpoints: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one snapshot pointer clone.
    pub fn record_snapshot_read(&self) {
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a rule-listing/filtering query taking `nanos`.
    pub fn record_rule_query(&self, nanos: u64) {
        self.rule_queries.fetch_add(1, Ordering::Relaxed);
        self.read_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record a recommendation query taking `nanos`.
    pub fn record_recommend_query(&self, nanos: u64) {
        self.recommend_queries.fetch_add(1, Ordering::Relaxed);
        self.read_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record an enqueue of one op carrying `updates` individual updates.
    pub fn record_enqueue(&self, updates: u64) {
        self.ops_enqueued.fetch_add(1, Ordering::Relaxed);
        self.updates_enqueued.fetch_add(updates, Ordering::Relaxed);
    }

    /// Record one drained write pass: `batches` maintenance batches after
    /// folding away `coalesced` ops, taking `nanos` of writer time.
    pub fn record_write_pass(&self, batches: u64, coalesced: u64, nanos: u64) {
        self.batches_applied.fetch_add(batches, Ordering::Relaxed);
        self.ops_coalesced.fetch_add(coalesced, Ordering::Relaxed);
        self.write_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record one snapshot publication.
    pub fn record_publish(&self) {
        self.snapshots_published.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `flush` barrier.
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one durability checkpoint taken.
    pub fn record_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one checkpoint the maintenance policy triggered by itself
    /// (also counted by [`Metrics::record_checkpoint`]).
    pub fn record_auto_checkpoint(&self) {
        self.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            rule_queries: self.rule_queries.load(Ordering::Relaxed),
            recommend_queries: self.recommend_queries.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            read_nanos: self.read_nanos.load(Ordering::Relaxed),
            ops_enqueued: self.ops_enqueued.load(Ordering::Relaxed),
            updates_enqueued: self.updates_enqueued.load(Ordering::Relaxed),
            batches_applied: self.batches_applied.load(Ordering::Relaxed),
            ops_coalesced: self.ops_coalesced.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            write_nanos: self.write_nanos.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            auto_checkpoints: self.auto_checkpoints.load(Ordering::Relaxed),
        }
    }
}

/// Time `f`, returning its result and the elapsed nanoseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    (
        out,
        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    )
}

/// A frozen copy of one dataset's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Rule-listing/filtering queries served.
    pub rule_queries: u64,
    /// Recommendation queries served.
    pub recommend_queries: u64,
    /// Snapshot pointer clones handed to readers.
    pub snapshot_reads: u64,
    /// Total nanoseconds spent inside read-path query evaluation.
    pub read_nanos: u64,
    /// Ops accepted by the update queue.
    pub ops_enqueued: u64,
    /// Individual updates inside those ops.
    pub updates_enqueued: u64,
    /// Maintenance batches actually applied by the writer.
    pub batches_applied: u64,
    /// Ops folded into a neighbouring batch by coalescing.
    pub ops_coalesced: u64,
    /// Snapshots atomically published.
    pub snapshots_published: u64,
    /// Total nanoseconds of writer time (apply + snapshot build).
    pub write_nanos: u64,
    /// Flush barriers awaited.
    pub flushes: u64,
    /// Durability checkpoints taken.
    pub checkpoints: u64,
    /// Checkpoints triggered by the automatic policy (a subset of
    /// `checkpoints`).
    pub auto_checkpoints: u64,
}

impl MetricsReport {
    /// Mean read-path latency in nanoseconds, if any reads happened.
    pub fn mean_read_nanos(&self) -> Option<u64> {
        let n = self.rule_queries + self.recommend_queries;
        (n > 0).then(|| self.read_nanos / n)
    }

    /// Render as `key=value` pairs for the protocol's `stats` command.
    pub fn render(&self) -> String {
        format!(
            "rule_queries={} recommend_queries={} snapshot_reads={} \
             ops_enqueued={} updates_enqueued={} batches_applied={} \
             ops_coalesced={} snapshots_published={} flushes={} \
             checkpoints={} auto_checkpoints={} read_nanos={} write_nanos={}",
            self.rule_queries,
            self.recommend_queries,
            self.snapshot_reads,
            self.ops_enqueued,
            self.updates_enqueued,
            self.batches_applied,
            self.ops_coalesced,
            self.snapshots_published,
            self.flushes,
            self.checkpoints,
            self.auto_checkpoints,
            self.read_nanos,
            self.write_nanos,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_report() {
        let m = Metrics::new();
        m.record_snapshot_read();
        m.record_rule_query(100);
        m.record_recommend_query(300);
        m.record_enqueue(5);
        m.record_write_pass(2, 3, 1_000);
        m.record_publish();
        m.record_flush();
        m.record_checkpoint();
        m.record_auto_checkpoint();
        let r = m.report();
        assert_eq!(r.snapshot_reads, 1);
        assert_eq!(r.rule_queries, 1);
        assert_eq!(r.recommend_queries, 1);
        assert_eq!(r.mean_read_nanos(), Some(200));
        assert_eq!(r.ops_enqueued, 1);
        assert_eq!(r.updates_enqueued, 5);
        assert_eq!(r.batches_applied, 2);
        assert_eq!(r.ops_coalesced, 3);
        assert_eq!(r.snapshots_published, 1);
        assert_eq!(r.flushes, 1);
        assert_eq!(r.checkpoints, 1);
        assert_eq!(r.auto_checkpoints, 1);
        assert!(r.render().contains("updates_enqueued=5"));
        assert!(r.render().contains("checkpoints=1"));
        assert!(r.render().contains("auto_checkpoints=1"));
    }
}
