//! Lock-free per-dataset operation counters, latency/size histograms,
//! and level gauges.
//!
//! Every counter is a relaxed [`AtomicU64`] and every histogram a
//! fixed array of relaxed atomics ([`anno_metrics::Histogram`]): the
//! numbers are service telemetry, not synchronization, so the cheapest
//! ordering is correct and recording never blocks a hot path.
//! [`Metrics::report`] takes a point-in-time copy of the counters for
//! rendering; [`Metrics::observe`] freezes everything — counters,
//! histogram snapshots, gauge levels — for the exposition endpoint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use anno_metrics::{Gauge, Histogram, HistogramSnapshot};

/// Live counters for one dataset.
#[derive(Debug, Default)]
pub struct Metrics {
    rule_queries: AtomicU64,
    recommend_queries: AtomicU64,
    snapshot_reads: AtomicU64,
    read_nanos: AtomicU64,
    ops_enqueued: AtomicU64,
    updates_enqueued: AtomicU64,
    batches_applied: AtomicU64,
    ops_coalesced: AtomicU64,
    snapshots_published: AtomicU64,
    write_nanos: AtomicU64,
    flushes: AtomicU64,
    checkpoints: AtomicU64,
    auto_checkpoints: AtomicU64,
    /// Write passes the writer completed (one per coalesced drain).
    drains: AtomicU64,
    /// fsyncs this dataset's own log issued (per-append syncs and
    /// segment seals; grouped-sync fsyncs live on the shared committer).
    wal_fsyncs: AtomicU64,
    /// `discover` queries served from the published discovery snapshot.
    discover_queries: AtomicU64,
    /// Protocol-side name resolutions answered by the lookaside cache.
    name_cache_hits: AtomicU64,
    /// Resolutions that fell through to the vocabulary HAMT (and, when
    /// the name existed, primed the cache).
    name_cache_misses: AtomicU64,
    /// Writes refused with the typed `Overloaded` soft error because the
    /// bounded queue (or unacked-drain window) was full.
    admission_shed: AtomicU64,
    /// Times the sharded front end suspended a connection's reads to
    /// exert TCP backpressure on this dataset's behalf.
    backpressure_stalls: AtomicU64,
    // Latency/size distributions (see `anno_metrics::hist`).
    query_latency: Histogram,
    drain_latency: Histogram,
    drain_batch: Histogram,
    fsync_latency: Histogram,
    checkpoint_encode: Histogram,
    /// Incremental discovery-index refresh cost per drain (ns).
    discover_update: Histogram,
    // Levels.
    queue_depth: Gauge,
    unacked_drains: Gauge,
    /// 1 when the tenant's QoS class is bulk, 0 for interactive.
    qos_bulk: Gauge,
    segments: Gauge,
    vocab_chunks: Gauge,
    wal_backlog_bytes: Gauge,
    // Discovery (all zero until the first mine publishes an index).
    /// Annotation pairs the discovery index tracks.
    discover_pairs_tracked: Gauge,
    /// Entries in the published cross-namespace top-k.
    discover_topk_cross: Gauge,
    /// Entries in the published within-namespace top-k.
    discover_topk_within: Gauge,
    /// Cost of the most recent incremental discovery refresh (ns).
    discover_last_update_ns: Gauge,
    // Replication (all zero on a plain leader that was never attached).
    /// 0 = leader, 1 = follower.
    repl_follower: Gauge,
    /// Highest leader log segment the follower has fully applied up to.
    repl_applied_seq: Gauge,
    /// Highest log segment present in the leader's directory.
    repl_leader_seq: Gauge,
    /// On-disk log bytes the follower has not applied yet.
    repl_bytes_behind: Gauge,
    /// Shipped log records the follower has applied.
    repl_records_applied: Gauge,
    /// Checkpoint restarts the follower's tail cursor performed.
    repl_restarts: Gauge,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one snapshot pointer clone.
    pub fn record_snapshot_read(&self) {
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a rule-listing/filtering query taking `nanos`.
    pub fn record_rule_query(&self, nanos: u64) {
        self.rule_queries.fetch_add(1, Ordering::Relaxed);
        self.read_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.query_latency.record(nanos);
    }

    /// Record a recommendation query taking `nanos`.
    pub fn record_recommend_query(&self, nanos: u64) {
        self.recommend_queries.fetch_add(1, Ordering::Relaxed);
        self.read_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.query_latency.record(nanos);
    }

    /// Record an enqueue of one op carrying `updates` individual updates.
    pub fn record_enqueue(&self, updates: u64) {
        self.ops_enqueued.fetch_add(1, Ordering::Relaxed);
        self.updates_enqueued.fetch_add(updates, Ordering::Relaxed);
    }

    /// Record one drained write pass: `batches` maintenance batches after
    /// folding away `coalesced` ops, taking `nanos` of writer time
    /// (apply + publish — the drain latency distribution).
    pub fn record_write_pass(&self, batches: u64, coalesced: u64, nanos: u64) {
        self.batches_applied.fetch_add(batches, Ordering::Relaxed);
        self.ops_coalesced.fetch_add(coalesced, Ordering::Relaxed);
        self.write_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.drains.fetch_add(1, Ordering::Relaxed);
        self.drain_latency.record(nanos);
    }

    /// Record the size (individual updates) of one drained batch.
    pub fn record_drain_size(&self, updates: u64) {
        self.drain_batch.record(updates);
    }

    /// Record one fsync of this dataset's log taking `nanos`.
    pub fn record_fsync(&self, nanos: u64) {
        self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        self.fsync_latency.record(nanos);
    }

    /// Record one checkpoint state encode taking `nanos`.
    pub fn record_checkpoint_encode(&self, nanos: u64) {
        self.checkpoint_encode.record(nanos);
    }

    /// Record a `discover` query taking `nanos`.
    pub fn record_discover_query(&self, nanos: u64) {
        self.discover_queries.fetch_add(1, Ordering::Relaxed);
        self.read_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.query_latency.record(nanos);
    }

    /// Record one lookaside name resolution (`hit` = answered from the
    /// cache without touching the vocabulary).
    pub fn record_name_cache(&self, hit: bool) {
        if hit {
            self.name_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.name_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one write shed by admission control.
    pub fn record_admission_shed(&self) {
        self.admission_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes shed by admission control so far.
    pub fn admission_shed(&self) -> u64 {
        self.admission_shed.load(Ordering::Relaxed)
    }

    /// Record one read-suspension backpressure stall.
    pub fn record_backpressure_stall(&self) {
        self.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Backpressure stalls recorded so far.
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls.load(Ordering::Relaxed)
    }

    /// Mirror the tenant's QoS class (`true` = bulk).
    pub fn set_qos_bulk(&self, bulk: bool) {
        self.qos_bulk.set(u64::from(bulk));
    }

    /// Record one incremental discovery-index refresh taking `nanos`.
    pub fn record_discover_update(&self, nanos: u64) {
        self.discover_update.record(nanos);
        self.discover_last_update_ns.set(nanos);
    }

    /// Mirror the discovery index's shape after a refresh: tracked pair
    /// count and the published top-k sizes per class.
    pub fn set_discovery_shape(&self, pairs_tracked: u64, topk_cross: u64, topk_within: u64) {
        self.discover_pairs_tracked.set(pairs_tracked);
        self.discover_topk_cross.set(topk_cross);
        self.discover_topk_within.set(topk_within);
    }

    /// Record one snapshot publication.
    pub fn record_publish(&self) {
        self.snapshots_published.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `flush` barrier.
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one durability checkpoint taken.
    pub fn record_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one checkpoint the maintenance policy triggered by itself
    /// (also counted by [`Metrics::record_checkpoint`]).
    pub fn record_auto_checkpoint(&self) {
        self.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Mirror the write queue's pending-update count.
    pub fn set_queue_depth(&self, updates: u64) {
        self.queue_depth.set(updates);
    }

    /// Current pending updates in the write queue.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.get()
    }

    /// Mirror the writer's unacked pipelined-drain count.
    pub fn set_unacked_drains(&self, drains: u64) {
        self.unacked_drains.set(drains);
    }

    /// Drains applied and published but not yet durably acked.
    pub fn unacked_drains(&self) -> u64 {
        self.unacked_drains.get()
    }

    /// Mirror the relation's segment and vocab-chunk counts (refreshed
    /// by the writer after each drain).
    pub fn set_store_shape(&self, segments: u64, vocab_chunks: u64) {
        self.segments.set(segments);
        self.vocab_chunks.set(vocab_chunks);
    }

    /// Mirror the log's since-checkpoint byte accumulation.
    pub fn set_wal_backlog_bytes(&self, bytes: u64) {
        self.wal_backlog_bytes.set(bytes);
    }

    /// Mirror the dataset's replication role (`true` = follower).
    pub fn set_role_follower(&self, follower: bool) {
        self.repl_follower.set(u64::from(follower));
    }

    /// Mirror the follower's lag watermarks after one tail poll:
    /// applied/leader segment sequence numbers, byte lag, cumulative
    /// applied-record and restart counts.
    pub fn set_replication_lag(
        &self,
        applied_seq: u64,
        leader_seq: u64,
        bytes_behind: u64,
        records_applied: u64,
        restarts: u64,
    ) {
        self.repl_applied_seq.set(applied_seq);
        self.repl_leader_seq.set(leader_seq);
        self.repl_bytes_behind.set(bytes_behind);
        self.repl_records_applied.set(records_applied);
        self.repl_restarts.set(restarts);
    }

    /// Point-in-time copy of all counters.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            rule_queries: self.rule_queries.load(Ordering::Relaxed),
            recommend_queries: self.recommend_queries.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            read_nanos: self.read_nanos.load(Ordering::Relaxed),
            ops_enqueued: self.ops_enqueued.load(Ordering::Relaxed),
            updates_enqueued: self.updates_enqueued.load(Ordering::Relaxed),
            batches_applied: self.batches_applied.load(Ordering::Relaxed),
            ops_coalesced: self.ops_coalesced.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            write_nanos: self.write_nanos.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            auto_checkpoints: self.auto_checkpoints.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            discover_queries: self.discover_queries.load(Ordering::Relaxed),
            name_cache_hits: self.name_cache_hits.load(Ordering::Relaxed),
            name_cache_misses: self.name_cache_misses.load(Ordering::Relaxed),
            admission_shed: self.admission_shed.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            discover_pairs_tracked: self.discover_pairs_tracked.get(),
            discover_topk: self.discover_topk_cross.get() + self.discover_topk_within.get(),
            discover_last_update_ns: self.discover_last_update_ns.get(),
        }
    }

    /// Freeze everything — counters, histograms, gauges — for the
    /// exposition endpoint.
    pub fn observe(&self) -> DatasetObs {
        DatasetObs {
            report: self.report(),
            query_latency: self.query_latency.snapshot(),
            drain_latency: self.drain_latency.snapshot(),
            drain_batch: self.drain_batch.snapshot(),
            fsync_latency: self.fsync_latency.snapshot(),
            checkpoint_encode: self.checkpoint_encode.snapshot(),
            discover_update: self.discover_update.snapshot(),
            queue_depth: self.queue_depth.get(),
            unacked_drains: self.unacked_drains.get(),
            qos_bulk: self.qos_bulk.get() != 0,
            segments: self.segments.get(),
            vocab_chunks: self.vocab_chunks.get(),
            wal_backlog_bytes: self.wal_backlog_bytes.get(),
            discover_pairs_tracked: self.discover_pairs_tracked.get(),
            discover_topk_cross: self.discover_topk_cross.get(),
            discover_topk_within: self.discover_topk_within.get(),
            discover_last_update_ns: self.discover_last_update_ns.get(),
            follower: self.repl_follower.get() != 0,
            repl_applied_seq: self.repl_applied_seq.get(),
            repl_leader_seq: self.repl_leader_seq.get(),
            repl_bytes_behind: self.repl_bytes_behind.get(),
            repl_records_applied: self.repl_records_applied.get(),
            repl_restarts: self.repl_restarts.get(),
        }
    }
}

/// Time `f`, returning its result and the elapsed nanoseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    (
        out,
        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    )
}

/// Everything one dataset exposes to a scrape, frozen at one instant.
#[derive(Debug, Clone)]
pub struct DatasetObs {
    /// The plain counters.
    pub report: MetricsReport,
    /// Rule + recommend query latency (ns).
    pub query_latency: HistogramSnapshot,
    /// Drain apply+publish latency (ns).
    pub drain_latency: HistogramSnapshot,
    /// Drain batch size (individual updates per drain).
    pub drain_batch: HistogramSnapshot,
    /// This log's own fsync latency (ns; per-append syncs and seals).
    pub fsync_latency: HistogramSnapshot,
    /// Checkpoint state-encode latency (ns).
    pub checkpoint_encode: HistogramSnapshot,
    /// Incremental discovery-index refresh cost per drain (ns).
    pub discover_update: HistogramSnapshot,
    /// Pending updates in the write queue.
    pub queue_depth: u64,
    /// Applied-but-unacked pipelined drains.
    pub unacked_drains: u64,
    /// `true` when the tenant's QoS class is bulk.
    pub qos_bulk: bool,
    /// Relation segments as of the last drain.
    pub segments: u64,
    /// Vocabulary chunks as of the last drain.
    pub vocab_chunks: u64,
    /// Log bytes accumulated since the last checkpoint.
    pub wal_backlog_bytes: u64,
    /// Annotation pairs the discovery index tracks.
    pub discover_pairs_tracked: u64,
    /// Entries in the published cross-namespace discovery top-k.
    pub discover_topk_cross: u64,
    /// Entries in the published within-namespace discovery top-k.
    pub discover_topk_within: u64,
    /// Cost of the most recent incremental discovery refresh (ns).
    pub discover_last_update_ns: u64,
    /// `true` when the dataset is a read-only follower replica.
    pub follower: bool,
    /// Leader log segment the follower has applied up to (0 on leaders).
    pub repl_applied_seq: u64,
    /// Highest segment in the tailed leader directory (0 on leaders).
    pub repl_leader_seq: u64,
    /// On-disk log bytes not yet applied by the follower (0 on leaders).
    pub repl_bytes_behind: u64,
    /// Shipped records the follower has applied (0 on leaders).
    pub repl_records_applied: u64,
    /// Checkpoint restarts the follower performed (0 on leaders).
    pub repl_restarts: u64,
}

/// A frozen copy of one dataset's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Rule-listing/filtering queries served.
    pub rule_queries: u64,
    /// Recommendation queries served.
    pub recommend_queries: u64,
    /// Snapshot pointer clones handed to readers.
    pub snapshot_reads: u64,
    /// Total nanoseconds spent inside read-path query evaluation.
    pub read_nanos: u64,
    /// Ops accepted by the update queue.
    pub ops_enqueued: u64,
    /// Individual updates inside those ops.
    pub updates_enqueued: u64,
    /// Maintenance batches actually applied by the writer.
    pub batches_applied: u64,
    /// Ops folded into a neighbouring batch by coalescing.
    pub ops_coalesced: u64,
    /// Snapshots atomically published.
    pub snapshots_published: u64,
    /// Total nanoseconds of writer time (apply + snapshot build).
    pub write_nanos: u64,
    /// Flush barriers awaited.
    pub flushes: u64,
    /// Durability checkpoints taken.
    pub checkpoints: u64,
    /// Checkpoints triggered by the automatic policy (a subset of
    /// `checkpoints`).
    pub auto_checkpoints: u64,
    /// Write passes completed (one per coalesced drain).
    pub drains: u64,
    /// fsyncs issued by this dataset's own log.
    pub wal_fsyncs: u64,
    /// `discover` queries served.
    pub discover_queries: u64,
    /// Name resolutions answered by the lookaside cache.
    pub name_cache_hits: u64,
    /// Name resolutions that fell through to the vocabulary HAMT.
    pub name_cache_misses: u64,
    /// Writes refused with the `Overloaded` soft error.
    pub admission_shed: u64,
    /// Read-suspension backpressure stalls the front end recorded.
    pub backpressure_stalls: u64,
    /// Annotation pairs the discovery index currently tracks.
    pub discover_pairs_tracked: u64,
    /// Published discovery top-k size (cross + within classes).
    pub discover_topk: u64,
    /// Cost of the most recent incremental discovery refresh (ns).
    pub discover_last_update_ns: u64,
}

impl MetricsReport {
    /// Mean read-path latency in nanoseconds, if any reads happened.
    pub fn mean_read_nanos(&self) -> Option<u64> {
        let n = self.rule_queries + self.recommend_queries;
        (n > 0).then(|| self.read_nanos / n)
    }

    /// Mean writer time per drain in nanoseconds, if any drains ran.
    pub fn mean_write_nanos(&self) -> Option<u64> {
        (self.drains > 0).then(|| self.write_nanos / self.drains)
    }

    /// fsyncs this dataset's log issued per completed drain (0 when no
    /// drain has run; ~0 under grouped sync, where the shared committer
    /// issues the fsyncs instead).
    pub fn fsyncs_per_drain(&self) -> f64 {
        if self.drains == 0 {
            0.0
        } else {
            self.wal_fsyncs as f64 / self.drains as f64
        }
    }

    /// Render as `key=value` pairs for the protocol's `stats` command.
    pub fn render(&self) -> String {
        format!(
            "rule_queries={} recommend_queries={} snapshot_reads={} \
             ops_enqueued={} updates_enqueued={} batches_applied={} \
             ops_coalesced={} snapshots_published={} flushes={} \
             checkpoints={} auto_checkpoints={} drains={} \
             read_nanos={} write_nanos={} mean_read_ns={} mean_write_ns={} \
             fsyncs_per_drain={:.2} discover_queries={} discover_pairs={} \
             discover_topk={} discover_last_update_ns={} \
             admission_shed={} backpressure_stalls={}",
            self.rule_queries,
            self.recommend_queries,
            self.snapshot_reads,
            self.ops_enqueued,
            self.updates_enqueued,
            self.batches_applied,
            self.ops_coalesced,
            self.snapshots_published,
            self.flushes,
            self.checkpoints,
            self.auto_checkpoints,
            self.drains,
            self.read_nanos,
            self.write_nanos,
            self.mean_read_nanos().unwrap_or(0),
            self.mean_write_nanos().unwrap_or(0),
            self.fsyncs_per_drain(),
            self.discover_queries,
            self.discover_pairs_tracked,
            self.discover_topk,
            self.discover_last_update_ns,
            self.admission_shed,
            self.backpressure_stalls,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_report() {
        let m = Metrics::new();
        m.record_snapshot_read();
        m.record_rule_query(100);
        m.record_recommend_query(300);
        m.record_enqueue(5);
        m.record_write_pass(2, 3, 1_000);
        m.record_publish();
        m.record_flush();
        m.record_checkpoint();
        m.record_auto_checkpoint();
        m.record_fsync(2_000);
        let r = m.report();
        assert_eq!(r.snapshot_reads, 1);
        assert_eq!(r.rule_queries, 1);
        assert_eq!(r.recommend_queries, 1);
        assert_eq!(r.mean_read_nanos(), Some(200));
        assert_eq!(r.ops_enqueued, 1);
        assert_eq!(r.updates_enqueued, 5);
        assert_eq!(r.batches_applied, 2);
        assert_eq!(r.ops_coalesced, 3);
        assert_eq!(r.snapshots_published, 1);
        assert_eq!(r.flushes, 1);
        assert_eq!(r.checkpoints, 1);
        assert_eq!(r.auto_checkpoints, 1);
        assert_eq!(r.drains, 1);
        assert_eq!(r.wal_fsyncs, 1);
        assert!(r.render().contains("updates_enqueued=5"));
        assert!(r.render().contains("checkpoints=1"));
        assert!(r.render().contains("auto_checkpoints=1"));
    }

    #[test]
    fn derived_ratios_render_in_stats_lines() {
        let m = Metrics::new();
        m.record_rule_query(100);
        m.record_recommend_query(300);
        m.record_write_pass(1, 0, 4_000);
        m.record_write_pass(1, 0, 2_000);
        m.record_fsync(500);
        m.record_fsync(500);
        m.record_fsync(500);
        let r = m.report();
        assert_eq!(r.mean_write_nanos(), Some(3_000));
        assert!((r.fsyncs_per_drain() - 1.5).abs() < 1e-9);
        let line = r.render();
        assert!(line.contains("mean_read_ns=200"), "{line}");
        assert!(line.contains("mean_write_ns=3000"), "{line}");
        assert!(line.contains("fsyncs_per_drain=1.50"), "{line}");
    }

    #[test]
    fn empty_report_renders_zero_ratios() {
        let r = Metrics::new().report();
        let line = r.render();
        assert!(line.contains("mean_read_ns=0"), "{line}");
        assert!(line.contains("mean_write_ns=0"), "{line}");
        assert!(line.contains("fsyncs_per_drain=0.00"), "{line}");
    }

    #[test]
    fn histograms_and_gauges_freeze_into_observe() {
        let m = Metrics::new();
        m.record_rule_query(1_000);
        m.record_rule_query(100_000);
        m.record_write_pass(1, 0, 5_000);
        m.record_drain_size(128);
        m.record_checkpoint_encode(9_000);
        m.set_queue_depth(7);
        m.set_unacked_drains(2);
        m.set_store_shape(3, 4);
        m.set_wal_backlog_bytes(4096);
        let obs = m.observe();
        assert_eq!(obs.query_latency.count(), 2);
        assert!(obs.query_latency.quantile(0.99) >= 100_000);
        assert_eq!(obs.drain_latency.count(), 1);
        assert_eq!(obs.drain_batch.count(), 1);
        assert_eq!(obs.checkpoint_encode.count(), 1);
        assert_eq!(obs.queue_depth, 7);
        assert_eq!(obs.unacked_drains, 2);
        assert_eq!(obs.segments, 3);
        assert_eq!(obs.vocab_chunks, 4);
        assert_eq!(obs.wal_backlog_bytes, 4096);
        assert_eq!(m.queue_depth(), 7);
        assert_eq!(m.unacked_drains(), 2);
    }
}
