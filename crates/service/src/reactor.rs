//! Worker-per-core sharded TCP front end on a std-only readiness reactor.
//!
//! The workspace is dependency-free by construction (vendored stubs only,
//! no registry access), so this is an epoll/mio-*style* reactor built
//! entirely on `std::net`: every registered source is a non-blocking
//! [`TcpStream`] probe (a `try_clone` of the owner's socket), and
//! [`Reactor::poll`] discovers read readiness with `peek` — data pending,
//! orderly EOF, and socket errors all report readable so the owner's next
//! read observes them. No `unsafe`, no FFI, level-triggered semantics.
//!
//! On top of it, [`serve_sharded`] runs the `annod` serving layer the
//! ROADMAP's heavy-traffic item calls for:
//!
//! * one accept loop **hashes each connection to a shard at accept
//!   time** (peer-address hash), so a connection is owned by exactly one
//!   shard thread for its whole life and shards share nothing but the
//!   [`Engine`];
//! * N **shard event loops** (default one per core) parse the line
//!   protocol non-blockingly from per-connection buffers and execute
//!   commands through [`Engine::execute_typed`];
//! * **admission control**: write verbs go through the non-blocking
//!   [`try_enqueue`](crate::dataset::Dataset::try_enqueue) path, so a
//!   full tenant queue (or unacked-drain window) sheds with the typed
//!   [`ServiceError::Overloaded`] soft error instead of parking the
//!   event loop. Connections that keep flooding a saturated **bulk**
//!   tenant stop being polled for reads until the writer drains below
//!   half the cap — natural TCP backpressure with hysteresis — while
//!   **interactive** tenants keep getting fast errors so their latency
//!   stays bounded;
//! * **QoS fairness**: each connection gets a per-tick command budget
//!   from the class of the dataset it last wrote
//!   ([`BULK_CMDS_PER_TICK`] vs [`INTERACTIVE_CMDS_PER_TICK`]), so a
//!   bulk loader pipelining thousands of commands cannot monopolize its
//!   shard's loop and starve interactive tenants of drain slots;
//! * **hostile-client bounds**: per-connection input is capped (a
//!   newline-free flood is answered with an error and closed, a
//!   slow-loris dribbler just sits in its buffer costing nothing), and
//!   buffered replies past [`OUT_HIGH_WATER`] suspend reads until the
//!   peer drains them.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::error::ServiceError;
use crate::protocol::Engine;
use crate::queue::QosClass;
use crate::server::AcceptBackoff;
use crate::service::Service;

/// Identifies one registered source within a [`Reactor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Which readiness a registered source should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Report the source when bytes (or EOF, or an error) are pending.
    pub readable: bool,
    /// Report the source as a write candidate. The reactor cannot probe
    /// kernel send-buffer space without `unsafe`, so write readiness is
    /// optimistic: owners must treat `WouldBlock` from their own `write`
    /// as the real signal and retry on a later tick.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// No readiness at all — the source stays registered but silent
    /// (how a shard suspends a connection to exert TCP backpressure).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Reactor::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registered source.
    pub token: Token,
    /// Bytes, EOF, or a socket error are observable by a read.
    pub readable: bool,
    /// The source asked for write interest (see [`Interest::writable`]).
    pub writable: bool,
}

/// How long [`Reactor::poll`] naps between readiness scans while nothing
/// is readable. Bounds the wakeup latency a freshly-written byte sees.
const PARK: Duration = Duration::from_millis(1);

struct Slot {
    probe: TcpStream,
    interest: Interest,
}

/// A std-only readiness reactor over non-blocking [`TcpStream`] probes.
///
/// Registration clones the stream (`try_clone` shares the descriptor),
/// marks it non-blocking — which flips the *owner's* handle too, exactly
/// what an event-loop owner wants — and probes readability with
/// zero-consumption `peek`s during [`Reactor::poll`].
pub struct Reactor {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
}

impl Reactor {
    /// An empty reactor.
    pub fn new() -> Reactor {
        Reactor {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Register `source`, returning its token. Tokens of deregistered
    /// sources are reused.
    pub fn register(&mut self, source: &TcpStream, interest: Interest) -> io::Result<Token> {
        let probe = source.try_clone()?;
        probe.set_nonblocking(true)?;
        let slot = Slot { probe, interest };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(slot);
                idx
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        Ok(Token(idx))
    }

    /// Replace a source's interest. `false` if the token is not live.
    pub fn set_interest(&mut self, token: Token, interest: Interest) -> bool {
        match self.slots.get_mut(token.0) {
            Some(Some(slot)) => {
                slot.interest = interest;
                true
            }
            _ => false,
        }
    }

    /// Drop a source, freeing its token for reuse. `false` if not live.
    pub fn deregister(&mut self, token: Token) -> bool {
        match self.slots.get_mut(token.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.free.push(token.0);
                true
            }
            _ => false,
        }
    }

    /// Currently registered sources.
    pub fn registered(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Fill `events` with every source that is ready, waiting up to
    /// `timeout` for at least one *readable* source. Write-interest
    /// events never cut the wait short (write readiness is optimistic —
    /// see [`Interest::writable`]), so a loop with only stalled writers
    /// parks instead of spinning. Returns the event count.
    pub fn poll(&self, events: &mut Vec<Event>, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        loop {
            self.scan(events);
            if events.iter().any(|e| e.readable) {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // anno-lint: allow(blocking-in-reactor) -- bounded idle park: no source is readable and the deadline caps the wait
            std::thread::sleep(PARK.min(deadline - now));
        }
        events.len()
    }

    /// One non-blocking readiness sweep.
    fn scan(&self, events: &mut Vec<Event>) {
        events.clear();
        let mut probe_buf = [0u8; 1];
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let readable = slot.interest.readable
                && match slot.probe.peek(&mut probe_buf) {
                    // Data pending, or Ok(0): orderly EOF — both are
                    // observable by the owner's next read.
                    Ok(_) => true,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                    // Deliver errors through the owner's read too.
                    Err(_) => true,
                };
            let writable = slot.interest.writable;
            if readable || writable {
                events.push(Event {
                    token: Token(idx),
                    readable,
                    writable,
                });
            }
        }
    }
}

impl Default for Reactor {
    fn default() -> Self {
        Reactor::new()
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("registered", &self.registered())
            .finish()
    }
}

/// Commands an interactive-classed connection may execute per shard tick.
pub const INTERACTIVE_CMDS_PER_TICK: usize = 64;

/// Commands a bulk-classed connection may execute per shard tick. The
/// small budget is the drain-slot fairness mechanism: a bulk loader
/// pipelining thousands of commands yields the loop back to interactive
/// connections every few commands instead of starving them.
pub const BULK_CMDS_PER_TICK: usize = 4;

/// Buffered-reply high-water mark per connection. Past it the shard stops
/// reading (and executing) for that connection until the peer drains its
/// replies — a client that sends but never reads cannot grow the daemon.
pub const OUT_HIGH_WATER: usize = 256 * 1024;

/// Input-buffer soft cap per connection: one maximal protocol line plus a
/// read quantum. Reads are suspended (TCP backpressure) while at the cap.
const INBUF_SOFT_CAP: usize = crate::server::MAX_LINE_BYTES as usize + 4096;

/// Shard poll timeout when no connection has a buffered complete line.
const POLL_TIMEOUT: Duration = Duration::from_millis(10);

/// Default shard count: one event loop per available core, clamped to a
/// sane range (a 128-core box does not need 128 accept queues for a line
/// protocol, and even a failed probe still gets a working server).
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

struct Conn {
    stream: TcpStream,
    token: Token,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Set when a write to this (bulk-classed) dataset was shed: reads
    /// stay suspended until the dataset reports admission headroom.
    stalled_on: Option<String>,
    /// Class of the dataset this connection last targeted with a write
    /// verb; drives the per-tick command budget.
    bulk: bool,
    /// Flush what is buffered, then close (after `quit` or a fatal
    /// protocol error).
    closing: bool,
    /// Peer closed its write side; keep serving buffered commands and
    /// flushing replies, then close.
    read_eof: bool,
    /// Socket error: drop immediately.
    dead: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    fn has_line(&self) -> bool {
        self.inbuf.contains(&b'\n')
    }

    /// Would a processing pass do work right now?
    fn hot(&self) -> bool {
        !self.closing
            && !self.dead
            && self.stalled_on.is_none()
            && self.has_line()
            && self.pending_out() <= OUT_HIGH_WATER
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing
                && !self.dead
                && !self.read_eof
                && self.stalled_on.is_none()
                && self.inbuf.len() < INBUF_SOFT_CAP
                && self.pending_out() <= OUT_HIGH_WATER,
            writable: self.pending_out() > 0,
        }
    }

    fn finished(&self) -> bool {
        self.dead
            || (self.closing && self.pending_out() == 0)
            || (self.read_eof && self.pending_out() == 0 && !self.has_line())
    }

    /// Pull everything available off the socket, up to the input cap.
    fn read_socket(&mut self) {
        let mut buf = [0u8; 4096];
        while self.inbuf.len() < INBUF_SOFT_CAP {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_eof = true;
                    break;
                }
                Ok(n) => self.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    /// Execute up to the class budget of buffered complete lines.
    fn process_lines(&mut self, engine: &Engine) {
        if self.closing || self.dead {
            return;
        }
        let budget = if self.bulk {
            BULK_CMDS_PER_TICK
        } else {
            INTERACTIVE_CMDS_PER_TICK
        };
        for _ in 0..budget {
            if self.stalled_on.is_some() || self.pending_out() > OUT_HIGH_WATER {
                break;
            }
            let Some(pos) = self.inbuf.iter().position(|&b| b == b'\n') else {
                if self.inbuf.len() as u64 > crate::server::MAX_LINE_BYTES {
                    self.refuse("line exceeds the protocol cap");
                }
                break;
            };
            if pos as u64 > crate::server::MAX_LINE_BYTES {
                self.refuse("line exceeds the protocol cap");
                break;
            }
            let mut raw: Vec<u8> = self.inbuf.drain(..=pos).collect();
            raw.pop(); // the '\n'
            if raw.last() == Some(&b'\r') {
                raw.pop();
            }
            let Ok(line) = String::from_utf8(raw) else {
                self.refuse("line is not valid UTF-8");
                break;
            };
            let (reply, err) = engine.execute_typed(&line);
            self.outbuf.extend_from_slice(reply.to_text().as_bytes());
            self.note_write_target(engine, &line);
            if reply.quit {
                self.closing = true;
                break;
            }
            if let Some(ServiceError::Overloaded { dataset, .. }) = err {
                // Bulk tenants absorb overload through read suspension
                // (the loader just slows down); interactive tenants keep
                // reading and keep getting fast soft errors instead.
                if self.bulk {
                    if let Ok(ds) = engine.service().get(&dataset) {
                        ds.raw_metrics().record_backpressure_stall();
                    }
                    self.stalled_on = Some(dataset);
                }
            }
        }
    }

    /// Answer a protocol-abuse condition and schedule the close.
    fn refuse(&mut self, why: &str) {
        self.outbuf
            .extend_from_slice(format!("ERR {why}\n").as_bytes());
        self.closing = true;
    }

    /// Track the class of the dataset this connection targets, so the
    /// next tick's budget reflects it (read after execution: a `class`
    /// verb on this very line already took effect).
    fn note_write_target(&mut self, engine: &Engine, line: &str) {
        let mut it = line.split_whitespace();
        let Some(verb) = it.next() else { return };
        if matches!(
            verb.to_ascii_lowercase().as_str(),
            "row" | "annotate" | "unannotate" | "delete" | "class"
        ) {
            if let Some(name) = it.next() {
                if let Ok(ds) = engine.service().get(name) {
                    self.bulk = ds.qos_class() == QosClass::Bulk;
                }
            }
        }
    }

    /// Push buffered replies; tolerate `WouldBlock` (retried next tick).
    fn flush_out(&mut self) {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos >= self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        } else if self.out_pos > 64 * 1024 {
            // Reclaim the flushed prefix of a large, slow-draining buffer.
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }
}

/// One shard's event loop: owns every connection hashed to it, start to
/// finish. Exits when the accept loop hangs up and no connections remain.
fn shard_loop(engine: Engine, rx: Receiver<TcpStream>) {
    let mut reactor = Reactor::new();
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut events: Vec<Event> = Vec::new();
    loop {
        // Admit new connections; block only when there is nothing to do.
        if conns.is_empty() {
            // anno-lint: allow(blocking-in-reactor) -- guarded by conns.is_empty(): with no connections owned there is nothing to stall
            match rx.recv() {
                Ok(stream) => admit(&mut reactor, &mut conns, stream),
                Err(_) => return,
            }
        }
        loop {
            match rx.try_recv() {
                Ok(stream) => admit(&mut reactor, &mut conns, stream),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    if conns.is_empty() {
                        return;
                    }
                    break;
                }
            }
        }

        // Resume suspended connections whose dataset drained below the
        // hysteresis watermark (or vanished entirely).
        for conn in conns.values_mut() {
            if let Some(name) = &conn.stalled_on {
                let ready = match engine.service().get(name) {
                    Ok(ds) => ds.admission_ready(),
                    Err(_) => true,
                };
                if ready {
                    conn.stalled_on = None;
                }
            }
        }

        let timeout = if conns.values().any(Conn::hot) {
            Duration::ZERO
        } else {
            POLL_TIMEOUT
        };
        reactor.poll(&mut events, timeout);
        for event in &events {
            if !event.readable {
                continue;
            }
            if let Some(conn) = conns.get_mut(&event.token.0) {
                conn.read_socket();
            }
        }
        for conn in conns.values_mut() {
            conn.process_lines(&engine);
            if conn.pending_out() > 0 {
                conn.flush_out();
            }
        }
        conns.retain(|_, conn| {
            if conn.finished() {
                reactor.deregister(conn.token);
                false
            } else {
                reactor.set_interest(conn.token, conn.desired_interest());
                true
            }
        });
    }
}

/// Register an accepted connection with its shard's reactor and greet it.
fn admit(reactor: &mut Reactor, conns: &mut HashMap<usize, Conn>, stream: TcpStream) {
    let Ok(peer) = stream.peer_addr() else {
        return; // died between accept and dispatch — nothing to serve
    };
    // Replies are latency-sensitive single writes; never let Nagle hold
    // one back waiting for a delayed ACK (best-effort, like the probe).
    let _ = stream.set_nodelay(true);
    let Ok(token) = reactor.register(&stream, Interest::READ) else {
        return;
    };
    let mut conn = Conn {
        stream,
        token,
        inbuf: Vec::new(),
        outbuf: Vec::new(),
        out_pos: 0,
        stalled_on: None,
        bulk: false,
        closing: false,
        read_eof: false,
        dead: false,
    };
    conn.outbuf
        .extend_from_slice(format!("OK annod ready ({peer})\n").as_bytes());
    conn.flush_out();
    conns.insert(token.0, conn);
}

/// Accept connections forever, hashing each to one of `shards` event
/// loops at accept time. Accept errors back off exponentially (see
/// [`AcceptBackoff`]) so fd exhaustion cannot spin a core.
pub fn serve_sharded(
    service: Arc<Service>,
    listener: TcpListener,
    shards: usize,
) -> io::Result<()> {
    let shards = shards.max(1);
    let engine = Engine::with_admission(service);
    let mut senders = Vec::with_capacity(shards);
    for i in 0..shards {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let engine = engine.clone();
        std::thread::Builder::new()
            .name(format!("annod-shard-{i}"))
            .spawn(move || shard_loop(engine, rx))?;
        senders.push(tx);
    }
    let mut backoff = AcceptBackoff::new();
    let mut fallback = 0usize;
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                backoff.reset();
                let shard = match stream.peer_addr() {
                    Ok(peer) => {
                        let mut h = std::collections::hash_map::DefaultHasher::new();
                        peer.hash(&mut h);
                        h.finish() as usize
                    }
                    Err(_) => {
                        // Peer already gone; round-robin keeps the hash
                        // path honest for live connections.
                        fallback = fallback.wrapping_add(1);
                        fallback
                    }
                };
                // A shard thread can only be gone if it panicked; shed
                // the connection (dropping closes it) and keep accepting.
                let _ = senders[shard % senders.len()].send(stream);
            }
            Err(e) => {
                eprintln!("annod: accept error (continuing): {e}");
                // anno-lint: allow(blocking-in-reactor) -- accept-thread error backoff; no connection is owned by this thread
                backoff.sleep();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected (server-side, client-side) socket pair on loopback.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (server, client)
    }

    #[test]
    fn poll_reports_pending_bytes_and_eof() {
        let (server, mut client) = pair();
        let mut reactor = Reactor::new();
        let token = reactor.register(&server, Interest::READ).unwrap();
        let mut events = Vec::new();

        // Nothing pending: a short poll returns no events.
        assert_eq!(reactor.poll(&mut events, Duration::from_millis(5)), 0);

        client.write_all(b"ping\n").unwrap();
        assert!(reactor.poll(&mut events, Duration::from_millis(500)) > 0);
        assert!(events.iter().any(|e| e.token == token && e.readable));

        // peek consumed nothing: the bytes are still there for the owner.
        let mut sniff = [0u8; 8];
        let n = server.peek(&mut sniff).unwrap();
        assert_eq!(&sniff[..n], b"ping\n");

        // EOF also reports readable, so owners observe the close.
        let mut drain = [0u8; 8];
        let mut owner = server.try_clone().unwrap();
        owner.read_exact(&mut drain[..5]).unwrap();
        drop(client);
        assert!(reactor.poll(&mut events, Duration::from_millis(500)) > 0);
        assert!(events.iter().any(|e| e.token == token && e.readable));
    }

    #[test]
    fn suspended_interest_silences_a_ready_source() {
        let (server, mut client) = pair();
        let mut reactor = Reactor::new();
        let token = reactor.register(&server, Interest::READ).unwrap();
        client.write_all(b"flood\n").unwrap();

        let mut events = Vec::new();
        assert!(reactor.poll(&mut events, Duration::from_millis(500)) > 0);

        // Suspend: the pending bytes stop producing events — this is the
        // read-suspension backpressure mechanism.
        assert!(reactor.set_interest(token, Interest::NONE));
        assert_eq!(reactor.poll(&mut events, Duration::from_millis(5)), 0);

        // Resume: the same bytes are readable again (level-triggered).
        assert!(reactor.set_interest(token, Interest::READ));
        assert!(reactor.poll(&mut events, Duration::from_millis(500)) > 0);
    }

    #[test]
    fn deregistered_tokens_are_reused() {
        let (server_a, _client_a) = pair();
        let (server_b, _client_b) = pair();
        let mut reactor = Reactor::new();
        let a = reactor.register(&server_a, Interest::READ).unwrap();
        assert_eq!(reactor.registered(), 1);
        assert!(reactor.deregister(a));
        assert!(!reactor.deregister(a), "double deregister must be a no-op");
        assert_eq!(reactor.registered(), 0);
        let b = reactor.register(&server_b, Interest::READ).unwrap();
        assert_eq!(b, a, "freed slot is reused");
        assert!(!reactor.set_interest(Token(99), Interest::READ));
    }

    #[test]
    fn write_only_interest_never_cuts_the_park_short() {
        let (server, _client) = pair();
        let mut reactor = Reactor::new();
        reactor
            .register(
                &server,
                Interest {
                    readable: false,
                    writable: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = reactor.poll(&mut events, Duration::from_millis(20));
        // The writable event is reported, but only after the full park —
        // a loop with only stalled writers must not spin.
        assert_eq!(n, 1);
        assert!(events[0].writable && !events[0].readable);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
