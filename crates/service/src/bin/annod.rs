//! `annod` — the correlation-serving daemon.
//!
//! ```text
//! annod                 # interactive REPL on stdin/stdout
//! annod repl
//! annod serve           # TCP on 127.0.0.1:7171
//! annod serve 0.0.0.0:9000
//! ```
//!
//! Both modes speak the same line protocol (`help` lists the commands);
//! see the workspace README for the full reference and
//! `examples/annod_session.rs` for a scripted walkthrough.

use std::sync::Arc;

use anno_service::server::{run_repl, serve_tcp};
use anno_service::Service;

const DEFAULT_ADDR: &str = "127.0.0.1:7171";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let service = Arc::new(Service::new());
    let result = match args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        [] | ["repl"] => {
            let stdin = std::io::stdin();
            run_repl(service, stdin.lock(), std::io::stdout())
        }
        ["serve"] => serve_tcp(service, DEFAULT_ADDR),
        ["serve", addr] => serve_tcp(service, addr),
        ["--help" | "-h" | "help"] => {
            eprintln!("usage: annod [repl | serve [<addr>]]   (default addr {DEFAULT_ADDR})");
            return;
        }
        other => {
            eprintln!("annod: unknown arguments {other:?}; try `annod --help`");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("annod: {e}");
        std::process::exit(1);
    }
}
