//! `annod` — the correlation-serving daemon.
//!
//! ```text
//! annod                         # interactive REPL on stdin/stdout
//! annod repl
//! annod serve                   # TCP on 127.0.0.1:7171, metrics on 127.0.0.1:7172
//! annod serve 0.0.0.0:9000
//! annod serve 0.0.0.0:9000 metrics 0.0.0.0:9100
//! annod serve metrics off       # no metrics listener
//! ```
//!
//! Both modes speak the same line protocol (`help` lists the commands);
//! see the workspace README for the full reference and
//! `examples/annod_session.rs` for a scripted walkthrough. In serve mode
//! a second listener answers `GET /metrics` with the Prometheus text
//! exposition (the `metrics` protocol verb returns the same bytes).

use std::sync::Arc;

use anno_service::server::{run_repl, serve_metrics_http, serve_tcp};
use anno_service::Service;

const DEFAULT_ADDR: &str = "127.0.0.1:7171";
const DEFAULT_METRICS_ADDR: &str = "127.0.0.1:7172";

const USAGE: &str = "usage: annod [repl | serve [<addr>] [metrics <addr>|off]]   \
                     (defaults 127.0.0.1:7171, metrics 127.0.0.1:7172)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let service = Arc::new(Service::new());
    let result = match args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        [] | ["repl"] => {
            let stdin = std::io::stdin();
            run_repl(service, stdin.lock(), std::io::stdout())
        }
        ["serve", rest @ ..] => match parse_serve(rest) {
            Some((addr, metrics)) => serve(service, addr, metrics),
            None => {
                eprintln!("annod: bad serve arguments {rest:?}; {USAGE}");
                std::process::exit(2);
            }
        },
        ["--help" | "-h" | "help"] => {
            eprintln!("{USAGE}");
            return;
        }
        other => {
            eprintln!("annod: unknown arguments {other:?}; try `annod --help`");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("annod: {e}");
        std::process::exit(1);
    }
}

/// Parse `[<addr>] [metrics <addr>|off]` into the protocol address and
/// the (optional) metrics address.
fn parse_serve<'a>(rest: &[&'a str]) -> Option<(&'a str, Option<&'a str>)> {
    match rest {
        [] => Some((DEFAULT_ADDR, Some(DEFAULT_METRICS_ADDR))),
        ["metrics", "off"] => Some((DEFAULT_ADDR, None)),
        ["metrics", m] => Some((DEFAULT_ADDR, Some(m))),
        [addr] => Some((addr, Some(DEFAULT_METRICS_ADDR))),
        [addr, "metrics", "off"] => Some((addr, None)),
        [addr, "metrics", m] => Some((addr, Some(m))),
        _ => None,
    }
}

/// Serve the protocol on `addr`, with the metrics responder (if enabled)
/// on its own listener thread. A metrics bind failure is reported but
/// never takes the protocol listener down with it.
fn serve(service: Arc<Service>, addr: &str, metrics: Option<&str>) -> std::io::Result<()> {
    if let Some(metrics_addr) = metrics {
        let metrics_service = Arc::clone(&service);
        let metrics_addr = metrics_addr.to_string();
        let spawned = std::thread::Builder::new()
            .name("annod-metrics".to_string())
            .spawn(move || {
                if let Err(e) = serve_metrics_http(metrics_service, &metrics_addr) {
                    eprintln!("annod: metrics listener failed (serving continues): {e}");
                }
            });
        if let Err(e) = spawned {
            eprintln!("annod: could not spawn metrics listener (serving continues): {e}");
        }
    }
    serve_tcp(service, addr)
}
