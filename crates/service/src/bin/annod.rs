//! `annod` — the correlation-serving daemon.
//!
//! ```text
//! annod                         # interactive REPL on stdin/stdout
//! annod repl
//! annod serve                   # TCP on 127.0.0.1:7171, metrics on 127.0.0.1:7172
//! annod serve 0.0.0.0:9000
//! annod serve 0.0.0.0:9000 metrics 0.0.0.0:9100
//! annod serve metrics off       # no metrics listener
//! annod serve shards 4          # explicit shard (event loop) count
//! ```
//!
//! Both modes speak the same line protocol (`help` lists the commands);
//! see the workspace README for the full reference and
//! `examples/annod_session.rs` for a scripted walkthrough. Serve mode
//! runs the worker-per-core sharded reactor front end (one event loop
//! per core by default; override with `shards <n>`), and a second
//! listener answers `GET /metrics` with the Prometheus text exposition
//! (the `metrics` protocol verb returns the same bytes).

use std::sync::Arc;

use anno_service::reactor::default_shards;
use anno_service::server::{run_repl, serve_metrics_http, serve_tcp_sharded};
use anno_service::Service;

const DEFAULT_ADDR: &str = "127.0.0.1:7171";
const DEFAULT_METRICS_ADDR: &str = "127.0.0.1:7172";

const USAGE: &str = "usage: annod [repl | serve [<addr>] [shards <n>] [metrics <addr>|off]]   \
                     (defaults 127.0.0.1:7171, metrics 127.0.0.1:7172, shards = cores)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let service = Arc::new(Service::new());
    let result = match args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        [] | ["repl"] => {
            let stdin = std::io::stdin();
            run_repl(service, stdin.lock(), std::io::stdout())
        }
        ["serve", rest @ ..] => match parse_serve(rest) {
            Some(serve_args) => serve(service, serve_args),
            None => {
                eprintln!("annod: bad serve arguments {rest:?}; {USAGE}");
                std::process::exit(2);
            }
        },
        ["--help" | "-h" | "help"] => {
            eprintln!("{USAGE}");
            return;
        }
        other => {
            eprintln!("annod: unknown arguments {other:?}; try `annod --help`");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("annod: {e}");
        std::process::exit(1);
    }
}

/// Parsed `serve` arguments.
struct ServeArgs<'a> {
    addr: &'a str,
    metrics: Option<&'a str>,
    shards: usize,
}

/// Parse `[<addr>] [shards <n>] [metrics <addr>|off]` (clauses in any
/// order, at most one positional address).
fn parse_serve<'a>(rest: &[&'a str]) -> Option<ServeArgs<'a>> {
    let mut addr = DEFAULT_ADDR;
    let mut metrics = Some(DEFAULT_METRICS_ADDR);
    let mut shards = default_shards();
    let mut positional_taken = false;
    let mut it = rest.iter();
    while let Some(&tok) = it.next() {
        match tok {
            "metrics" => match it.next() {
                Some(&"off") => metrics = None,
                Some(&m) => metrics = Some(m),
                None => return None,
            },
            "shards" => {
                shards = it.next()?.parse().ok().filter(|n| (1..=256).contains(n))?;
            }
            _ if !positional_taken => {
                addr = tok;
                positional_taken = true;
            }
            _ => return None,
        }
    }
    Some(ServeArgs {
        addr,
        metrics,
        shards,
    })
}

/// Serve the protocol on `addr` with the sharded runtime, with the
/// metrics responder (if enabled) on its own listener thread. A metrics
/// bind failure is reported but never takes the protocol listener down
/// with it.
fn serve(service: Arc<Service>, args: ServeArgs<'_>) -> std::io::Result<()> {
    if let Some(metrics_addr) = args.metrics {
        let metrics_service = Arc::clone(&service);
        let metrics_addr = metrics_addr.to_string();
        let spawned = std::thread::Builder::new()
            .name("annod-metrics".to_string())
            .spawn(move || {
                if let Err(e) = serve_metrics_http(metrics_service, &metrics_addr) {
                    eprintln!("annod: metrics listener failed (serving continues): {e}");
                }
            });
        if let Err(e) = spawned {
            eprintln!("annod: could not spawn metrics listener (serving continues): {e}");
        }
    }
    serve_tcp_sharded(service, args.addr, args.shards)
}
