//! The coalescing update queue feeding each dataset's writer thread.
//!
//! Clients enqueue [`UpdateOp`]s; the writer drains everything pending in
//! one pass, [`coalesce`]s adjacent ops of the same kind into single
//! batches, applies each batch through the miner's incremental
//! maintenance (one §4.3 pass per batch instead of one per op), and
//! publishes one snapshot for the whole drain. Coalescing preserves the
//! client-visible order: only *adjacent* ops merge, so an
//! annotate-then-delete sequence is never reordered into
//! delete-then-annotate.

use anno_store::{AnnotationUpdate, Tuple, TupleId};

/// Per-tenant quality-of-service class, set with the `class <ds>
/// interactive|bulk` protocol verb. The class drives admission control in
/// the sharded front end: how big a per-tick command budget the tenant's
/// connections get, and how overload is signalled back (interactive
/// tenants are shed fast with a typed `Overloaded` error so their latency
/// stays bounded; bulk tenants are parked via read suspension — natural
/// TCP backpressure — so a loader just slows down instead of erroring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosClass {
    /// Latency-sensitive tenant (the default): large per-tick command
    /// budget, overload answered immediately with `Overloaded`.
    #[default]
    Interactive,
    /// Throughput tenant: small per-tick command budget so it can never
    /// monopolize a shard's event loop, overload absorbed by suspending
    /// reads until the writer drains.
    Bulk,
}

impl QosClass {
    /// Stable lowercase label (protocol replies, metric labels).
    pub fn label(&self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Bulk => "bulk",
        }
    }

    /// Parse a protocol token (case-insensitive).
    pub fn parse(tok: &str) -> Option<QosClass> {
        match tok.to_ascii_lowercase().as_str() {
            "interactive" => Some(QosClass::Interactive),
            "bulk" => Some(QosClass::Bulk),
            _ => None,
        }
    }
}

/// One queued mutation. Text-carrying variants (`InsertRows`,
/// `AnnotateNamed`, `RemoveNamed`) defer vocabulary interning to the
/// writer thread so protocol handlers never touch the write lock.
#[derive(Debug, Clone)]
pub enum UpdateOp {
    /// Insert Fig. 4-format rows (`28 85 Annot_1`), parsed at apply time.
    InsertRows(Vec<String>),
    /// Insert pre-interned tuples (cases 1–2 of §4.3).
    InsertTuples(Vec<Tuple>),
    /// Attach interned annotations (case 3 of §4.3).
    Annotate(Vec<AnnotationUpdate>),
    /// Attach annotations by name, interned at apply time.
    AnnotateNamed(Vec<(TupleId, String)>),
    /// Detach interned annotations (the paper's §6 deletion case).
    RemoveAnnotations(Vec<AnnotationUpdate>),
    /// Detach annotations by name; unknown names are no-ops.
    RemoveNamed(Vec<(TupleId, String)>),
    /// Tombstone whole tuples.
    DeleteTuples(Vec<TupleId>),
}

impl UpdateOp {
    /// Number of individual updates this op carries.
    pub fn len(&self) -> usize {
        match self {
            UpdateOp::InsertRows(v) => v.len(),
            UpdateOp::InsertTuples(v) => v.len(),
            UpdateOp::Annotate(v) => v.len(),
            UpdateOp::AnnotateNamed(v) => v.len(),
            UpdateOp::RemoveAnnotations(v) => v.len(),
            UpdateOp::RemoveNamed(v) => v.len(),
            UpdateOp::DeleteTuples(v) => v.len(),
        }
    }

    /// `true` iff the op carries no updates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold `other` into `self` if both are the same kind. Returns the op
    /// back on kind mismatch.
    fn absorb(&mut self, other: UpdateOp) -> Option<UpdateOp> {
        match (self, other) {
            (UpdateOp::InsertRows(a), UpdateOp::InsertRows(b)) => {
                a.extend(b);
                None
            }
            (UpdateOp::InsertTuples(a), UpdateOp::InsertTuples(b)) => {
                a.extend(b);
                None
            }
            (UpdateOp::Annotate(a), UpdateOp::Annotate(b)) => {
                a.extend(b);
                None
            }
            (UpdateOp::AnnotateNamed(a), UpdateOp::AnnotateNamed(b)) => {
                a.extend(b);
                None
            }
            (UpdateOp::RemoveAnnotations(a), UpdateOp::RemoveAnnotations(b)) => {
                a.extend(b);
                None
            }
            (UpdateOp::RemoveNamed(a), UpdateOp::RemoveNamed(b)) => {
                a.extend(b);
                None
            }
            (UpdateOp::DeleteTuples(a), UpdateOp::DeleteTuples(b)) => {
                a.extend(b);
                None
            }
            (_, other) => Some(other),
        }
    }
}

/// Merge adjacent same-kind ops. Returns the batches and how many ops
/// were folded into a neighbouring batch (empty ops are dropped without
/// counting as folded).
pub fn coalesce(ops: Vec<UpdateOp>) -> (Vec<UpdateOp>, u64) {
    let mut out: Vec<UpdateOp> = Vec::new();
    let mut folded = 0u64;
    for op in ops {
        if op.is_empty() {
            continue;
        }
        match out.last_mut() {
            Some(last) => match last.absorb(op) {
                Some(unmerged) => out.push(unmerged),
                None => folded += 1,
            },
            None => out.push(op),
        }
    }
    (out, folded)
}

/// Default high-water mark for individual updates waiting in the queue.
/// A TCP-exposed daemon must not let one fast client grow memory without
/// bound; past this, `enqueue` blocks until the writer drains.
pub(crate) const DEFAULT_PENDING_CAP: usize = 65_536;

/// Writer-side queue state, guarded by the dataset's queue mutex.
#[derive(Debug)]
pub(crate) struct QueueState {
    /// Ops awaiting the writer, in arrival order.
    pub pending: Vec<UpdateOp>,
    /// Individual updates inside `pending` (backpressure accounting).
    pub pending_updates: usize,
    /// Backpressure high-water mark on `pending_updates`.
    pub cap_updates: usize,
    /// Ops ever accepted.
    pub enqueued: u64,
    /// Ops whose effects are visible in the published snapshot.
    pub applied: u64,
    /// Writer passes that took work off the queue (each is one coalesced
    /// drain — the unit the publish-cost model is amortized over, and the
    /// `M` in "readers pinned across M drains" stress runs).
    pub drains: u64,
    /// Set once at shutdown; the writer drains what is pending, then exits.
    pub shutdown: bool,
    /// Set only when the writer thread died abnormally (panic): pending
    /// ops are lost, and waiting clients must fail fast instead of
    /// timing out.
    pub writer_dead: bool,
    /// Test hook: while set, the writer leaves pending work on the queue,
    /// so admission tests can fill it deterministically. Cleared by
    /// shutdown so the final drain still happens.
    pub paused: bool,
    /// The tenant's QoS class (see [`QosClass`]); read by the sharded
    /// front end on every admission decision, so it lives under the same
    /// lock the decision already takes.
    pub class: QosClass,
}

impl Default for QueueState {
    fn default() -> Self {
        QueueState {
            pending: Vec::new(),
            pending_updates: 0,
            cap_updates: DEFAULT_PENDING_CAP,
            enqueued: 0,
            applied: 0,
            drains: 0,
            shutdown: false,
            writer_dead: false,
            paused: false,
            class: QosClass::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn annotate(tid: u32) -> UpdateOp {
        UpdateOp::AnnotateNamed(vec![(TupleId(tid), "A".into())])
    }

    #[test]
    fn adjacent_same_kind_ops_merge() {
        let (batches, folded) = coalesce(vec![annotate(0), annotate(1), annotate(2)]);
        assert_eq!(batches.len(), 1);
        assert_eq!(folded, 2);
        assert_eq!(batches[0].len(), 3);
    }

    #[test]
    fn kind_changes_preserve_order() {
        let ops = vec![
            annotate(0),
            UpdateOp::DeleteTuples(vec![TupleId(0)]),
            annotate(1),
            annotate(2),
        ];
        let (batches, folded) = coalesce(ops);
        assert_eq!(batches.len(), 3, "delete must stay between the annotates");
        assert_eq!(folded, 1);
        assert!(matches!(batches[0], UpdateOp::AnnotateNamed(_)));
        assert!(matches!(batches[1], UpdateOp::DeleteTuples(_)));
        assert!(matches!(batches[2], UpdateOp::AnnotateNamed(_)));
    }

    #[test]
    fn empty_ops_are_dropped_without_counting_as_folded() {
        let (batches, folded) = coalesce(vec![
            UpdateOp::InsertRows(vec![]),
            annotate(1),
            UpdateOp::DeleteTuples(vec![]),
        ]);
        assert_eq!(batches.len(), 1);
        assert_eq!(folded, 0, "dropping empties is not coalescing");
    }
}
